"""Online identification service over the stage-graph engine.

PR 1 made the pipeline an engine (memoized stages, batch APIs); this
package makes it a *service*: a bounded request queue with explicit
rejection, a micro-batching scheduler that co-schedules concurrent
sessions through one denoiser pass, a pool of worker threads with
per-request fault isolation and retry-with-backoff, and a
dependency-free metrics registry covering the whole path.

* :mod:`repro.serve.service` -- ``submit() -> RequestHandle`` request
  layer, deadlines, lifecycle, backpressure semantics;
* :mod:`repro.serve.batcher` -- max-batch-size / max-wait drain policy;
* :mod:`repro.serve.workers` -- engine views over the shared
  :class:`repro.engine.StageCache`, isolation and retries;
* :mod:`repro.serve.metrics` -- counters, gauges, fixed-bucket
  histograms (p50/p95/p99), snapshots and text rendering;
* :mod:`repro.serve.streaming` -- packet-streaming identification
  sessions (submit packets, poll the converging estimate, finalize).

``repro serve-bench`` replays a synthetic multi-material workload
through the service and prints the whole dashboard.
"""

from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    StageEventRecorder,
)
from repro.serve.service import (
    DeadlineExceededError,
    IdentificationService,
    OverloadError,
    QueueFullError,
    RequestHandle,
    ServeError,
    ServiceConfig,
    ServiceStoppedError,
)
from repro.serve.signals import GracefulShutdown, install_graceful_shutdown
from repro.serve.streaming import (
    StreamClosedError,
    StreamLimitError,
    StreamingGateway,
    StreamingSession,
)
from repro.serve.workers import WorkerPool, default_runner

__all__ = [
    "GracefulShutdown",
    "install_graceful_shutdown",
    "StreamClosedError",
    "StreamLimitError",
    "StreamingGateway",
    "StreamingSession",
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "DeadlineExceededError",
    "Gauge",
    "Histogram",
    "IdentificationService",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "OverloadError",
    "QueueFullError",
    "RequestHandle",
    "ServeError",
    "ServiceConfig",
    "ServiceStoppedError",
    "StageEventRecorder",
    "WorkerPool",
    "default_runner",
]
