"""Micro-batching scheduler: bounded queue in, engine-sized batches out.

The batcher is the piece that converts independent arrivals into the
engine's batch shape.  Policy: take the first waiting request, then
hold the batch open for at most ``max_wait_s`` while it fills to
``max_batch_size``.  Under load the wait never triggers (the queue has
co-riders ready) and batches run full; under trickle traffic a lone
request pays at most ``max_wait_s`` extra latency.

Dispatch is a *bounded* queue: when every worker is busy and the
dispatch depth is reached, the batcher blocks, the request queue fills,
and new submissions are rejected at the front door -- backpressure
propagates instead of buffering without limit.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.serve.metrics import MetricsRegistry

#: How often the batcher re-checks the stop event while idle (seconds).
_IDLE_POLL_S = 0.02


class MicroBatcher(threading.Thread):
    """Drains the request queue into batches under a size/time policy.

    Args:
        inbox: Bounded queue of ``_Request`` envelopes from ``submit``.
        dispatch: Bounded queue of request lists consumed by the pool.
        max_batch_size: Largest batch to form.
        max_wait_s: Longest to hold an incomplete batch open.
        metrics: Registry recording batch sizes and queue depth.
        stop_event: Set by the service to wind the thread down.
    """

    def __init__(
        self,
        inbox: queue.Queue,
        dispatch: queue.Queue,
        max_batch_size: int,
        max_wait_s: float,
        metrics: MetricsRegistry,
        stop_event: threading.Event,
    ):
        super().__init__(name="repro-serve-batcher", daemon=True)
        self.inbox = inbox
        self.dispatch = dispatch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.metrics = metrics
        self.stop_event = stop_event

    def run(self) -> None:
        while True:
            batch = self._collect()
            if batch:
                self.metrics.histogram("batch_size").observe(len(batch))
                self.metrics.gauge("queue_depth").set(self.inbox.qsize())
                self._dispatch_batch(batch)
            elif self.stop_event.is_set():
                return

    def _collect(self) -> list:
        """One batch: first request blocks (poll-checking stop), then the
        batch fills until size or deadline."""
        try:
            first = self.inbox.get(timeout=_IDLE_POLL_S)
        except queue.Empty:
            return []
        batch = [first]
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self.inbox.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _dispatch_batch(self, batch: list) -> None:
        """Hand the batch to the workers, blocking for backpressure but
        staying responsive to shutdown."""
        while True:
            try:
                self.dispatch.put(batch, timeout=_IDLE_POLL_S)
                return
            except queue.Full:
                if self.stop_event.is_set():
                    # The pool is gone; the service's stop() fails what
                    # it finds in the queues, so fail this batch here.
                    from repro.serve.service import ServiceStoppedError

                    for request in batch:
                        request.handle._fail(
                            ServiceStoppedError("service stopped")
                        )
                        self.metrics.counter("requests.failed").inc()
                    return
