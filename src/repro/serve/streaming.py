"""Serve-layer streaming identification sessions.

:class:`StreamingGateway` is the online front of
:class:`repro.core.streaming.StreamingExtractor`: a caller opens a
:class:`StreamingSession`, submits CSI packets as they arrive off the
capture hardware, polls the converging Omega-bar estimate, and
finalizes for the classified label -- without ever materializing the
full trace client-side first.

Isolation follows the worker-pool pattern: every session runs on its
own ``wimi.clone_view()`` (private engine + hook list, shared stage
cache and classifier), so concurrent sessions never contend on engine
state while still sharing denoised-window artifacts.  The gateway caps
concurrent sessions (explicit rejection, never silent queueing of an
unbounded number of half-open streams) and tracks the fleet in a
:class:`repro.serve.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading

from repro.serve.metrics import MetricsRegistry
from repro.serve.service import ServeError, ServiceStoppedError


class StreamLimitError(ServeError):
    """Open rejected: the gateway is at its concurrent-stream capacity."""


class StreamClosedError(ServeError):
    """Packets submitted to a finalized or aborted stream."""


class StreamingSession:
    """One live packet-streaming identification session.

    Thread-safe: a capture thread may submit packets while another
    polls.  Obtained from :meth:`StreamingGateway.open`; the session is
    closed by exactly one of :meth:`finalize` or :meth:`abort`.
    """

    def __init__(self, stream_id: str, extractor, on_close):
        self.stream_id = stream_id
        self._extractor = extractor
        self._on_close = on_close
        self._lock = threading.Lock()
        self._closed = False
        self._result = None

    @property
    def closed(self) -> bool:
        """Whether the session no longer accepts packets."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise StreamClosedError(
                f"stream {self.stream_id} is closed; open a new session"
            )

    def submit_baseline(self, packets) -> None:
        """Feed baseline packets (a packet, a trace, or an iterable)."""
        with self._lock:
            self._require_open()
            self._extractor.push_baseline(packets)

    def submit_target(self, packets) -> None:
        """Feed target packets (a packet, a trace, or an iterable)."""
        with self._lock:
            self._require_open()
            self._extractor.push_target(packets)

    def poll(self):
        """Current :class:`~repro.core.streaming.StreamingEstimate`.

        Valid at any point in the session's life, including after
        finalize (returns the final estimate then).
        """
        with self._lock:
            if self._result is not None:
                return self._result.estimate
            return self._extractor.estimate()

    def finalize(self):
        """Close the stream and classify; idempotent.

        Returns the :class:`~repro.core.streaming.StreamingResult`.
        Runs the quality gate, so it may warn or raise exactly like the
        batch ``identify`` path would for the same data.
        """
        with self._lock:
            if self._result is not None:
                return self._result
            self._require_open()
            result = self._extractor.finalize()
            self._result = result
            self._closed = True
        self._on_close(self.stream_id, "finalized")
        return result

    def abort(self) -> None:
        """Discard the stream without classifying; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._on_close(self.stream_id, "aborted")


class StreamingGateway:
    """Bounded pool of concurrent streaming identification sessions.

    Args:
        wimi: A fitted pipeline; each session gets a private engine
            view over its shared stage cache.
        max_streams: Most sessions that may be open at once; further
            :meth:`open` calls raise :class:`StreamLimitError`.
        metrics: Registry to record into (a private one by default).
    """

    def __init__(self, wimi, max_streams: int = 8, metrics=None):
        if not wimi.is_fitted:
            raise ValueError(
                "StreamingGateway needs a fitted WiMi; call fit() first"
            )
        if max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams}")
        self.wimi = wimi
        self.max_streams = max_streams
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._sessions: dict[str, StreamingSession] = {}
        self._next_id = 0
        self._draining = False
        for name in (
            "streams.opened", "streams.finalized",
            "streams.aborted", "streams.rejected",
            "streams.drained", "streams.drain_failed",
        ):
            self.metrics.counter(name)
        self.metrics.gauge("streams.active").set(0.0)

    @property
    def active(self) -> int:
        """Currently open sessions."""
        with self._lock:
            return len(self._sessions)

    def open(
        self,
        scene=None,
        window_size: int | None = None,
        hop: int | None = None,
        material_name: str = "",
    ) -> StreamingSession:
        """Open a new streaming session.

        Raises:
            StreamLimitError: The gateway is at ``max_streams``.
        """
        with self._lock:
            if self._draining:
                self.metrics.counter("streams.rejected").inc()
                raise ServiceStoppedError(
                    "gateway is draining; no new streams accepted"
                )
            if len(self._sessions) >= self.max_streams:
                self.metrics.counter("streams.rejected").inc()
                raise StreamLimitError(
                    f"gateway at capacity ({self.max_streams} open "
                    f"streams); finalize or abort one first"
                )
            stream_id = f"stream-{self._next_id}"
            self._next_id += 1
            extractor = self.wimi.clone_view().streaming_extractor(
                scene=scene,
                window_size=window_size,
                hop=hop,
                material_name=material_name,
            )
            session = StreamingSession(
                stream_id, extractor, on_close=self._close
            )
            self._sessions[stream_id] = session
            self.metrics.counter("streams.opened").inc()
            self.metrics.gauge("streams.active").set(
                float(len(self._sessions))
            )
        return session

    def _close(self, stream_id: str, outcome: str) -> None:
        with self._lock:
            self._sessions.pop(stream_id, None)
            self.metrics.counter(f"streams.{outcome}").inc()
            self.metrics.gauge("streams.active").set(
                float(len(self._sessions))
            )

    def drain(self) -> dict:
        """Close every open session: finalize, or abort on failure.

        Stops accepting new :meth:`open` calls (they raise
        :class:`repro.serve.ServiceStoppedError`), then walks the open
        sessions: each is finalized -- its buffered packets are worth a
        classification attempt -- and a session whose finalize raises
        (quality gate, poisoned capture) is aborted instead, so the
        drain always terminates and never leaves a half-open stream.
        Idempotent; safe against sessions closing concurrently.

        Returns ``{"finalized": n, "failed": n}``.
        """
        with self._lock:
            self._draining = True
            sessions = list(self._sessions.values())
        finalized = failed = 0
        for session in sessions:
            try:
                session.finalize()
                finalized += 1
                self.metrics.counter("streams.drained").inc()
            except StreamClosedError:
                # Lost the race with the owner's own close; fine.
                continue
            except Exception:  # noqa: BLE001 - drain must terminate
                session.abort()
                failed += 1
                self.metrics.counter("streams.drain_failed").inc()
        return {"finalized": finalized, "failed": failed}

    def install_signal_handlers(self, resend: bool = True):
        """Drain open streams instead of abandoning them on SIGTERM.

        Mirrors
        :meth:`repro.serve.IdentificationService.install_signal_handlers`:
        a polite ``kill`` finalizes (or cleanly aborts) every in-flight
        :class:`StreamingSession` before the process exits.  Returns
        the :class:`repro.serve.signals.GracefulShutdown` handle.
        """
        from repro.serve.signals import install_graceful_shutdown

        return install_graceful_shutdown(self.drain, resend=resend)

    def snapshot(self) -> dict:
        """Gateway metrics plus the shared stage cache's hit rates."""
        snap = self.metrics.snapshot()
        snap["stage_cache"] = self.wimi.cache.snapshot()
        return snap
