"""Dependency-free metrics registry for the identification service.

Three instrument kinds, all thread-safe and allocation-light:

* :class:`Counter` -- monotonically increasing event count (requests
  submitted, retries, rejections, per-stage executions...).
* :class:`Gauge` -- a point-in-time level (queue depth, in-flight
  requests, live workers).
* :class:`Histogram` -- fixed-bucket distribution with percentile
  estimation (request latency, batch sizes).  Buckets are fixed at
  construction, so observation is O(#buckets) worst case and there is
  no unbounded sample storage.

:class:`MetricsRegistry` names and owns the instruments and renders a
``snapshot()`` dict (for programmatic consumers such as ``serve-bench``)
or a human-readable text block.  It is deliberately free of third-party
dependencies so the serving layer stays importable everywhere the
pipeline is.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable

#: Default latency buckets (milliseconds): roughly logarithmic from
#: sub-millisecond cache hits to multi-second stragglers.
LATENCY_BUCKETS_MS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)

#: Default batch-size buckets: exact up to 16, then coarse.
BATCH_SIZE_BUCKETS = tuple(float(n) for n in range(1, 17)) + (32.0, 64.0)


class Counter:
    """Monotonic event counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time level; can move both ways."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute level."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current level."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Args:
        buckets: Ascending finite upper bounds.  An implicit +inf bucket
            catches everything above the last bound.

    Percentiles are estimated by linear interpolation inside the bucket
    that contains the requested rank (the standard fixed-bucket
    estimator); observations that land in the overflow bucket clamp to
    the maximum value actually observed, so ``p100`` is always exact.
    """

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS_MS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be ascending: {bounds}")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = p / 100.0 * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                lower = self.bounds[index - 1] if index > 0 else min(
                    self._min, self.bounds[0]
                )
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self._max
                )
                if cumulative + bucket_count >= rank:
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lower + fraction * (upper - lower)
                    return float(
                        min(max(estimate, self._min), self._max)
                    )
                cumulative += bucket_count
            return float(self._max)

    def snapshot(self) -> dict:
        """Summary dict: count, mean, min/max, p50/p95/p99, buckets."""
        with self._lock:
            count = self._count
        data = {
            "count": count,
            "mean": self.mean,
            "min": self._min if count else 0.0,
            "max": self._max if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
        with self._lock:
            data["buckets"] = {
                ("inf" if index == len(self.bounds) else self.bounds[index]):
                    bucket_count
                for index, bucket_count in enumerate(self._counts)
                if bucket_count
            }
        return data


def _merge_histogram_snapshots(snapshots: list[dict]) -> dict:
    """Merge several :meth:`Histogram.snapshot` dicts into one.

    Bucket counts are summed per bound (the union of bounds is used, so
    registries created with different bucket layouts still merge), the
    mean is count-weighted, min/max are the extremes, and percentiles
    are re-estimated from the merged buckets with the same
    interpolation rule the live instrument uses.  Exactness matches the
    instrument's own contract: estimates inside a bucket, exact p100.
    """
    live = [s for s in snapshots if s.get("count")]
    if not live:
        return {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "buckets": {},
        }
    count = sum(s["count"] for s in live)
    total = sum(s["mean"] * s["count"] for s in live)
    vmin = min(s["min"] for s in live)
    vmax = max(s["max"] for s in live)
    merged: dict = {}
    for snap in live:
        for bound, bucket_count in snap.get("buckets", {}).items():
            key = math.inf if bound == "inf" else float(bound)
            merged[key] = merged.get(key, 0) + bucket_count
    bounds = sorted(b for b in merged if b != math.inf)
    counts = [merged[b] for b in bounds] + [merged.get(math.inf, 0)]

    def estimate(p: float) -> float:
        rank = p / 100.0 * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower = bounds[index - 1] if index > 0 else min(
                vmin, bounds[0] if bounds else vmin
            )
            upper = bounds[index] if index < len(bounds) else vmax
            if cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return float(
                    min(max(lower + fraction * (upper - lower), vmin), vmax)
                )
            cumulative += bucket_count
        return float(vmax)

    return {
        "count": count,
        "mean": total / count,
        "min": vmin,
        "max": vmax,
        "p50": estimate(50),
        "p95": estimate(95),
        "p99": estimate(99),
        "buckets": {
            ("inf" if bound == math.inf else bound): merged[bound]
            for bound in sorted(merged)
            if merged[bound]
        },
    }


class MetricsRegistry:
    """Named instruments plus snapshot/text rendering.

    ``counter``/``gauge``/``histogram`` are get-or-create: wiring code
    does not need to pre-declare everything it might touch, and two
    callers naming the same instrument share it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_MS
    ) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``buckets`` only applies on creation; later calls return the
        existing instrument unchanged.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(buckets)
            return histogram

    def snapshot(
        self, source: str | None = None, seq: int | None = None
    ) -> dict:
        """All instruments as plain data, ready for printing/JSON.

        Args:
            source: Stable identity of the producing registry (e.g. the
                cluster's per-incarnation worker id ``worker-0.2``).
                When set, the snapshot carries a ``source`` stamp that
                makes :meth:`merge` idempotent -- several snapshots of
                the same source dedup to the newest one instead of
                summing.
            seq: Monotonic sequence number within ``source`` ("newest"
                tiebreaker); required when ``source`` is given.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        snap = {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(histograms.items())
            },
        }
        if source is not None:
            snap["source"] = {"id": source, "seq": 0 if seq is None else seq}
        return snap

    @staticmethod
    def merge(snapshots: Iterable[dict]) -> dict:
        """Aggregate several :meth:`snapshot` dicts into one.

        Counters sum (they are event counts), gauges sum (levels such
        as ``workers.alive`` or ``inflight`` aggregate additively
        across processes), and histograms are bucket-merged with
        percentiles re-estimated from the combined buckets.  This is
        how the cluster orchestrator folds per-worker-process
        registries into one cross-process dashboard; it works on any
        snapshot produced by this module, including ones round-tripped
        through JSON (bucket keys become strings -- both forms are
        accepted).

        Snapshots carrying a ``source`` stamp (see :meth:`snapshot`)
        are deduplicated first: for each source id only the highest
        ``seq`` survives.  A registry's instruments are cumulative, so
        two beats of the same worker are *views of the same counts at
        different times* -- summing them double-counts; keeping the
        newest is exact.  Unstamped snapshots are assumed distinct and
        merge as before.
        """
        deduped: dict[str, dict] = {}
        unstamped: list[dict] = []
        for snap in snapshots:
            stamp = snap.get("source")
            if isinstance(stamp, dict) and "id" in stamp:
                held = deduped.get(stamp["id"])
                if (
                    held is None
                    or stamp.get("seq", 0) >= held["source"].get("seq", 0)
                ):
                    deduped[stamp["id"]] = snap
            else:
                unstamped.append(snap)
        snapshots = unstamped + [
            deduped[key] for key in sorted(deduped)
        ]
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histogram_parts: dict[str, list[dict]] = {}
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snap.get("gauges", {}).items():
                gauges[name] = gauges.get(name, 0.0) + value
            for name, data in snap.get("histograms", {}).items():
                histogram_parts.setdefault(name, []).append(data)
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                name: _merge_histogram_snapshots(parts)
                for name, parts in sorted(histogram_parts.items())
            },
        }

    def render_text(self, title: str = "metrics") -> str:
        """Human-readable rendering of :meth:`snapshot`."""
        snap = self.snapshot()
        lines = [title]
        if snap["counters"]:
            lines.append("  counters:")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"    {name:<{width}}  {value}")
        if snap["gauges"]:
            lines.append("  gauges:")
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"    {name:<{width}}  {value:g}")
        for name, data in snap["histograms"].items():
            lines.append(
                f"  histogram {name}: n={data['count']} mean={data['mean']:.3f} "
                f"p50={data['p50']:.3f} p95={data['p95']:.3f} "
                f"p99={data['p99']:.3f} max={data['max']:.3f}"
            )
        return "\n".join(lines)


class StageEventRecorder:
    """Engine hook mirroring stage resolutions into a registry.

    Register on a :class:`repro.engine.PipelineEngine` via ``add_hook``;
    every execution/cache hit increments
    ``stage.<name>.executions`` / ``stage.<name>.hits``, and the cache
    tier that satisfied the resolution is broken out per stage
    (``stage.<name>.memory_hits`` / ``stage.<name>.disk_hits``) and in
    the service-wide aggregates ``cache.memory_hits`` /
    ``cache.disk_hits`` / ``cache.misses``.  The service installs one
    per worker engine so cache behaviour under live traffic shows up in
    the same snapshot as the request metrics.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def __call__(self, event) -> None:
        kind = "hits" if event.cache_hit else "executions"
        self.registry.counter(f"stage.{event.stage}.{kind}").inc()
        tier = getattr(event, "tier", "")
        if event.cache_hit:
            suffix = "disk_hits" if tier == "disk" else "memory_hits"
            self.registry.counter(f"stage.{event.stage}.{suffix}").inc()
            self.registry.counter(f"cache.{suffix}").inc()
        else:
            self.registry.counter("cache.misses").inc()
