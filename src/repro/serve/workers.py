"""Worker pool: N threads, each owning an engine view over one cache.

Each worker gets its own :class:`repro.core.pipeline.WiMi` view (via
``WiMi.clone_view``): private ``PipelineEngine`` and hook list, shared
calibration, classifier and :class:`repro.engine.StageCache`.  Workers
therefore never contend on engine-local state, while every artifact one
worker computes is immediately reusable by the others.

Fault isolation is per request: a batch whose engine call raises falls
back to request-at-a-time execution, so a poisoned session fails only
itself (its handle carries the error) and the co-scheduled sessions
still resolve.  Each failing request is retried under a
:class:`repro.resilience.RetryPolicy` (budget-capped exponential
backoff with full jitter) before its error is returned; the worker
thread itself survives any request failure.

Deadlines are enforced at three drop points, each with its own
``deadline.expired_*`` counter: *dequeue* (expired while queued),
*stage* (the engine's per-stage :func:`repro.resilience.check_deadline`
guard fired mid-pipeline -- via the ambient ``deadline_scope`` the
worker installs around every engine call), and *retry* (expired between
attempts).  The legacy ``requests.expired`` counter aggregates all of
them.

Every fault is surfaced in the metrics registry: ``faults.total`` plus
a per-exception-type ``faults.<ClassName>`` counter, and
``faults.batch_isolated`` whenever a whole batch had to fall back to
request-at-a-time execution.  :class:`repro.csi.quality.CorruptTraceError`
is treated as *deterministic* -- a structurally broken capture cannot
become valid by retrying -- so it fails the request immediately instead
of burning the backoff budget.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable

from repro.core.pipeline import WiMi
from repro.resilience import (
    Deadline,
    DeadlineExpiredError,
    RetryPolicy,
    deadline_scope,
)
from repro.serve.metrics import MetricsRegistry

#: How often workers re-check the stop event while idle (seconds).
_IDLE_POLL_S = 0.02


def default_runner(view: WiMi, sessions: list) -> list[str]:
    """The production batch path: one engine batch identify call."""
    return view.identify_batch(sessions)


class Worker(threading.Thread):
    """One serving thread; see module docstring for the semantics."""

    def __init__(
        self,
        name: str,
        view: WiMi,
        dispatch: queue.Queue,
        metrics: MetricsRegistry,
        retry_policy: RetryPolicy,
        runner: Callable[[WiMi, list], list[str]],
        stop_event: threading.Event,
        deadline_error: type[Exception],
        latency_observer: Callable[[float], None] | None = None,
    ):
        super().__init__(name=name, daemon=True)
        self.view = view
        self.dispatch = dispatch
        self.metrics = metrics
        self.retry_policy = retry_policy
        self.runner = runner
        self.stop_event = stop_event
        self.deadline_error = deadline_error
        self.latency_observer = latency_observer

    # ------------------------------------------------------------------

    def run(self) -> None:
        self.metrics.gauge("workers.alive").inc()
        try:
            while True:
                try:
                    batch = self.dispatch.get(timeout=_IDLE_POLL_S)
                except queue.Empty:
                    if self.stop_event.is_set():
                        return
                    continue
                self._process_batch(batch)
        finally:
            self.metrics.gauge("workers.alive").dec()

    # ------------------------------------------------------------------

    def _process_batch(self, batch: list) -> None:
        """Run one batch with per-request fault isolation."""
        now = time.monotonic()
        live = []
        for request in batch:
            self.metrics.histogram("queue_wait_ms").observe(
                (now - request.submitted_at) * 1000.0
            )
            if request.expired(now):
                self._fail(
                    request,
                    self.deadline_error(
                        "deadline passed while the request was queued"
                    ),
                )
                self.metrics.counter("deadline.expired_dequeue").inc()
                self.metrics.counter("requests.expired").inc()
            else:
                live.append(request)
        if not live:
            return
        self.metrics.gauge("inflight").inc(len(live))
        try:
            for request in live:
                request.handle.attempts += 1
                request.handle.batch_size = len(live)
            try:
                with deadline_scope(self._batch_deadline(live)):
                    labels = self.runner(
                        self.view, [request.session for request in live]
                    )
                if len(labels) != len(live):
                    raise RuntimeError(
                        f"runner returned {len(labels)} labels for "
                        f"{len(live)} sessions"
                    )
            except DeadlineExpiredError as exc:
                # The earliest deadline in the batch lapsed mid-pipeline.
                # Requests that are themselves expired fail here; the
                # rest re-run isolated under their own deadlines.
                now = time.monotonic()
                for request in live:
                    if request.expired(now):
                        self.metrics.counter("deadline.expired_stage").inc()
                        self.metrics.counter("requests.expired").inc()
                        self._fail(request, self.deadline_error(str(exc)))
                    else:
                        self._run_isolated(request)
                return
            except Exception as exc:
                # Batch path failed: isolate the fault by running each
                # request on its own (with its remaining retry budget).
                self._record_fault(exc)
                self.metrics.counter("faults.batch_isolated").inc()
                for request in live:
                    self._run_isolated(request)
                return
            for request, label in zip(live, labels):
                self._resolve(request, str(label))
        finally:
            self.metrics.gauge("inflight").dec(len(live))

    def _run_isolated(self, request) -> None:
        """One request, attempted until success or budget exhaustion.

        The first isolated attempt is *not* counted against the retry
        budget -- the batch attempt may have failed because of a
        different (poisoned) co-rider.  Errors the policy classifies as
        non-retryable (by default :class:`CorruptTraceError` -- a
        structurally broken capture is deterministic) short-circuit the
        budget: retrying them would only delay the rejection.
        """
        error: BaseException | None = None
        for retry in range(self.retry_policy.budget + 1):
            if request.expired(time.monotonic()):
                self.metrics.counter("deadline.expired_retry").inc()
                self.metrics.counter("requests.expired").inc()
                self._fail(
                    request,
                    self.deadline_error("deadline passed during retries"),
                )
                return
            if retry > 0:
                self.metrics.counter("requests.retries").inc()
                self.retry_policy.sleep(retry - 1)
            request.handle.attempts += 1
            try:
                with deadline_scope(self._request_deadline(request)):
                    labels = self.runner(self.view, [request.session])
                self._resolve(request, str(labels[0]))
                return
            except DeadlineExpiredError as exc:
                # No point retrying: the deadline will not un-expire.
                self.metrics.counter("deadline.expired_stage").inc()
                self.metrics.counter("requests.expired").inc()
                self._fail(request, self.deadline_error(str(exc)))
                return
            except Exception as exc:  # noqa: BLE001 -- isolation boundary
                error = exc
                self._record_fault(exc)
                if not self.retry_policy.is_retryable(exc):
                    break
        assert error is not None
        self._fail(request, error)

    # ------------------------------------------------------------------

    @staticmethod
    def _request_deadline(request) -> Deadline | None:
        """The ambient deadline for one request's engine run."""
        if request.deadline is None:
            return None
        return Deadline(request.deadline)

    @staticmethod
    def _batch_deadline(live: list) -> Deadline | None:
        """The scope for a batch run: its *earliest* member deadline.

        When it fires mid-pipeline the batch falls back to isolated
        execution, where each request runs under its own deadline -- so
        a short-deadline co-rider cannot silently extend (max) nor a
        long-deadline one silently truncate (nothing) the others.
        """
        deadlines = [r.deadline for r in live if r.deadline is not None]
        if not deadlines:
            return None
        return Deadline(min(deadlines))

    def _resolve(self, request, label: str) -> None:
        request.handle.latency_s = time.monotonic() - request.submitted_at
        latency_ms = request.handle.latency_s * 1000.0
        self.metrics.histogram("latency_ms").observe(latency_ms)
        if self.latency_observer is not None:
            self.latency_observer(latency_ms)
        self.metrics.counter("requests.completed").inc()
        request.handle._resolve(label)

    def _fail(self, request, error: BaseException) -> None:
        request.handle.latency_s = time.monotonic() - request.submitted_at
        self.metrics.counter("requests.failed").inc()
        request.handle._fail(error)

    def _record_fault(self, error: BaseException) -> None:
        """Count one raised fault under its exception type."""
        self.metrics.counter("faults.total").inc()
        self.metrics.counter(f"faults.{type(error).__name__}").inc()


class WorkerPool:
    """The service's N workers plus their engine views.

    Args:
        wimi: The fitted pipeline whose views the workers own.
        dispatch: Bounded batch queue fed by the micro-batcher.
        metrics: Shared registry.
        num_workers: Thread count.
        retry_policy: Shared :class:`repro.resilience.RetryPolicy`
            (budget, jittered backoff, retryability classifier).
        runner: Batch execution function (None = ``default_runner``).
        stop_event: Shared shutdown signal.
        deadline_error: Exception type raised for expired requests
            (injected to avoid a circular import with ``service``).
        hook_factory: Called once per worker; the result is registered
            as a stage-event hook on that worker's engine view.
        latency_observer: Optional callback fed each completed
            request's end-to-end latency in ms (the load shedder's
            EWMA input).
    """

    def __init__(
        self,
        wimi: WiMi,
        dispatch: queue.Queue,
        metrics: MetricsRegistry,
        num_workers: int,
        retry_policy: RetryPolicy,
        runner: Callable[[WiMi, list], list[str]] | None,
        stop_event: threading.Event,
        deadline_error: type[Exception],
        hook_factory: Callable[[], Callable] | None = None,
        latency_observer: Callable[[float], None] | None = None,
    ):
        self.workers: list[Worker] = []
        for index in range(num_workers):
            view = wimi.clone_view()
            if hook_factory is not None:
                view.engine.add_hook(hook_factory())
            self.workers.append(
                Worker(
                    name=f"repro-serve-worker-{index}",
                    view=view,
                    dispatch=dispatch,
                    metrics=metrics,
                    retry_policy=retry_policy,
                    runner=runner if runner is not None else default_runner,
                    stop_event=stop_event,
                    deadline_error=deadline_error,
                    latency_observer=latency_observer,
                )
            )

    def start(self) -> None:
        """Start every worker thread."""
        for worker in self.workers:
            worker.start()

    def join(self, timeout: float | None = None) -> None:
        """Join every worker thread (each gets the full timeout)."""
        for worker in self.workers:
            worker.join(timeout=timeout)

    def __len__(self) -> int:
        return len(self.workers)
