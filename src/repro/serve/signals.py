"""Graceful termination: run a drain callback on SIGTERM/SIGINT.

A bare ``kill`` (or a container runtime's stop) delivers SIGTERM and the
default handler tears the interpreter down immediately -- every request
sitting in an :class:`repro.serve.IdentificationService` queue is
abandoned mid-flight.  :func:`install_graceful_shutdown` replaces that
with drain-then-exit semantics:

* The first signal runs the cleanup callback exactly once (e.g.
  ``service.stop(drain=True)``), restores the previous handlers, and --
  unless ``resend=False`` -- re-delivers the signal so the process still
  terminates with the conventional status.
* A second signal during a slow drain hits the already-restored default
  handler and force-kills: an operator is never locked out.

The same hook serves both deployment shapes: the in-process service
(:meth:`repro.serve.IdentificationService.install_signal_handlers`) and
the cluster worker processes (:mod:`repro.cluster.worker`), whose
cleanup flips the worker into drain mode instead of exiting outright.

Signal handlers can only be installed from the main thread; elsewhere
installation is a no-op (``installed`` stays False) so library code can
call it unconditionally.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Callable, Iterable

#: Signals a polite terminator sends.
DEFAULT_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class GracefulShutdown:
    """Handle returned by :func:`install_graceful_shutdown`.

    Attributes:
        installed: Whether handlers were actually installed (False when
            called off the main thread).
        triggered: Whether the cleanup has run.
    """

    def __init__(
        self,
        cleanup: Callable[[], None],
        signals: Iterable[int],
        resend: bool,
    ):
        self._cleanup = cleanup
        self._signals = tuple(signals)
        self._resend = resend
        self._previous: dict[int, object] = {}
        self._lock = threading.Lock()
        self.installed = False
        self.triggered = False

    # ------------------------------------------------------------------

    def _install(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in self._signals:
            self._previous[signum] = signal.signal(signum, self._handler)
        self.installed = True

    def restore(self) -> None:
        """Put the previous handlers back (idempotent)."""
        with self._lock:
            previous, self._previous = self._previous, {}
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        self.installed = False

    # ------------------------------------------------------------------

    def _handler(self, signum, frame) -> None:
        self.trigger(signum)

    def trigger(self, signum: int | None = None) -> None:
        """Run the shutdown sequence as if ``signum`` had arrived.

        Exposed so the drain path is testable without delivering a real
        signal to the test process.  Runs the cleanup at most once;
        handlers are restored *before* the cleanup so a second signal
        during a slow drain falls through to the default (force-kill)
        behaviour.
        """
        with self._lock:
            if self.triggered:
                return
            self.triggered = True
        self.restore()
        try:
            self._cleanup()
        finally:
            if self._resend and signum is not None:
                os.kill(os.getpid(), signum)


def install_graceful_shutdown(
    cleanup: Callable[[], None],
    signals: Iterable[int] = DEFAULT_SIGNALS,
    resend: bool = True,
) -> GracefulShutdown:
    """Install drain-then-exit handlers; returns the restorable handle.

    Args:
        cleanup: Called once on the first signal (or :meth:`trigger`).
        signals: Which signals to intercept (default SIGTERM + SIGINT).
        resend: After the cleanup, re-deliver the signal so the process
            exits with the conventional termination status.  Pass False
            when the caller's own control flow ends the process (the
            cluster worker loop) or in tests.
    """
    handle = GracefulShutdown(cleanup, signals, resend)
    handle._install()
    return handle
