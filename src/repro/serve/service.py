"""Request layer of the online identification service.

:class:`IdentificationService` turns a fitted
:class:`repro.core.pipeline.WiMi` into a traffic-serving subsystem:

* ``submit(session)`` enqueues onto a **bounded** FIFO queue and returns
  a :class:`RequestHandle` (a future).  A full queue rejects the submit
  with :class:`QueueFullError` -- explicit backpressure, never a silent
  drop.
* A :class:`repro.serve.batcher.MicroBatcher` drains the queue under a
  max-batch-size / max-wait policy, so co-arriving sessions share one
  denoiser pass through the engine's batch path.
* A :class:`repro.serve.workers.WorkerPool` of N threads executes the
  batches, each worker owning its own engine view over one shared
  :class:`repro.engine.StageCache`.  A request that raises fails alone;
  transient faults retry with exponential backoff.
* Every hop is measured in a :class:`repro.serve.metrics.MetricsRegistry`
  (queue wait, end-to-end latency, batch sizes, retries, rejections,
  per-stage cache behaviour).

Typical use::

    wimi = WiMi(refs).fit(training_sessions)
    with IdentificationService(wimi, ServiceConfig(num_workers=4)) as svc:
        handles = [svc.submit(s) for s in sessions]
        labels = [h.result(timeout=5.0) for h in handles]
        print(svc.metrics.render_text())
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

from repro.core.pipeline import WiMi
from repro.csi.collector import CaptureSession
from repro.csi.quality import CorruptTraceError
from repro.resilience import Backoff, LoadShedder, RetryPolicy
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    MetricsRegistry,
    StageEventRecorder,
)
from repro.serve.workers import WorkerPool


class ServeError(Exception):
    """Base class of all service-side request failures.

    ``retryable`` classifies the failure for callers: ``True`` means
    the same request may succeed if resubmitted (elsewhere or later),
    ``False`` means retrying is pointless (poison request, stopped
    service).
    """

    retryable = False


class QueueFullError(ServeError):
    """Submission rejected because the request queue is at capacity."""

    retryable = True


class OverloadError(ServeError):
    """Submission shed by the adaptive load shedder.

    Typed overload beats a timeout: the caller learns immediately that
    the system is saturated (retry later / elsewhere, or raise the
    request's priority) instead of discovering it via deadline lapse.
    """

    retryable = True


class DeadlineExceededError(ServeError):
    """The request's deadline passed before a worker finished it."""


class ServiceStoppedError(ServeError):
    """The service stopped before the request could run."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the identification service.

    Attributes:
        queue_capacity: Bounded request-queue depth; submissions beyond
            it raise :class:`QueueFullError`.
        max_batch_size: Most sessions the batcher co-schedules into one
            engine batch call.
        max_wait_s: Longest the batcher holds an incomplete batch open
            waiting for co-riders before dispatching it anyway.
        num_workers: Worker threads, each with its own engine view over
            the shared stage cache.
        retry_budget: Extra attempts (beyond the first) a failing
            request gets before its error is returned.
        backoff_base_s: Sleep before the first retry; doubles per
            subsequent retry of the same request.
        default_timeout_s: Deadline applied to submissions that do not
            pass their own ``timeout`` (None = no deadline).
        dispatch_depth: Batches that may sit ready-to-run ahead of the
            workers; keeping it small propagates worker saturation back
            to the request queue (backpressure) instead of hiding it.
        backoff_max_s: Cap on any single retry backoff delay.
        shed_latency_threshold_ms: End-to-end latency EWMA at which the
            load shedder reads pressure 1.0; ``None`` sheds on queue
            depth alone.
        shed_base_pressure: Pressure above which priority-0 submissions
            are shed with :class:`OverloadError`.  The default 1.0
            leaves priority-0 depth behaviour unchanged (queue-full
            keeps its own typed rejection); set below 1.0 to shed
            before the queue hard-fills.
        shed_priority_step: Shed-threshold shift per priority unit.
        shed_ewma_alpha: Smoothing factor of the latency EWMA.
    """

    queue_capacity: int = 64
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    num_workers: int = 2
    retry_budget: int = 1
    backoff_base_s: float = 0.002
    default_timeout_s: float | None = None
    dispatch_depth: int = 2
    backoff_max_s: float = 0.25
    shed_latency_threshold_ms: float | None = None
    shed_base_pressure: float = 1.0
    shed_priority_step: float = 0.15
    shed_ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.dispatch_depth < 1:
            raise ValueError(
                f"dispatch_depth must be >= 1, got {self.dispatch_depth}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_max_s ({self.backoff_max_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )


class RequestHandle:
    """Future-style handle of one submitted session.

    The service resolves it exactly once, with either a label or an
    exception; callers block on :meth:`result` (optionally bounded by a
    wait timeout, which is independent of the request's own service-side
    deadline).
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self._label: str | None = None
        self._error: BaseException | None = None
        #: Wall-clock seconds from submit to resolution (set on done).
        self.latency_s: float | None = None
        #: Times the request was attempted (>1 means it was retried).
        self.attempts: int = 0
        #: Size of the batch this request was last co-scheduled in.
        self.batch_size: int | None = None

    def done(self) -> bool:
        """Whether the request has been resolved."""
        return self._done.is_set()

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The request's failure, or None if it succeeded.

        Raises:
            TimeoutError: If the request is still unresolved after
                ``timeout`` seconds.
        """
        if not self._done.wait(timeout):
            raise TimeoutError("request not resolved yet")
        return self._error

    def result(self, timeout: float | None = None) -> str:
        """The predicted material name.

        Blocks until resolution; re-raises the request's failure.
        """
        error = self.exception(timeout)
        if error is not None:
            raise error
        assert self._label is not None
        return self._label

    # -- resolution (service-internal) ---------------------------------

    def _resolve(self, label: str) -> None:
        if not self._done.is_set():
            self._label = label
            self._done.set()

    def _fail(self, error: BaseException) -> None:
        if not self._done.is_set():
            self._error = error
            self._done.set()


class _Request:
    """Internal envelope the queue/batcher/workers pass around."""

    __slots__ = ("session", "handle", "deadline", "submitted_at", "priority")

    def __init__(
        self,
        session: CaptureSession,
        handle: RequestHandle,
        deadline: float | None,
        submitted_at: float,
        priority: int = 0,
    ):
        self.session = session
        self.handle = handle
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.priority = priority

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class IdentificationService:
    """Bounded-queue, micro-batching serving front of a fitted WiMi.

    Args:
        wimi: A fitted pipeline; its calibration, classifier and stage
            cache are shared (read-only) by every worker view.
        config: Service tuning; defaults are sensible for tests.
        runner: ``runner(view, sessions) -> labels`` executed by the
            workers; defaults to ``view.identify_batch(sessions)``.
            Exposed for fault injection and for serving alternative
            heads over the same pipeline.
        metrics: Registry to record into (a private one by default).
    """

    def __init__(
        self,
        wimi: WiMi,
        config: ServiceConfig | None = None,
        runner=None,
        metrics: MetricsRegistry | None = None,
    ):
        if not wimi.is_fitted:
            raise ValueError(
                "IdentificationService needs a fitted WiMi; call fit() first"
            )
        self.wimi = wimi
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._runner = runner
        self._inbox: queue.Queue = queue.Queue(
            maxsize=self.config.queue_capacity
        )
        self._dispatch: queue.Queue = queue.Queue(
            maxsize=self.config.dispatch_depth
        )
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._batcher: MicroBatcher | None = None
        self._pool: WorkerPool | None = None
        self._shedder = LoadShedder(
            capacity=self.config.queue_capacity,
            latency_threshold_ms=self.config.shed_latency_threshold_ms,
            ewma_alpha=self.config.shed_ewma_alpha,
            base_pressure=self.config.shed_base_pressure,
            priority_step=self.config.shed_priority_step,
        )
        # Pre-create the instruments the snapshot readers expect even
        # under zero traffic.
        for name in (
            "requests.submitted", "requests.completed", "requests.failed",
            "requests.rejected", "requests.expired", "requests.retries",
            "requests.shed",
            "deadline.expired_admission", "deadline.expired_dequeue",
            "deadline.expired_stage", "deadline.expired_retry",
            "faults.total",
            "cache.memory_hits", "cache.disk_hits", "cache.misses",
        ):
            self.metrics.counter(name)
        self.metrics.histogram("latency_ms")
        self.metrics.histogram("queue_wait_ms")
        self.metrics.histogram("batch_size", BATCH_SIZE_BUCKETS)
        # Durable tier visibility: 1 when the stage cache is backed by
        # an on-disk artifact store (warm-start serving), else 0.
        self.metrics.gauge("store.mounted").set(
            0.0 if self.wimi.cache.disk_store is None else 1.0
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "IdentificationService":
        """Spin up the batcher and the worker pool (idempotent)."""
        with self._lock:
            if self._started:
                return self
            if self._stopped:
                raise ServiceStoppedError("service cannot be restarted")
            retry_policy = RetryPolicy(
                budget=self.config.retry_budget,
                backoff=Backoff(
                    base_s=self.config.backoff_base_s,
                    max_s=self.config.backoff_max_s,
                ),
                # A structurally broken capture is deterministic; see
                # Worker._run_isolated.
                retryable=lambda exc: not isinstance(exc, CorruptTraceError),
            )
            self._pool = WorkerPool(
                wimi=self.wimi,
                dispatch=self._dispatch,
                metrics=self.metrics,
                num_workers=self.config.num_workers,
                retry_policy=retry_policy,
                runner=self._runner,
                stop_event=self._stop,
                deadline_error=DeadlineExceededError,
                hook_factory=lambda: StageEventRecorder(self.metrics),
                latency_observer=self._shedder.observe_latency,
            )
            self._batcher = MicroBatcher(
                inbox=self._inbox,
                dispatch=self._dispatch,
                max_batch_size=self.config.max_batch_size,
                max_wait_s=self.config.max_wait_s,
                metrics=self.metrics,
                stop_event=self._stop,
            )
            self._pool.start()
            self._batcher.start()
            self._started = True
        return self

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the service.

        Args:
            drain: When True, wait for already-queued requests to finish
                before shutting the threads down; when False, fail all
                pending requests with :class:`ServiceStoppedError`.
            timeout: Longest to wait for the drain / thread joins.
        """
        with self._lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        deadline = time.monotonic() + timeout
        if drain:
            while (
                not self._inbox.empty() or not self._dispatch.empty()
            ) and time.monotonic() < deadline:
                time.sleep(0.002)
        self._stop.set()
        assert self._batcher is not None and self._pool is not None
        self._batcher.join(timeout=max(0.0, deadline - time.monotonic()))
        self._pool.join(timeout=max(0.0, deadline - time.monotonic()))
        # Whatever is still queued can no longer run.
        for pending_queue in (self._inbox, self._dispatch):
            while True:
                try:
                    item = pending_queue.get_nowait()
                except queue.Empty:
                    break
                requests = item if isinstance(item, list) else [item]
                for request in requests:
                    request.handle._fail(
                        ServiceStoppedError("service stopped")
                    )
                    self.metrics.counter("requests.failed").inc()

    def install_signal_handlers(
        self, drain: bool = True, timeout: float = 10.0, resend: bool = True
    ):
        """Drain instead of abandoning queued requests on SIGTERM/SIGINT.

        Installs :func:`repro.serve.signals.install_graceful_shutdown`
        so a polite ``kill`` runs ``stop(drain=..., timeout=...)``
        before the process exits -- queued requests finish (drain) or
        are failed explicitly with :class:`ServiceStoppedError` rather
        than vanishing with the interpreter.  Returns the
        :class:`repro.serve.signals.GracefulShutdown` handle (no-op off
        the main thread; call ``restore()`` to uninstall).
        """
        from repro.serve.signals import install_graceful_shutdown

        return install_graceful_shutdown(
            lambda: self.stop(drain=drain, timeout=timeout), resend=resend
        )

    def __enter__(self) -> "IdentificationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        """Whether the service accepts traffic."""
        return self._started and not self._stopped

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def submit(
        self,
        session: CaptureSession,
        timeout: float | None = None,
        priority: int = 0,
    ) -> RequestHandle:
        """Enqueue one session for identification.

        Args:
            session: The capture session to identify.
            timeout: Service-side deadline in seconds; falls back to
                ``config.default_timeout_s``.  A request whose deadline
                passes while queued or mid-flight resolves with
                :class:`DeadlineExceededError`.  A non-positive timeout
                is rejected at admission (counted under
                ``deadline.expired_admission``) without queueing.
            priority: Shedding class; under pressure lower priorities
                are shed first (0 = normal, negative = best-effort,
                positive = protected).

        Returns:
            A :class:`RequestHandle` resolving to the predicted label.

        Raises:
            QueueFullError: The bounded queue is at capacity.
            OverloadError: The adaptive shedder refused this priority.
            ServiceStoppedError: The service is not running.
        """
        if not self.is_running:
            raise ServiceStoppedError(
                "service is not running; use start() or a with-block"
            )
        now = time.monotonic()
        effective = (
            timeout if timeout is not None else self.config.default_timeout_s
        )
        handle = RequestHandle()
        if effective is not None and effective <= 0:
            # Dead on arrival: account for it and resolve the handle
            # without ever burning queue space or worker time.
            self.metrics.counter("deadline.expired_admission").inc()
            self.metrics.counter("requests.expired").inc()
            handle._fail(
                DeadlineExceededError("deadline expired before admission")
            )
            return handle
        if not self._shedder.admit(self._inbox.qsize(), priority):
            self.metrics.counter("requests.shed").inc()
            raise OverloadError(
                f"shed at priority {priority} "
                f"(pressure {self._shedder.pressure(self._inbox.qsize()):.2f})"
            )
        request = _Request(
            session=session,
            handle=handle,
            deadline=None if effective is None else now + effective,
            submitted_at=now,
            priority=priority,
        )
        try:
            self._inbox.put_nowait(request)
        except queue.Full:
            self.metrics.counter("requests.rejected").inc()
            raise QueueFullError(
                f"request queue at capacity "
                f"({self.config.queue_capacity}); retry later"
            ) from None
        self.metrics.counter("requests.submitted").inc()
        self.metrics.gauge("queue_depth").set(self._inbox.qsize())
        return handle

    def submit_many(
        self,
        sessions: list[CaptureSession],
        timeout: float | None = None,
        priority: int = 0,
    ) -> list[RequestHandle]:
        """Submit several sessions; rejection aborts at the first full
        queue (earlier handles stay live)."""
        return [
            self.submit(session, timeout=timeout, priority=priority)
            for session in sessions
        ]

    def identify(
        self, session: CaptureSession, timeout: float | None = None
    ) -> str:
        """Synchronous convenience: submit and wait for the label."""
        return self.submit(session, timeout=timeout).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Service metrics plus the shared stage cache's hit rates.

        When the cache mounts a durable artifact store, its activity
        counters and on-disk footprint are included under
        ``artifact_store``.
        """
        snap = self.metrics.snapshot()
        snap["stage_cache"] = self.wimi.cache.snapshot()
        snap["load_shedder"] = self._shedder.snapshot()
        store = self.wimi.cache.disk_store
        if store is not None and hasattr(store, "counters"):
            snap["artifact_store"] = store.counters()
        return snap

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------

    @classmethod
    def from_registry(
        cls,
        registry,
        name: str = "wimi",
        version: str | None = None,
        config: ServiceConfig | None = None,
        runner=None,
        metrics: MetricsRegistry | None = None,
        config_overrides: dict | None = None,
    ) -> "IdentificationService":
        """A service warm-started from a model registry bundle.

        The restored pipeline mounts the artifact store recorded in its
        config (overridable via ``config_overrides``), so the first
        identify request of a fresh process is served from persisted
        artifacts with zero training or baseline-derivation stages.
        """
        wimi = WiMi.from_registry(
            registry, name=name, version=version,
            config_overrides=config_overrides,
        )
        return cls(wimi, config=config, runner=runner, metrics=metrics)
