"""The size-independent material feature Omega-bar (paper Eq. 18-21).

From a paired capture session and an antenna pair ``(i, j)`` the extractor
measures, per subcarrier:

* ``Delta-Theta`` -- the change of the inter-antenna phase difference from
  baseline to target (Eq. 18): ``(D_i - D_j)(beta_tar - beta_free)``,
  observable only modulo ``2 pi``;
* ``Delta-Psi`` -- the double amplitude ratio (Eq. 19):
  ``exp(-(D_i - D_j)(alpha_tar - alpha_free))``, unambiguous.

Their combination ``Omega-bar = -ln(DeltaPsi) / (DeltaTheta + 2 gamma pi)``
(Eq. 21) cancels the unknown path-length difference ``D_i - D_j`` and
depends only on the material's ``(alpha, beta)``.

Gamma resolution
----------------
The paper states that the integer ``gamma`` "can be accurately estimated
with the coarse CSI amplitude readings".  Three strategies are provided:

* ``coarse-pair`` (default when a third antenna is available): the antenna
  pair with the *smallest* path-length-difference lever has
  ``|DeltaTheta| < pi`` for every catalog material, so its ``gamma`` is 0
  and it yields a coarse but unambiguous Omega-bar estimate; the precise
  (large-lever) pair is then unwrapped by predicting its phase from its
  own amplitude reading and the coarse Omega-bar.  Wrong branches would
  require the coarse estimate to be off by >60%, so this is very robust.
* ``dictionary``: for every candidate material ``c`` in the feature
  dictionary, the amplitude side predicts the unwrapped phase
  ``DeltaTheta_c = -ln(DeltaPsi) / Omega_c``; the candidate whose
  prediction lands closest to a ``2 pi``-shifted copy of the measured
  (wrapped) phase fixes ``gamma``.
* ``envelope``: keep the gamma whose Omega-bar falls inside the physically
  plausible envelope of the dictionary.

All are exposed for the ablation benches.

Sign convention: measured CSI phase *decreases* with propagation delay
(``H ~ exp(-j 2 pi f tau)``), while the paper's Eq. 2 counts accrued phase
positively; the extractor negates the measured change once, up front.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.channel.materials import Material
from repro.channel.propagation import material_feature_theory
from repro.core.amplitude import AmplitudeProcessor
from repro.core.phase import PhaseCalibrator
from repro.csi.collector import CaptureSession
from repro.csi.quality import CorruptTraceError, SessionQualityReport
from repro.dsp.stats import circular_mean, finite_median, wrap_phase

#: Unwrapped phase magnitudes below this are too small to divide by.
_MIN_DENOMINATOR_RAD = 1e-3


def theory_reference_omegas(materials: list[Material]) -> dict[str, float]:
    """Dictionary of ground-truth Omega-bar values for gamma resolution."""
    if not materials:
        raise ValueError("need at least one reference material")
    return {m.name: material_feature_theory(m) for m in materials}


def resolve_gamma(
    theta_wrapped: float,
    neg_log_psi: float,
    reference_omegas: dict[str, float] | list[float],
    max_gamma: int = 4,
    strategy: str = "dictionary",
) -> tuple[int, float]:
    """Resolve the phase-wrap integer of Eq. 21.

    Args:
        theta_wrapped: Measured ``Delta-Theta`` in ``(-pi, pi]`` (paper
            sign convention).
        neg_log_psi: ``-ln(Delta-Psi)`` from the amplitude side.
        reference_omegas: Candidate material features (all positive).
        max_gamma: Bound on ``|gamma|``.
        strategy: ``"dictionary"`` or ``"envelope"``.

    Returns:
        ``(gamma, omega_estimate)``.
    """
    omegas = list(
        reference_omegas.values()
        if isinstance(reference_omegas, dict)
        else reference_omegas
    )
    if not omegas:
        raise ValueError("reference_omegas must not be empty")
    if any(not math.isfinite(o) or o <= 0 for o in omegas):
        raise ValueError(f"reference omegas must be finite positive: {omegas}")
    if strategy not in ("dictionary", "envelope"):
        raise ValueError(f"unknown gamma strategy {strategy!r}")
    if not math.isfinite(theta_wrapped) or not math.isfinite(neg_log_psi):
        raise ValueError("theta_wrapped and neg_log_psi must be finite")

    if strategy == "dictionary":
        return _resolve_dictionary(theta_wrapped, neg_log_psi, omegas, max_gamma)
    return _resolve_envelope(theta_wrapped, neg_log_psi, omegas, max_gamma)


def _omega_from(theta_unwrapped: float, neg_log_psi: float) -> float:
    denom = theta_unwrapped
    if abs(denom) < _MIN_DENOMINATOR_RAD:
        denom = math.copysign(_MIN_DENOMINATOR_RAD, denom if denom != 0 else 1.0)
    return neg_log_psi / denom


def _resolve_dictionary(
    theta_wrapped: float,
    neg_log_psi: float,
    omegas: list[float],
    max_gamma: int,
) -> tuple[int, float]:
    best_gamma = 0
    best_residual = math.inf
    for omega_c in omegas:
        predicted = neg_log_psi / omega_c  # amplitude-side unwrapped phase
        gamma_c = int(round((predicted - theta_wrapped) / (2.0 * math.pi)))
        gamma_c = max(-max_gamma, min(max_gamma, gamma_c))
        candidate = theta_wrapped + 2.0 * math.pi * gamma_c
        residual = abs(candidate - predicted)
        if residual < best_residual:
            best_residual = residual
            best_gamma = gamma_c
    unwrapped = theta_wrapped + 2.0 * math.pi * best_gamma
    return best_gamma, _omega_from(unwrapped, neg_log_psi)


def _resolve_envelope(
    theta_wrapped: float,
    neg_log_psi: float,
    omegas: list[float],
    max_gamma: int,
) -> tuple[int, float]:
    lo = min(omegas) * 0.8
    hi = max(omegas) * 1.25
    centre = math.sqrt(lo * hi)
    best: tuple[float, int, float] | None = None
    fallback: tuple[float, int, float] | None = None
    for gamma in range(-max_gamma, max_gamma + 1):
        unwrapped = theta_wrapped + 2.0 * math.pi * gamma
        if abs(unwrapped) < _MIN_DENOMINATOR_RAD:
            continue
        omega = neg_log_psi / unwrapped
        if omega > 0:
            # Distance to the envelope centre in log space.
            score = abs(math.log(omega / centre))
            if lo <= omega <= hi:
                if best is None or score < best[0]:
                    best = (score, gamma, omega)
            if fallback is None or score < fallback[0]:
                fallback = (score, gamma, omega)
    chosen = best if best is not None else fallback
    if chosen is None:
        # No gamma gives a positive omega; report the principal value.
        return 0, _omega_from(theta_wrapped, neg_log_psi)
    return chosen[1], chosen[2]


def resolve_gamma_with_coarse(
    theta_wrapped: float,
    neg_log_psi: float,
    omega_coarse: float,
    max_gamma: int = 4,
) -> tuple[int, float]:
    """Unwrap the precise pair's phase using a coarse Omega-bar estimate.

    The amplitude side predicts the unwrapped phase as
    ``neg_log_psi / omega_coarse``; ``gamma`` is the integer bringing the
    wrapped measurement onto that prediction.  Robust as long as the
    coarse estimate is within ~60% of the truth (half a wrap at typical
    levers).
    """
    if not math.isfinite(omega_coarse) or omega_coarse <= 0:
        raise ValueError(
            f"omega_coarse must be finite positive, got {omega_coarse}"
        )
    predicted = neg_log_psi / omega_coarse
    gamma = int(round((predicted - theta_wrapped) / (2.0 * math.pi)))
    gamma = max(-max_gamma, min(max_gamma, gamma))
    unwrapped = theta_wrapped + 2.0 * math.pi * gamma
    return gamma, _omega_from(unwrapped, neg_log_psi)


def coarse_omega_estimate(
    theta_wrapped: float,
    neg_log_psi: float,
    reference_omegas: dict[str, float] | list[float],
    max_gamma: int = 1,
) -> float:
    """Coarse Omega-bar from a small-lever pair's (theta, N) pair.

    A small-lever pair keeps ``|DeltaTheta| < pi`` for every plausible
    material, so the principal value (``gamma = 0``) is normally correct;
    if it falls far outside the physical envelope, the nearest in-envelope
    branch is used instead.
    """
    omegas = list(
        reference_omegas.values()
        if isinstance(reference_omegas, dict)
        else reference_omegas
    )
    if not omegas:
        raise ValueError("reference_omegas must not be empty")
    lo = min(omegas) * 0.5
    hi = max(omegas) * 2.0
    principal = _omega_from(theta_wrapped, neg_log_psi)
    if lo <= principal <= hi:
        return principal
    _, omega = _resolve_envelope(theta_wrapped, neg_log_psi, omegas, max_gamma)
    return omega


@dataclass
class FeatureMeasurement:
    """One session's extracted material feature and its diagnostics.

    Attributes:
        omegas: Omega-bar per selected subcarrier at the resolved gamma.
        delta_theta: Unwrapped ``Delta-Theta`` per selected subcarrier (rad).
        delta_psi: ``Delta-Psi`` per selected subcarrier.
        gamma: Resolved phase-wrap integer.
        pair: Antenna pair used.
        subcarriers: Selected subcarrier positions (0-based).
        material_name: Ground-truth label if known ("" otherwise).
        theta_aligned: Wrapped per-subcarrier phase changes, aligned to one
            branch (adding ``2 gamma pi`` to these gives ``delta_theta``);
            kept so alternative branches can be evaluated cheaply.
        neg_log_psi: Per-subcarrier ``-ln DeltaPsi``.
        omega_coarse: Coarse Omega-bar from the small-lever pair, or NaN
            when unavailable.  Appended to the feature vector: it is
            branch-independent, so it anchors branch resolution against
            the material database.
    """

    omegas: np.ndarray
    delta_theta: np.ndarray
    delta_psi: np.ndarray
    gamma: int
    pair: tuple[int, int]
    subcarriers: list[int] = field(default_factory=list)
    material_name: str = ""
    theta_aligned: np.ndarray | None = None
    neg_log_psi: np.ndarray | None = None
    omega_coarse: float = float("nan")
    include_coarse: bool = True

    @property
    def omega_mean(self) -> float:
        """Scalar feature: mean Omega-bar over the selected subcarriers."""
        return float(np.mean(self.omegas))

    @property
    def has_coarse(self) -> bool:
        """Whether a coarse-pair Omega-bar feature should be emitted."""
        return self.include_coarse and math.isfinite(self.omega_coarse)

    def vector(self) -> np.ndarray:
        """Feature vector for the classifier.

        Per-subcarrier Omega-bar values, plus the coarse-pair Omega-bar
        when available.
        """
        base = np.asarray(self.omegas, dtype=float)
        if self.has_coarse:
            return np.append(base, self.omega_coarse)
        return base

    def vector_for_gamma(self, gamma: int) -> np.ndarray:
        """The feature vector this session would have at another branch.

        Used by the identify-time branch search: the database is scanned
        for the branch whose features land nearest a known material.
        """
        if self.theta_aligned is None or self.neg_log_psi is None:
            raise ValueError(
                "measurement lacks per-subcarrier observables; "
                "re-extract with a current MaterialFeatureExtractor"
            )
        omegas = np.array(
            [
                _omega_from(theta + 2.0 * math.pi * gamma, n)
                for theta, n in zip(self.theta_aligned, self.neg_log_psi)
            ]
        )
        if self.has_coarse:
            return np.append(omegas, self.omega_coarse)
        return omegas


@dataclass
class SessionFeatures:
    """All feature blocks extracted from one session.

    WiMi can fuse the Omega-bar blocks of several precise antenna pairs
    (Sec. III-F observes that a p-antenna receiver offers p(p-1)/2 usable
    pairs); each block is one :class:`FeatureMeasurement`.  The classifier
    consumes the concatenation of the block vectors.
    """

    measurements: list[FeatureMeasurement]
    material_name: str = ""
    #: Quality report of the source session when the extraction ran under
    #: quality gating (None for ungated extraction).
    quality: SessionQualityReport | None = None

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ValueError("SessionFeatures needs at least one measurement")
        if not self.material_name:
            self.material_name = self.measurements[0].material_name

    @property
    def num_blocks(self) -> int:
        """Number of antenna-pair feature blocks."""
        return len(self.measurements)

    def vector(self) -> np.ndarray:
        """Concatenated feature vector across blocks."""
        return np.concatenate([m.vector() for m in self.measurements])

    def block_slices(self) -> list[slice]:
        """Column ranges of each block inside :meth:`vector`."""
        slices = []
        offset = 0
        for m in self.measurements:
            size = m.vector().size
            slices.append(slice(offset, offset + size))
            offset += size
        return slices

    def vector_with_block(self, block: int, gamma: int) -> np.ndarray:
        """Concatenated vector with one block re-branched to ``gamma``."""
        parts = []
        for idx, m in enumerate(self.measurements):
            parts.append(m.vector_for_gamma(gamma) if idx == block else m.vector())
        return np.concatenate(parts)

    @property
    def omega_mean(self) -> float:
        """Scalar summary: mean Omega-bar of the first (main) block."""
        return self.measurements[0].omega_mean


class MaterialFeatureExtractor:
    """Computes :class:`FeatureMeasurement` from capture sessions."""

    def __init__(
        self,
        reference_omegas: dict[str, float] | list[float],
        calibrator: PhaseCalibrator | None = None,
        amplitude: AmplitudeProcessor | None = None,
        max_gamma: int = 4,
        gamma_strategy: str = "dictionary",
    ):
        omegas = list(
            reference_omegas.values()
            if isinstance(reference_omegas, dict)
            else reference_omegas
        )
        if not omegas:
            raise ValueError("reference_omegas must not be empty")
        self.reference_omegas = reference_omegas
        self.calibrator = calibrator if calibrator is not None else PhaseCalibrator()
        self.amplitude = amplitude if amplitude is not None else AmplitudeProcessor()
        self.max_gamma = max_gamma
        self.gamma_strategy = gamma_strategy

    # ------------------------------------------------------------------

    def phase_observable(
        self, session: CaptureSession, pair: tuple[int, int]
    ) -> np.ndarray:
        """Per-subcarrier Eq. 18 wrapped phase change, shape ``(K,)``.

        In the paper's sign convention: measured CSI phase decreases with
        delay, so the raw difference is negated once.
        """
        base_pd = self.calibrator.averaged_phase_difference(
            session.baseline, pair
        )
        tar_pd = self.calibrator.averaged_phase_difference(session.target, pair)
        return -np.asarray(wrap_phase(tar_pd - base_pd))

    def amplitude_observable(
        self, session: CaptureSession, pair: tuple[int, int]
    ) -> np.ndarray:
        """Per-subcarrier Eq. 19 ``-ln DeltaPsi``, shape ``(K,)``."""
        base_ratio = self.amplitude.averaged_amplitude_ratio(
            session.baseline, pair
        )
        tar_ratio = self.amplitude.averaged_amplitude_ratio(
            session.target, pair
        )
        return -np.log(tar_ratio / base_ratio)

    def pair_observables(
        self,
        session: CaptureSession,
        pair: tuple[int, int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-subcarrier ``(theta_wrapped, -ln DeltaPsi)`` for one pair.

        ``theta_wrapped`` is the Eq. 18 phase change in the paper's sign
        convention; ``-ln DeltaPsi`` is the Eq. 19 amplitude observable.
        """
        return (
            self.phase_observable(session, pair),
            self.amplitude_observable(session, pair),
        )

    def measure(
        self,
        session: CaptureSession,
        pair: tuple[int, int],
        subcarriers: list[int],
        coarse_pair: tuple[int, int] | None = None,
        true_omega: float | None = None,
        include_coarse_feature: bool = True,
        coarse_fallback: bool = False,
    ) -> FeatureMeasurement:
        """Extract the material feature from one paired session.

        Args:
            session: The paired baseline/target capture.
            pair: Main (precise) antenna pair.
            subcarriers: Selected good subcarriers (0-based positions).
            coarse_pair: Small-lever pair for coarse gamma resolution; its
                Omega-bar estimate is also appended to the feature vector.
            true_omega: When the material is known (training), its
                ground-truth Omega-bar -- gamma is then resolved exactly,
                which is how the labelled feature database is built.
        """
        theta_wrapped_all, neg_log_psi_all = self.pair_observables(
            session, pair
        )
        coarse_observables = None
        if coarse_pair is not None and coarse_pair != pair:
            coarse_observables = self.pair_observables(session, coarse_pair)
        return self.measure_from_observables(
            pair,
            subcarriers,
            theta_wrapped_all,
            neg_log_psi_all,
            coarse_observables=coarse_observables,
            true_omega=true_omega,
            include_coarse_feature=include_coarse_feature,
            material_name=session.material_name,
            coarse_fallback=coarse_fallback,
        )

    def measure_from_observables(
        self,
        pair: tuple[int, int],
        subcarriers: list[int],
        theta_wrapped_all: np.ndarray,
        neg_log_psi_all: np.ndarray,
        coarse_observables: tuple[np.ndarray, np.ndarray] | None = None,
        true_omega: float | None = None,
        include_coarse_feature: bool = True,
        material_name: str = "",
        coarse_fallback: bool = False,
    ) -> FeatureMeasurement:
        """Extract the feature from precomputed per-pair observables.

        This is the stage-graph entry point: the pipeline engine memoizes
        :meth:`phase_observable` / :meth:`amplitude_observable` per
        (session, pair) and feeds the cached arrays here, so repeated
        extraction never re-runs calibration or denoising.

        Args:
            pair: Main (precise) antenna pair the observables belong to.
            subcarriers: Selected good subcarriers (0-based positions).
            theta_wrapped_all: Eq. 18 wrapped phase change, shape ``(K,)``.
            neg_log_psi_all: Eq. 19 ``-ln DeltaPsi``, shape ``(K,)``.
            coarse_observables: The same two arrays for the small-lever
                coarse pair, or ``None`` when unavailable.
            true_omega: Ground-truth Omega-bar during training.
            include_coarse_feature: Append the coarse Omega-bar to the
                feature vector.
            material_name: Ground-truth label if known.
        """
        if not subcarriers:
            raise ValueError("need at least one selected subcarrier")

        theta_sel = theta_wrapped_all[subcarriers]
        n_sel = neg_log_psi_all[subcarriers]

        # Boundary guard: a NaN here would otherwise surface three stages
        # later as a garbage classification.  Name the culprits.
        bad_theta = [
            int(k)
            for k, v in zip(subcarriers, theta_sel)
            if not math.isfinite(v)
        ]
        bad_n = [
            int(k)
            for k, v in zip(subcarriers, n_sel)
            if not math.isfinite(v)
        ]
        if bad_theta or bad_n:
            parts = []
            if bad_theta:
                parts.append(f"phase observable at subcarrier(s) {bad_theta}")
            if bad_n:
                parts.append(
                    f"amplitude observable at subcarrier(s) {bad_n}"
                )
            raise CorruptTraceError(
                f"non-finite {' and '.join(parts)} for antenna pair "
                f"{pair}; the channel is dead or saturated there -- "
                f"re-select subcarriers with these excluded"
            )
        psi_sel = np.exp(-n_sel)

        # Aggregate over the selected subcarriers (they share the
        # geometry, hence the same gamma).
        theta_agg = circular_mean(theta_sel)
        n_agg = float(np.mean(n_sel))

        # Coarse-pair estimate (branch-independent feature + gamma anchor).
        omega_coarse = float("nan")
        if coarse_observables is not None:
            # The coarse pair is aggregated over *all* subcarriers with
            # medians: its own good subcarriers are unknown (selection ran
            # on the main pair) and coarse robustness beats precision here.
            # Degraded subcarriers are simply excluded; if the whole coarse
            # pair is dead the estimate stays NaN and gamma resolution
            # falls back to the configured strategy.
            coarse_theta, coarse_n = coarse_observables
            coarse_theta_agg = circular_mean(coarse_theta, ignore_nan=True)
            coarse_n_agg = float(finite_median(coarse_n))
            if math.isfinite(coarse_theta_agg) and math.isfinite(coarse_n_agg):
                omega_coarse = coarse_omega_estimate(
                    coarse_theta_agg,
                    coarse_n_agg,
                    self.reference_omegas,
                )
        if (
            coarse_fallback
            and include_coarse_feature
            and not math.isfinite(omega_coarse)
        ):
            # Degraded capture: the small-lever pair is dead (or no live
            # substitute exists) but the feature vector must keep its
            # training-time width.  Estimate the coarse anchor from the
            # main pair's own observables instead -- coarser than a real
            # small-lever reading, still branch-independent.
            omega_coarse = coarse_omega_estimate(
                theta_agg, n_agg, self.reference_omegas
            )

        # Resolve gamma: exactly from the label during training, else from
        # the coarse pair, else from the configured fallback strategy.
        if true_omega is not None:
            gamma, _ = resolve_gamma_with_coarse(
                theta_agg, n_agg, true_omega, self.max_gamma
            )
        elif math.isfinite(omega_coarse) and omega_coarse > 0:
            gamma, _ = resolve_gamma_with_coarse(
                theta_agg, n_agg, omega_coarse, self.max_gamma
            )
        else:
            gamma, _ = resolve_gamma(
                theta_agg,
                n_agg,
                self.reference_omegas,
                self.max_gamma,
                self.gamma_strategy,
            )

        # Align each subcarrier's wrapped phase to the aggregate branch so
        # that a single ``+ 2 gamma pi`` moves all of them together.
        theta_aligned = np.array(
            [
                theta_agg + float(wrap_phase(theta_k - theta_agg))
                for theta_k in theta_sel
            ]
        )
        thetas = theta_aligned + 2.0 * math.pi * gamma
        omegas = np.array(
            [_omega_from(t, n) for t, n in zip(thetas, n_sel)]
        )

        return FeatureMeasurement(
            omegas=omegas,
            delta_theta=thetas,
            delta_psi=np.asarray(psi_sel),
            gamma=gamma,
            pair=pair,
            subcarriers=list(subcarriers),
            material_name=material_name,
            theta_aligned=theta_aligned,
            neg_log_psi=np.asarray(n_sel),
            omega_coarse=omega_coarse,
            include_coarse=include_coarse_feature,
        )
