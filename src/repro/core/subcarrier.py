"""Good-subcarrier selection (paper Eq. 7, Fig. 6).

Different subcarriers of a 20 MHz channel are affected differently by
multipath (frequency-selective fading).  At subcarriers where reflections
are relatively weak, the inter-antenna phase difference barely moves across
packets; where reflections are strong, temporal fading makes it wander.
The paper therefore ranks subcarriers by the variance of the
phase-difference series across ``M`` packets (Eq. 7) and keeps the ``P``
most stable ("good") ones.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.csi.model import CsiTrace
from repro.csi.quality import CorruptTraceError
from repro.csi.subcarriers import validate_subcarrier_selection
from repro.dsp.stats import phase_difference_variance
from repro.core.phase import PhaseCalibrator


def _usable_order(
    scores: np.ndarray, exclude: Sequence[int] | None
) -> list[int]:
    """Subcarrier positions by ascending score, minus excluded and
    non-finite (dead-channel) entries; raises when nothing survives."""
    scores = np.asarray(scores, dtype=float)
    banned = set(int(k) for k in exclude) if exclude else set()
    order = [
        int(k)
        for k in np.argsort(scores, kind="stable")
        if k not in banned and np.isfinite(scores[k])
    ]
    if not order:
        raise CorruptTraceError(
            f"no usable subcarriers remain out of {scores.size} "
            f"({len(banned)} excluded by quality gating, the rest "
            f"scored non-finite)"
        )
    return order


class SubcarrierSelector:
    """Ranks report subcarriers by phase-difference stability."""

    def __init__(self, calibrator: PhaseCalibrator | None = None):
        self.calibrator = calibrator if calibrator is not None else PhaseCalibrator()

    def variances(
        self, trace: CsiTrace, pair: tuple[int, int]
    ) -> np.ndarray:
        """Eq. 7 per-subcarrier variance of the phase-difference series.

        Returns shape ``(K,)``; the Fig. 6 curve.  NaN-aware: degraded
        packets are excluded per subcarrier (identical result on clean
        traces) and a subcarrier with no finite reading scores NaN,
        which the selection methods filter out.
        """
        diffs = self.calibrator.phase_difference(trace, pair)
        if diffs.shape[0] < 2:
            raise ValueError(
                "need at least 2 packets to estimate variance, got "
                f"{diffs.shape[0]}"
            )
        return np.array(
            [
                phase_difference_variance(diffs[:, k], ignore_nan=True)
                for k in range(diffs.shape[1])
            ]
        )

    def combined_variances(
        self,
        baseline: CsiTrace,
        target: CsiTrace,
        pair: tuple[int, int],
    ) -> np.ndarray:
        """Variance pooled over the session's two traces.

        A subcarrier is only useful if it is stable both before and after
        the liquid is poured, so the selection score sums both variances.
        """
        return self.variances(baseline, pair) + self.variances(target, pair)

    def select(
        self,
        baseline: CsiTrace,
        target: CsiTrace,
        pair: tuple[int, int],
        count: int = 4,
        exclude: Sequence[int] | None = None,
    ) -> list[int]:
        """Positions of the ``count`` most stable subcarriers (ascending
        variance order).

        ``exclude`` removes quality-disqualified subcarriers from the
        candidate set; non-finite scores (fully dead channels) are
        dropped automatically.  Raises
        :class:`~repro.csi.quality.CorruptTraceError` when no usable
        subcarrier remains.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        scores = self.combined_variances(baseline, target, pair)
        usable = _usable_order(scores, exclude)
        best = usable[: min(count, len(usable))]
        return validate_subcarrier_selection(sorted(best), scores.size)

    def pooled_variances(
        self,
        sessions,
        pair: tuple[int, int],
    ) -> np.ndarray:
        """Eq. 7 variances summed over sessions, shape ``(K,)``.

        The shared scoring behind :meth:`rank_pooled` /
        :meth:`select_pooled`; also what the stage-graph engine's
        ``subcarrier_selection`` stage memoizes.
        """
        if not sessions:
            raise ValueError("need at least one session to pool over")
        total: np.ndarray | None = None
        for session in sessions:
            scores = self.combined_variances(
                session.baseline, session.target, pair
            )
            total = scores if total is None else total + scores
        return total

    def rank_pooled(
        self,
        sessions,
        pair: tuple[int, int],
        exclude: Sequence[int] | None = None,
    ) -> list[int]:
        """Usable subcarrier positions ordered best (lowest variance) first.

        Pools Eq. 7 variances over ``sessions`` like :meth:`select_pooled`
        but returns the complete ranking instead of the top few.
        Excluded and non-finite-scoring subcarriers are omitted.
        """
        total = self.pooled_variances(sessions, pair)
        return _usable_order(total, exclude)

    def select_pooled(
        self,
        sessions,
        pair: tuple[int, int],
        count: int = 4,
        exclude: Sequence[int] | None = None,
    ) -> list[int]:
        """Deployment-level selection: pool Eq. 7 variances over sessions.

        The paper selects good subcarriers once per deployment (Fig. 6
        names subcarriers 5, 20, 23, 24) and reuses them; pooling the
        variance scores over the calibration sessions reproduces that.
        ``sessions`` is a list of :class:`repro.csi.collector.CaptureSession`.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        total = self.pooled_variances(sessions, pair)
        usable = _usable_order(total, exclude)
        best = usable[: min(count, len(usable))]
        return validate_subcarrier_selection(sorted(best), total.size)
