"""Good-subcarrier selection (paper Eq. 7, Fig. 6).

Different subcarriers of a 20 MHz channel are affected differently by
multipath (frequency-selective fading).  At subcarriers where reflections
are relatively weak, the inter-antenna phase difference barely moves across
packets; where reflections are strong, temporal fading makes it wander.
The paper therefore ranks subcarriers by the variance of the
phase-difference series across ``M`` packets (Eq. 7) and keeps the ``P``
most stable ("good") ones.
"""

from __future__ import annotations

import numpy as np

from repro.csi.model import CsiTrace
from repro.csi.subcarriers import validate_subcarrier_selection
from repro.dsp.stats import phase_difference_variance
from repro.core.phase import PhaseCalibrator


class SubcarrierSelector:
    """Ranks report subcarriers by phase-difference stability."""

    def __init__(self, calibrator: PhaseCalibrator | None = None):
        self.calibrator = calibrator if calibrator is not None else PhaseCalibrator()

    def variances(
        self, trace: CsiTrace, pair: tuple[int, int]
    ) -> np.ndarray:
        """Eq. 7 per-subcarrier variance of the phase-difference series.

        Returns shape ``(K,)``; the Fig. 6 curve.
        """
        diffs = self.calibrator.phase_difference(trace, pair)
        if diffs.shape[0] < 2:
            raise ValueError(
                "need at least 2 packets to estimate variance, got "
                f"{diffs.shape[0]}"
            )
        return np.array(
            [phase_difference_variance(diffs[:, k]) for k in range(diffs.shape[1])]
        )

    def combined_variances(
        self,
        baseline: CsiTrace,
        target: CsiTrace,
        pair: tuple[int, int],
    ) -> np.ndarray:
        """Variance pooled over the session's two traces.

        A subcarrier is only useful if it is stable both before and after
        the liquid is poured, so the selection score sums both variances.
        """
        return self.variances(baseline, pair) + self.variances(target, pair)

    def select(
        self,
        baseline: CsiTrace,
        target: CsiTrace,
        pair: tuple[int, int],
        count: int = 4,
    ) -> list[int]:
        """Positions of the ``count`` most stable subcarriers (ascending
        variance order)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        scores = self.combined_variances(baseline, target, pair)
        count = min(count, scores.size)
        best = np.argsort(scores, kind="stable")[:count]
        return validate_subcarrier_selection(sorted(best.tolist()), scores.size)

    def pooled_variances(
        self,
        sessions,
        pair: tuple[int, int],
    ) -> np.ndarray:
        """Eq. 7 variances summed over sessions, shape ``(K,)``.

        The shared scoring behind :meth:`rank_pooled` /
        :meth:`select_pooled`; also what the stage-graph engine's
        ``subcarrier_selection`` stage memoizes.
        """
        if not sessions:
            raise ValueError("need at least one session to pool over")
        total: np.ndarray | None = None
        for session in sessions:
            scores = self.combined_variances(
                session.baseline, session.target, pair
            )
            total = scores if total is None else total + scores
        return total

    def rank_pooled(
        self,
        sessions,
        pair: tuple[int, int],
    ) -> list[int]:
        """All subcarrier positions ordered best (lowest variance) first.

        Pools Eq. 7 variances over ``sessions`` like :meth:`select_pooled`
        but returns the complete ranking instead of the top few.
        """
        total = self.pooled_variances(sessions, pair)
        return np.argsort(total, kind="stable").tolist()

    def select_pooled(
        self,
        sessions,
        pair: tuple[int, int],
        count: int = 4,
    ) -> list[int]:
        """Deployment-level selection: pool Eq. 7 variances over sessions.

        The paper selects good subcarriers once per deployment (Fig. 6
        names subcarriers 5, 20, 23, 24) and reuses them; pooling the
        variance scores over the calibration sessions reproduces that.
        ``sessions`` is a list of :class:`repro.csi.collector.CaptureSession`.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        total = self.pooled_variances(sessions, pair)
        count = min(count, total.size)
        best = np.argsort(total, kind="stable")[:count]
        return validate_subcarrier_selection(sorted(best.tolist()), total.size)
