"""The end-to-end WiMi system (paper Fig. 5).

:class:`WiMi` is a facade over the stage-graph engine
(:mod:`repro.engine`), which executes the modules as memoized stages:

    CaptureSession
        -> phase calibration (antenna difference)        [core.phase]
        -> good-subcarrier selection                     [core.subcarrier]
        -> amplitude denoising + ratio                   [core.amplitude]
        -> material feature Omega-bar                    [core.feature]
        -> database + classifier                         [core.database]

Every stage result is a typed artifact keyed by a content hash of
(session bytes, antenna pair, stage-relevant config), so repeated
``extract``/``identify`` calls -- and experiment sweeps sharing a
:class:`repro.engine.StageCache` -- never recompute calibration or
denoising for data they have already seen.

Typical use::

    from repro import WiMi, WiMiConfig

    wimi = WiMi(reference_omegas, WiMiConfig())
    wimi.fit(training_sessions)           # sessions carry labels
    name = wimi.identify(test_session)    # -> "pepsi"

    names = wimi.identify_batch(test_sessions)      # batch variant
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.core.amplitude import AmplitudeProcessor
from repro.core.antenna import AntennaPairSelector
from repro.core.config import WiMiConfig
from repro.core.database import DatabaseClassifier, MaterialDatabase
from repro.core.feature import (
    FeatureMeasurement,
    MaterialFeatureExtractor,
    SessionFeatures,
)
from repro.core.phase import PhaseCalibrator
from repro.core.subcarrier import SubcarrierSelector
from repro.csi.collector import CaptureSession
from repro.csi.quality import (
    CorruptTraceError,
    QualityThresholds,
    SessionQualityReport,
    gate_report,
)
from repro.dsp.stats import finite_mean
from repro.dsp.wavelet_denoise import SpatiallySelectiveDenoiser
from repro.engine.artifacts import ClassificationArtifact, config_fingerprint
from repro.engine.cache import StageCache
from repro.engine.graph import PipelineEngine

#: Config fields that locate persistent state rather than shaping
#: results; excluded from the manifest config fingerprint so the same
#: trained model mounted at a different path stays the same model.
_LOCATION_FIELDS = ("artifact_store_path", "model_registry_path")


def _deployment_config_fingerprint(config: WiMiConfig) -> str:
    """Fingerprint of every result-shaping config field."""
    fields = tuple(
        f.name
        for f in dataclasses.fields(WiMiConfig)
        if f.name not in _LOCATION_FIELDS
    )
    return config_fingerprint(config, fields)


class WiMi:
    """Commodity Wi-Fi material identification, end to end.

    Args:
        reference_omegas: Material feature dictionary used to resolve the
            phase-wrap ``gamma`` (Eq. 21); normally the theory values of
            the candidate materials, see
            :func:`repro.core.feature.theory_reference_omegas`.
        config: Pipeline configuration; defaults to the paper's choices.
        cache: Stage-artifact cache.  Defaults to a private cache; pass a
            shared :class:`repro.engine.StageCache` to reuse calibration
            and denoising artifacts across several ``WiMi`` instances
            (e.g. a classifier sweep over one dataset).
    """

    def __init__(
        self,
        reference_omegas: dict[str, float] | list[float],
        config: WiMiConfig | None = None,
        cache: StageCache | None = None,
    ):
        self.config = config if config is not None else WiMiConfig()
        self.calibrator = PhaseCalibrator()
        self.subcarrier_selector = SubcarrierSelector(self.calibrator)
        denoiser = SpatiallySelectiveDenoiser(
            wavelet_name=self.config.wavelet_name,
            levels=self.config.wavelet_levels,
            outlier_sigmas=self.config.outlier_sigmas,
            precision=self.config.compute_precision,
        )
        self.amplitude = AmplitudeProcessor(
            denoiser=denoiser, denoise=self.config.denoise_amplitude
        )
        self.pair_selector = AntennaPairSelector(self.subcarrier_selector)
        self.extractor = MaterialFeatureExtractor(
            reference_omegas,
            calibrator=self.calibrator,
            amplitude=self.amplitude,
            max_gamma=self.config.max_gamma,
            gamma_strategy=self.config.gamma_strategy,
        )
        if cache is not None:
            self.cache = cache
        elif self.config.artifact_store_path is not None:
            from repro.persist.store import ArtifactStore

            self.cache = StageCache(
                disk_store=ArtifactStore(self.config.artifact_store_path)
            )
        else:
            self.cache = StageCache()
        self.engine = PipelineEngine(
            extractor=self.extractor,
            subcarrier_selector=self.subcarrier_selector,
            config=self.config,
            cache=self.cache,
        )
        self.database = MaterialDatabase()
        self._classifier: DatabaseClassifier | None = None
        self._classifier_token: str = ""
        self._pair: tuple[int, int] | None = None
        self._feature_pairs: list[tuple[int, int]] | None = None
        self._ranked_pairs: list[tuple[int, int]] | None = None
        self._coarse_pair: tuple[int, int] | None = None
        self._subcarriers: list[int] | None = None
        self._subcarriers_by_pair: dict[tuple[int, int], list[int]] = {}

    # ------------------------------------------------------------------
    # Concurrency views
    # ------------------------------------------------------------------

    def clone_view(self, cache: StageCache | None = None) -> "WiMi":
        """A facade sharing this instance's state but owning its engine.

        The view shares the (read-only after ``fit``) heavy components --
        extractor, calibrator, denoiser, database, trained classifier --
        and, by default, the stage cache, but gets a *private*
        :class:`repro.engine.PipelineEngine` and therefore a private
        hook list.  That is the shape the serving worker pool needs: N
        threads identifying concurrently, every artifact shared through
        one :class:`repro.engine.StageCache`, per-worker hooks never
        contending.

        Args:
            cache: Stage cache of the view; defaults to sharing this
                instance's cache.  Pass a fresh ``StageCache()`` to get
                an artifact-cold view (used by the serving benchmark's
                sequential baseline).
        """
        view = object.__new__(type(self))
        view.config = self.config
        view.calibrator = self.calibrator
        view.subcarrier_selector = self.subcarrier_selector
        view.amplitude = self.amplitude
        view.pair_selector = self.pair_selector
        view.extractor = self.extractor
        view.cache = cache if cache is not None else self.cache
        view.engine = PipelineEngine(
            extractor=self.extractor,
            subcarrier_selector=self.subcarrier_selector,
            config=self.config,
            cache=view.cache,
        )
        view.database = self.database
        view._classifier = self._classifier
        view._classifier_token = self._classifier_token
        view._pair = self._pair
        view._feature_pairs = (
            list(self._feature_pairs)
            if self._feature_pairs is not None
            else None
        )
        view._ranked_pairs = (
            list(self._ranked_pairs)
            if self._ranked_pairs is not None
            else None
        )
        view._coarse_pair = self._coarse_pair
        view._subcarriers = (
            list(self._subcarriers) if self._subcarriers is not None else None
        )
        view._subcarriers_by_pair = {
            pair: list(subcarriers)
            for pair, subcarriers in self._subcarriers_by_pair.items()
        }
        return view

    # ------------------------------------------------------------------
    # Deployment calibration
    # ------------------------------------------------------------------

    def calibrate(self, sessions: list[CaptureSession]) -> "WiMi":
        """Fix the antenna pair and good subcarriers for a deployment.

        The paper performs both choices once per deployment (Sec. III-B
        names subcarriers 5, 20, 23, 24; Sec. III-F picks the most stable
        antenna pair) and then reuses them for every measurement.  ``fit``
        calls this automatically on the training sessions.
        """
        if not sessions:
            raise ValueError("need at least one calibration session")
        ranked = self._rank_pairs(sessions)

        # The coarse (smallest-lever) pair is reserved for gamma
        # resolution: it is "stable" in the variance sense but carries the
        # least material signal, so it must not crowd out a precise pair.
        self._coarse_pair = self._find_coarse_pair(sessions[0], None)
        precise = [p for p in ranked if p != self._coarse_pair] or ranked
        # Keep the full precise ranking: a degraded identify-time session
        # whose calibrated pair touches a dead antenna falls back to the
        # next-best usable pair from this list.
        self._ranked_pairs = list(precise)

        if self.config.antenna_pair is not None:
            pair = self.config.antenna_pair
            if max(pair) >= sessions[0].num_antennas:
                raise ValueError(
                    f"configured pair {pair} needs more antennas than the "
                    f"session's {sessions[0].num_antennas}"
                )
        else:
            pair = precise[0]
        self._pair = pair

        # Feature pairs: the main pair, then the next most stable precise
        # ones.
        wanted = min(self.config.num_feature_pairs, len(precise))
        feature_pairs = [pair]
        for candidate in precise:
            if len(feature_pairs) >= wanted:
                break
            if candidate != pair:
                feature_pairs.append(candidate)
        self._feature_pairs = feature_pairs

        self._subcarriers_by_pair = {}
        for fp in feature_pairs:
            if self.config.subcarrier_override is not None:
                self._subcarriers_by_pair[fp] = list(
                    self.config.subcarrier_override
                )
            else:
                self._subcarriers_by_pair[fp] = list(
                    self.engine.select_subcarriers(
                        sessions, fp, count=self.config.num_good_subcarriers
                    ).subcarriers
                )
        self._subcarriers = self._subcarriers_by_pair[pair]
        return self

    def _rank_pairs(self, sessions: list[CaptureSession]) -> list[tuple[int, int]]:
        """All antenna pairs, most stable first (pooled over sessions)."""
        if sessions[0].num_antennas < 2:
            raise ValueError("need at least two receive antennas")
        scores: dict[tuple[int, int], float] = {}
        probe = sessions[: min(len(sessions), 5)]
        for session in probe:
            for stat in self.pair_selector.rank(session):
                scores[stat.pair] = scores.get(stat.pair, 0.0) + stat.score
        return sorted(scores, key=lambda p: scores[p])

    def _find_coarse_pair(
        self,
        session: CaptureSession,
        main_pair: tuple[int, int] | None,
        exclude_antennas: tuple[int, ...] = (),
    ) -> tuple[int, int] | None:
        """The smallest-lever pair, used for coarse gamma resolution.

        ``-ln DeltaPsi`` scales with the pair's path-length-difference
        lever for any material, so the pair with the smallest aggregate
        ``|N|`` is the smallest-lever one -- identifiable from a single
        session without knowing the geometry.  ``exclude_antennas``
        removes quality-disqualified chains from the candidate set;
        returns None when no candidate (with a finite lever) remains.
        """
        if not self.config.use_coarse_pair or session.num_antennas < 3:
            return None
        try:
            candidates = [
                p
                for p in self.pair_selector.all_pairs(
                    session.baseline, exclude_antennas or None
                )
                if main_pair is None or p != main_pair
            ]
        except CorruptTraceError:
            return None
        best_pair = None
        best_n = float("inf")
        for pair in candidates:
            n_all = self.engine.observables(session, pair).neg_log_psi
            magnitude = abs(float(finite_mean(n_all)))
            if magnitude < best_n:
                best_n = magnitude
                best_pair = pair
        return best_pair

    @property
    def calibrated_coarse_pair(self) -> tuple[int, int] | None:
        """Small-lever pair fixed by :meth:`calibrate` (None before)."""
        return self._coarse_pair

    @property
    def calibrated_pair(self) -> tuple[int, int] | None:
        """Antenna pair fixed by :meth:`calibrate` (None before)."""
        return self._pair

    @property
    def calibrated_subcarriers(self) -> list[int] | None:
        """Subcarriers fixed by :meth:`calibrate` (None before).

        An explicitly calibrated *empty* selection is returned as ``[]``,
        not ``None`` (``None`` strictly means "calibrate was not run").
        """
        return list(self._subcarriers) if self._subcarriers is not None else None

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------

    def choose_pair(self, session: CaptureSession) -> tuple[int, int]:
        """The antenna pair for a session (calibrated, configured, or
        per-session best)."""
        if self._pair is not None:
            return self._pair
        if self.config.antenna_pair is not None:
            i, j = self.config.antenna_pair
            if max(i, j) >= session.num_antennas:
                raise ValueError(
                    f"configured pair {self.config.antenna_pair} needs more "
                    f"antennas than the session's {session.num_antennas}"
                )
            return (i, j)
        return self.pair_selector.best_pair(session)

    def choose_subcarriers(
        self, session: CaptureSession, pair: tuple[int, int]
    ) -> list[int]:
        """The subcarriers for a session (calibrated, override, or
        per-session selection)."""
        if self._subcarriers is not None:
            return list(self._subcarriers)
        if self.config.subcarrier_override is not None:
            return list(self.config.subcarrier_override)
        return list(
            self.engine.select_subcarriers(
                [session], pair, count=self.config.num_good_subcarriers
            ).subcarriers
        )

    def _session_pairs(
        self, session: CaptureSession
    ) -> list[tuple[int, int]]:
        """The feature pairs to extract for a session."""
        if self._feature_pairs is not None:
            return self._feature_pairs
        # Uncalibrated ad-hoc use: just the main pair.
        return [self.choose_pair(session)]

    def _subcarriers_for(
        self,
        session: CaptureSession,
        pair: tuple[int, int],
        exclude: tuple[int, ...] = (),
    ) -> list[int]:
        """Calibrated subcarriers for ``pair``, or a fresh selection.

        Uses an explicit ``is None`` check: a legitimately-empty
        calibrated list must not fall through to re-selection.

        ``exclude`` (quality-disqualified subcarriers) removes members
        of the calibrated/override list and tops the selection back up
        to the original width from the session's own quality-filtered
        ranking -- the feature vector must keep its training-time width
        or the classifier rejects it.  Raises
        :class:`~repro.csi.quality.CorruptTraceError` when too few
        usable subcarriers remain to preserve that width.
        """
        selected = self._subcarriers_by_pair.get(pair)
        if selected is None and self.config.subcarrier_override is not None:
            selected = list(self.config.subcarrier_override)
        if selected is not None:
            if not exclude:
                return list(selected)
            banned = set(int(k) for k in exclude)
            kept = [k for k in selected if k not in banned]
            missing = len(selected) - len(kept)
            if missing == 0:
                return kept
            # Top up from a fresh quality-aware per-session selection so
            # the vector keeps its calibrated width.
            refill = self.engine.select_subcarriers(
                [session],
                pair,
                count=missing,
                exclude=tuple(banned | set(kept)),
            ).subcarriers
            if len(refill) < missing:
                raise CorruptTraceError(
                    f"cannot replace {missing} disqualified subcarrier(s) "
                    f"{sorted(banned & set(selected))} for pair {pair}: "
                    f"only {len(refill)} usable substitutes remain"
                )
            return sorted(kept + list(refill))
        if self._subcarriers is not None and not exclude:
            return list(self._subcarriers)
        count = self.config.num_good_subcarriers
        chosen = list(
            self.engine.select_subcarriers(
                [session], pair, count=count, exclude=exclude
            ).subcarriers
        )
        if exclude and len(chosen) < count:
            raise CorruptTraceError(
                f"only {len(chosen)} usable subcarriers remain for pair "
                f"{pair} after excluding {sorted(set(exclude))} "
                f"(need {count})"
            )
        return chosen

    # ------------------------------------------------------------------
    # Quality boundary
    # ------------------------------------------------------------------

    def assess(self, session: CaptureSession) -> SessionQualityReport:
        """Memoized quality measurement of one session (both traces)."""
        return SessionQualityReport(
            baseline=self.engine.trace_quality(session.baseline).report,
            target=self.engine.trace_quality(session.target).report,
        )

    def _gate(self, session: CaptureSession) -> SessionQualityReport | None:
        """Measure + gate a session under the configured policy.

        Returns the report (None under policy ``"skip"``); raises
        :class:`~repro.csi.quality.CorruptTraceError` on hard failures,
        warns :class:`~repro.csi.quality.DegradedTraceWarning` on soft
        ones.
        """
        if self.config.degradation_policy == "skip":
            return None
        report = self.assess(session)
        gate_report(
            report,
            self.config.degradation_policy,
            label=session.material_name or "session",
        )
        return report

    def _usable_pairs(
        self, session: CaptureSession, dead: set[int]
    ) -> list[tuple[int, int]]:
        """Precise pairs not touching a dead antenna, most stable first."""
        if self._ranked_pairs is not None:
            usable = [p for p in self._ranked_pairs if dead.isdisjoint(p)]
            if usable:
                return usable
        # Not calibrated (or every calibrated pair is dead): rank the
        # survivors on this session alone.  rank() itself raises
        # CorruptTraceError when nothing usable remains.
        return [
            s.pair
            for s in self.pair_selector.rank(session, sorted(dead))
        ]

    def _degraded_plan(
        self,
        session: CaptureSession,
        quality: SessionQualityReport,
        pairs: list[tuple[int, int]],
    ) -> tuple[list[tuple[int, int]], tuple[int, int] | None]:
        """Feature pairs + coarse pair for a degraded session.

        Every pair touching a dead antenna is substituted by the next
        most stable usable pair (duplicating the best usable pair when
        the receiver has fewer live pairs than the calibrated feature
        width needs -- the vector must keep its training-time shape).
        The coarse pair is re-derived among live antennas, or dropped
        (None) when no live candidate exists.
        """
        dead = set(quality.dead_antennas)
        if dead:
            candidates = self._usable_pairs(session, dead)
            substituted: list[tuple[int, int]] = []
            for pair in pairs:
                if dead.isdisjoint(pair):
                    substituted.append(pair)
                    continue
                replacement = next(
                    (c for c in candidates if c not in substituted),
                    candidates[0],
                )
                substituted.append(replacement)
            pairs = substituted
        coarse = self._coarse_pair
        if coarse is not None and not dead.isdisjoint(coarse):
            coarse = None
        if (
            coarse is None
            and self.config.use_coarse_pair
            and session.num_antennas - len(dead) >= 3
        ):
            coarse = self._find_coarse_pair(
                session, pairs[0], exclude_antennas=tuple(sorted(dead))
            )
        return pairs, coarse

    def extract(
        self, session: CaptureSession, true_omega: float | None = None
    ) -> SessionFeatures:
        """Run the full pre-processing + feature chain on one session.

        Every stage is memoized: extracting the same session twice (or
        extracting it after ``fit`` already saw it) performs zero
        additional calibrator/denoiser executions.

        Under quality gating (``config.degradation_policy`` not
        ``"skip"``) the session is measured and gated first; a degraded
        session is processed with fallbacks -- dead antennas excluded
        from pair choice, disqualified subcarriers replaced, the coarse
        anchor re-derived or approximated -- and the resulting
        :class:`~repro.core.feature.SessionFeatures` carries the
        :class:`~repro.csi.quality.SessionQualityReport`.
        """
        quality = self._gate(session)
        pairs = self._session_pairs(session)
        coarse = self._coarse_pair
        exclude_sc: tuple[int, ...] = ()
        coarse_fallback = False
        if quality is not None and quality.is_degraded:
            pairs, coarse = self._degraded_plan(session, quality, pairs)
            exclude_sc = tuple(quality.bad_subcarriers)
            # Preserve the feature-vector width even when the coarse
            # anchor cannot be measured on a live small-lever pair.
            coarse_fallback = self.config.include_coarse_feature
        if (
            coarse is None
            and not coarse_fallback
            and self.config.use_coarse_pair
            and session.num_antennas >= 3
        ):
            coarse = self._find_coarse_pair(session, pairs[0])
        measurements = []
        for pair in pairs:
            subcarriers = self._subcarriers_for(
                session, pair, exclude=exclude_sc
            )
            artifact = self.engine.extract_feature(
                session,
                pair,
                tuple(subcarriers),
                coarse_pair=coarse if coarse != pair else None,
                true_omega=true_omega,
                include_coarse_feature=self.config.include_coarse_feature,
                coarse_fallback=coarse_fallback,
            )
            measurements.append(artifact.measurement)
        return SessionFeatures(
            measurements=measurements,
            material_name=session.material_name,
            quality=quality,
        )

    def extract_labelled(self, session: CaptureSession) -> SessionFeatures:
        """Extract with gamma resolved from the session's known label.

        Training sessions are labelled, so the phase-wrap integer can be
        fixed exactly from the material's ground-truth Omega-bar -- this
        is how the paper's feature database is built.
        """
        return self.extract(session, true_omega=self._true_omega_for(session))

    def _true_omega_for(self, session: CaptureSession) -> float | None:
        """Ground-truth Omega-bar for a labelled session, if known."""
        refs = self.extractor.reference_omegas
        if isinstance(refs, dict):
            return refs.get(session.material_name)
        return None

    # ------------------------------------------------------------------
    # Batch APIs
    # ------------------------------------------------------------------

    def extract_batch(
        self,
        sessions: list[CaptureSession],
        true_omegas: list[float | None] | None = None,
    ) -> list[SessionFeatures]:
        """Extract many sessions with one denoiser pass per trace.

        Equivalent to ``[self.extract(s, t) for s, t in zip(...)]`` --
        the results are bit-identical -- but the denoising stage is
        warmed for the whole batch up front, so every antenna pair
        (feature pairs *and* the coarse pair) shares a single cleaned
        amplitude cube per trace.

        Args:
            sessions: Sessions to extract.
            true_omegas: Optional per-session ground-truth Omega-bar
                values (training mode); ``None`` entries mean unknown.
        """
        if true_omegas is None:
            true_omegas = [None] * len(sessions)
        if len(true_omegas) != len(sessions):
            raise ValueError(
                f"true_omegas length {len(true_omegas)} does not match "
                f"{len(sessions)} sessions"
            )
        # Single denoiser pass per trace: warm the hot stage for the
        # whole batch before any per-pair work fans out over the cubes.
        for session in sessions:
            self.engine.amplitude_denoise(session.baseline)
            self.engine.amplitude_denoise(session.target)
        return [
            self.extract(session, true_omega=omega)
            for session, omega in zip(sessions, true_omegas)
        ]

    def extract_labelled_batch(
        self, sessions: list[CaptureSession]
    ) -> list[SessionFeatures]:
        """Batch :meth:`extract_labelled` (training-side batch API)."""
        return self.extract_batch(
            sessions, [self._true_omega_for(s) for s in sessions]
        )

    def identify_batch(self, sessions: list[CaptureSession]) -> list[str]:
        """Identify many test sessions, reusing every cached stage.

        Returns predictions in session order; identical to calling
        :meth:`identify` per session.
        """
        if self._classifier is None:
            raise RuntimeError("WiMi is not fitted; call fit() first")
        return [
            self._classify(features).label
            for features in self.extract_batch(sessions)
        ]

    def _reference_envelope(self) -> tuple[float, float]:
        """Generous physical envelope of the reference Omega-bar values."""
        refs = self.extractor.reference_omegas
        values = list(refs.values()) if isinstance(refs, dict) else list(refs)
        return (min(values) * 0.4, max(values) * 2.0)

    # ------------------------------------------------------------------
    # Training / identification
    # ------------------------------------------------------------------

    def fit(self, sessions: list[CaptureSession]) -> "WiMi":
        """Calibrate on the training sessions, extract their features and
        train the classifier."""
        if not sessions:
            raise ValueError("need at least one training session")
        self.calibrate(sessions)
        self.database = MaterialDatabase()
        for measurement in self.extract_labelled_batch(sessions):
            self.database.add(measurement)
        self._train_classifier()
        return self

    def fit_measurements(
        self, measurements: list[SessionFeatures] | list[FeatureMeasurement]
    ) -> "WiMi":
        """Train from pre-extracted measurements (lets experiments reuse
        feature extraction across classifier configurations)."""
        if not measurements:
            raise ValueError("need at least one measurement")
        self.database = MaterialDatabase()
        for measurement in measurements:
            self.database.add(measurement)
        self._train_classifier()
        return self

    def _train_classifier(self) -> None:
        """Fit the configured classifier on the current database."""
        self._classifier = DatabaseClassifier(
            kind=self.config.classifier,
            svm_c=self.config.svm_c,
            knn_k=self.config.knn_k,
            precision=self.config.compute_precision,
        ).fit(self.database)
        self._classifier_token = self._compute_classifier_token()

    def _compute_classifier_token(self) -> str:
        """Content-derived token of the trained classifier.

        Training is fully deterministic (seeded SMO on a fixed dataset),
        so hashing the training data plus the classifier-shaping config
        identifies the *model*: two processes that trained on the same
        database -- or one that trained and one that loaded the result
        from the registry -- produce the same token, which is what makes
        persisted ``classify`` artifacts valid across processes.  Any
        change to data or config changes the token, so cached labels can
        never be served for a different model.
        """
        digest = hashlib.blake2b(digest_size=12)
        digest.update(self.database.content_hash().encode())
        digest.update(
            repr(
                (
                    self.config.classifier,
                    self.config.svm_c,
                    self.config.knn_k,
                    self._classifier.seed if self._classifier else 0,
                )
            ).encode()
        )
        return f"clf-{digest.hexdigest()}"

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._classifier is not None

    def _classify(self, features: SessionFeatures) -> ClassificationArtifact:
        """Run the classify stage on extracted features."""
        return self.engine.classify(
            features,
            classifier=self._classifier,
            classifier_token=self._classifier_token,
            envelope=self._reference_envelope(),
        )

    def identify(self, session: CaptureSession) -> str:
        """Identify the material of one test session."""
        if self._classifier is None:
            raise RuntimeError("WiMi is not fitted; call fit() first")
        return self._classify(self.extract(session)).label

    def identify_measurement(
        self, measurement: SessionFeatures | FeatureMeasurement
    ) -> str:
        """Identify from a pre-extracted measurement."""
        if self._classifier is None:
            raise RuntimeError("WiMi is not fitted; call fit() first")
        if isinstance(measurement, FeatureMeasurement):
            measurement = SessionFeatures(measurements=[measurement])
        return self._classify(measurement).label

    def identify_with_confidence(
        self, session: CaptureSession
    ) -> tuple[str, float]:
        """Identify a session and report how decisive the match is.

        The confidence is ``1 - d_nearest / d_second`` over the scaled
        database centroids: near 1 for a clean single-material target,
        near 0 for a target between two materials (e.g. a mixture) or an
        out-of-catalog liquid.  A deployment can threshold it to reject
        targets WiMi was never trained on.
        """
        if self._classifier is None:
            raise RuntimeError("WiMi is not fitted; call fit() first")
        artifact = self._classify(self.extract(session))
        return artifact.label, artifact.confidence

    def predict_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Identify a batch of raw feature vectors."""
        if self._classifier is None:
            raise RuntimeError("WiMi is not fitted; call fit() first")
        return self._classifier.predict(vectors)

    # ------------------------------------------------------------------
    # Streaming identification
    # ------------------------------------------------------------------

    def streaming_extractor(
        self,
        scene=None,
        window_size: int | None = None,
        hop: int | None = None,
        material_name: str = "",
    ):
        """A :class:`repro.core.streaming.StreamingExtractor` bound to
        this fitted pipeline.

        Push CSI packets as they arrive (``push_baseline`` /
        ``push_target``), poll :meth:`~repro.core.streaming
        .StreamingExtractor.estimate` for the converging Omega-bar, and
        :meth:`~repro.core.streaming.StreamingExtractor.finalize` for
        the classified result.  See :mod:`repro.core.streaming` for the
        window/overlap semantics and the batch-equivalence contract.
        """
        from repro.core.streaming import StreamingExtractor

        return StreamingExtractor(
            self,
            scene=scene,
            window_size=window_size,
            hop=hop,
            material_name=material_name,
        )

    def identify_streaming(
        self,
        session: CaptureSession,
        chunk_size: int = 1,
        window_size: int | None = None,
        hop: int | None = None,
    ) -> str:
        """Identify a session by replaying it through the streaming path.

        Functionally the streaming analogue of :meth:`identify`: the
        baseline is pushed whole, the target in ``chunk_size``-packet
        chunks, and the finalized label is returned.  The finalized
        features are invariant to ``chunk_size`` (accumulators ingest
        one packet at a time regardless); they differ from the batch
        path only through the windowed amplitude denoise.
        """
        if self._classifier is None:
            raise RuntimeError("WiMi is not fitted; call fit() first")
        from repro.csi.model import CsiTrace

        stream = self.streaming_extractor(
            scene=session.scene,
            window_size=window_size,
            hop=hop,
            material_name=session.material_name,
        )
        stream.push_baseline(session.baseline)
        packets = list(session.target.packets)
        step = max(int(chunk_size), 1)
        for start in range(0, len(packets), step):
            stream.push_target(
                CsiTrace(
                    packets=packets[start:start + step],
                    carrier_hz=session.target.carrier_hz,
                    label=session.target.label,
                )
            )
        return stream.finalize().label

    # ------------------------------------------------------------------
    # Model registry (warm-start serving)
    # ------------------------------------------------------------------

    def save_to_registry(
        self,
        registry=None,
        name: str = "wimi",
        metrics: dict | None = None,
        promote: bool = True,
    ) -> str:
        """Persist the fitted model as a registry version; returns it.

        The bundle captures everything a fresh process needs to serve
        without retraining: reference Omega-bar dictionary, full config,
        deployment calibration (pairs/subcarriers), the feature database
        and the trained classifier.  The manifest records the
        result-shaping config fingerprint, the training-set hash, the
        classifier token and any caller-supplied ``metrics``.

        Args:
            registry: A :class:`repro.persist.ModelRegistry` or a path;
                defaults to ``config.model_registry_path``.
            name: Model name inside the registry.
            metrics: Evaluation numbers to record in the manifest.
            promote: Whether the new version becomes CURRENT.
        """
        if self._classifier is None:
            raise RuntimeError("WiMi is not fitted; call fit() first")
        registry = self._resolve_registry(registry)

        db_meta, db_arrays = self.database.to_state()
        clf_meta, clf_arrays = self._classifier.to_state()
        refs = self.extractor.reference_omegas
        meta = {
            "reference_omegas": (
                {str(k): float(v) for k, v in refs.items()}
                if isinstance(refs, dict)
                else [float(v) for v in refs]
            ),
            "config": dataclasses.asdict(self.config),
            "calibration": {
                "pair": list(self._pair) if self._pair else None,
                "feature_pairs": (
                    [list(p) for p in self._feature_pairs]
                    if self._feature_pairs is not None
                    else None
                ),
                "ranked_pairs": (
                    [list(p) for p in self._ranked_pairs]
                    if self._ranked_pairs is not None
                    else None
                ),
                "coarse_pair": (
                    list(self._coarse_pair) if self._coarse_pair else None
                ),
                "subcarriers": (
                    list(self._subcarriers)
                    if self._subcarriers is not None
                    else None
                ),
                "subcarriers_by_pair": {
                    f"{i},{j}": list(subcarriers)
                    for (i, j), subcarriers in
                    self._subcarriers_by_pair.items()
                },
            },
            "database": db_meta,
            "classifier": clf_meta,
            "classifier_token": self._classifier_token,
        }
        arrays = {**db_arrays, **clf_arrays}
        manifest = {
            "config_fingerprint": _deployment_config_fingerprint(self.config),
            "training_set_hash": self.database.content_hash(),
            "classifier_token": self._classifier_token,
            "materials": self.database.labels,
            "num_entries": len(self.database),
            "metrics": metrics or {},
        }
        return registry.save(
            name, meta, arrays, manifest=manifest, promote=promote
        )

    @classmethod
    def from_registry(
        cls,
        registry,
        name: str = "wimi",
        version: str | None = None,
        cache: StageCache | None = None,
        config_overrides: dict | None = None,
    ) -> "WiMi":
        """Warm-start: rebuild a fitted pipeline from a registry bundle.

        The returned instance serves identify requests immediately --
        calibration, database and classifier are restored bit-exactly,
        and the classifier token matches what a fresh training run on
        the same data would produce, so persisted ``classify`` artifacts
        resolve across the process boundary.

        Args:
            registry: A :class:`repro.persist.ModelRegistry` or a path.
            name: Model name inside the registry.
            version: Version to load (default: CURRENT).
            cache: Optional stage cache (defaults to mounting the
                restored config's ``artifact_store_path``).
            config_overrides: Config fields to replace on load -- e.g.
                repoint ``artifact_store_path`` on a machine with a
                different filesystem layout.
        """
        from repro.persist.registry import ModelRegistry

        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        meta, arrays, _manifest = registry.load(name, version)

        config_dict = dict(meta["config"])
        thresholds = config_dict.pop("quality_thresholds", None)
        for field in ("subcarrier_override", "antenna_pair"):
            if config_dict.get(field) is not None:
                config_dict[field] = tuple(config_dict[field])
        if config_overrides:
            config_dict.update(config_overrides)
            thresholds = config_dict.pop("quality_thresholds", thresholds)
        if thresholds is not None and not isinstance(
            thresholds, QualityThresholds
        ):
            thresholds = QualityThresholds(**thresholds)
        config = WiMiConfig(
            **config_dict,
            **(
                {"quality_thresholds": thresholds}
                if thresholds is not None
                else {}
            ),
        )

        refs = meta["reference_omegas"]
        reference_omegas = (
            {str(k): float(v) for k, v in refs.items()}
            if isinstance(refs, dict)
            else [float(v) for v in refs]
        )
        wimi = cls(reference_omegas, config=config, cache=cache)

        calibration = meta["calibration"]

        def _tuple_or_none(value):
            return tuple(int(v) for v in value) if value else None

        wimi._pair = _tuple_or_none(calibration["pair"])
        wimi._feature_pairs = (
            [tuple(int(v) for v in p) for p in calibration["feature_pairs"]]
            if calibration["feature_pairs"] is not None
            else None
        )
        wimi._ranked_pairs = (
            [tuple(int(v) for v in p) for p in calibration["ranked_pairs"]]
            if calibration["ranked_pairs"] is not None
            else None
        )
        wimi._coarse_pair = _tuple_or_none(calibration["coarse_pair"])
        wimi._subcarriers = (
            [int(k) for k in calibration["subcarriers"]]
            if calibration["subcarriers"] is not None
            else None
        )
        wimi._subcarriers_by_pair = {
            tuple(int(v) for v in key.split(",")): [int(k) for k in subs]
            for key, subs in calibration["subcarriers_by_pair"].items()
        }

        wimi.database = MaterialDatabase.from_state(meta["database"], arrays)
        wimi._classifier = DatabaseClassifier.from_state(
            meta["classifier"], arrays
        )
        wimi._classifier_token = str(meta["classifier_token"])
        return wimi

    def _resolve_registry(self, registry):
        """Coerce a registry argument (or the configured path)."""
        from repro.persist.registry import ModelRegistry

        if isinstance(registry, ModelRegistry):
            return registry
        if registry is not None:
            return ModelRegistry(registry)
        if self.config.model_registry_path is None:
            raise ValueError(
                "no registry given and config.model_registry_path is unset"
            )
        return ModelRegistry(self.config.model_registry_path)
