"""Streaming feature extraction: packets in, converging Omega-bar out.

The batch pipeline buffers a whole paired capture before the first DSP
stage runs, so identify latency grows with trace length.
:class:`StreamingExtractor` consumes packets *one at a time* (or in
micro-chunks) and keeps per-trace running state instead:

* phase side -- per-(antenna pair, subcarrier) circular resultants
  (:class:`repro.dsp.streaming.RunningCircularStats`), updated in O(K)
  per packet, converging to exactly the batch circular mean;
* amplitude side -- raw amplitude rows buffered and denoised in
  fixed-size overlapping windows as each window completes (the
  ``stream_window_denoise`` engine stage, so windows are cached by
  content), overlap-added into a running denoised estimate.

``estimate()`` can be polled at any time for the current Omega-bar with
a per-window confidence; ``finalize()`` emits a tail window covering the
last packets, runs the session through the same quality gate and
degraded-capture fallbacks as the batch path, and extracts
:class:`~repro.core.feature.SessionFeatures` via the existing
``measure_from_observables`` + gamma-resolution machinery.

Determinism: all accumulators ingest one packet per step and the window
schedule depends only on the final packet count, so the finalized
features are a pure function of the packet sequence -- chunk sizes 1, 7
and full-trace give bit-identical results.  The finalized *values*
differ from the batch path only through the windowed-vs-full-trace
wavelet denoise (documented tolerance in
``tests/test_perf_equivalence.py``); predictions match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.amplitude import _AMPLITUDE_EPS
from repro.core.feature import (
    SessionFeatures,
    coarse_omega_estimate,
    resolve_gamma,
    resolve_gamma_with_coarse,
)
from repro.csi.collector import CaptureSession
from repro.csi.model import CsiPacket, CsiTrace
from repro.dsp.precision import real_dtype
from repro.dsp.ringbuffer import RowRingBuffer
from repro.dsp.stats import circular_mean, finite_mean, finite_median, wrap_phase
from repro.dsp.streaming import (
    OverlapWindowDenoiser,
    RollingMad,
    RunningCircularStats,
    RunningVariance,
)


@dataclass(frozen=True)
class StreamingEstimate:
    """Snapshot of the converging material-feature estimate.

    Attributes:
        omega: Current Omega-bar estimate (NaN until at least one
            denoised window exists on each trace).
        gamma: Phase-wrap integer resolved for the current estimate.
        confidence: Heuristic in [0, 1]: phase-resultant concentration
            of both traces times a convergence score of the per-window
            Omega-bar history.  0 while no estimate exists.
        baseline_packets: Packets ingested into the baseline trace.
        target_packets: Packets ingested into the target trace.
        windows_denoised: Denoised windows so far (both traces).
        amplitude_mad: Rolling MAD of the target's per-packet log
            amplitude ratio (raw-data noise diagnostic; NaN while
            empty).
    """

    omega: float
    gamma: int
    confidence: float
    baseline_packets: int
    target_packets: int
    windows_denoised: int
    amplitude_mad: float

    @property
    def ready(self) -> bool:
        """Whether a finite Omega-bar estimate exists yet."""
        return math.isfinite(self.omega)


@dataclass
class StreamingResult:
    """Finalized output of a streaming session.

    Attributes:
        label: Predicted material.
        confidence: Classifier confidence (centroid-margin score).
        features: Extracted feature blocks (same type the batch path
            produces, including the quality report).
        estimate: Final streaming estimate snapshot.
        session: The reassembled capture session (for auditing).
    """

    label: str
    confidence: float
    features: SessionFeatures
    estimate: StreamingEstimate
    session: CaptureSession


class _TraceStream:
    """Running state of one trace (baseline or target) of a stream."""

    def __init__(
        self,
        num_subcarriers: int,
        num_antennas: int,
        denoise,
        precision: str = "float64",
    ):
        self.num_subcarriers = num_subcarriers
        self.num_antennas = num_antennas
        self._denoise = denoise  # (rows, start) -> denoised rows
        self._dtype = real_dtype(precision)
        self._pairs = [
            (i, j)
            for i in range(num_antennas)
            for j in range(i + 1, num_antennas)
        ]
        self._phase = {
            pair: RunningCircularStats((num_subcarriers,), precision)
            for pair in self._pairs
        }
        self.packets: list[CsiPacket] = []
        channels = num_subcarriers * num_antennas
        # Raw |H| rows in one contiguous arena: each denoise window is a
        # zero-copy view of it instead of an np.stack over a row list.
        self._rows = RowRingBuffer(channels, dtype=self._dtype)
        self._den_sum = np.zeros((0, channels), dtype=self._dtype)
        self._weight = np.zeros((0, channels), dtype=np.int64)
        self._next_start = 0
        self._covered_end = 0
        self.windows_denoised = 0
        self.carrier_hz: float | None = None
        self._denoised_cache: tuple[tuple[int, int], np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.packets)

    # ------------------------------------------------------------------

    def push(
        self, packet: CsiPacket, window_size: int, hop: int
    ) -> np.ndarray:
        """Ingest one packet; denoise any window it completes.

        Returns the packet's raw amplitude row (for diagnostics).
        """
        if packet.csi.shape != (self.num_subcarriers, self.num_antennas):
            raise ValueError(
                f"packet shape {packet.csi.shape} does not match the "
                f"stream's ({self.num_subcarriers}, {self.num_antennas})"
            )
        self.packets.append(packet)
        row = self._rows.append(np.abs(packet.csi).ravel())
        csi = packet.csi
        for (i, j), stats in self._phase.items():
            stats.add(np.angle(csi[:, i] * np.conj(csi[:, j])))
        n = len(self._rows)
        while self._next_start + window_size <= n:
            self._emit_window(self._next_start, window_size)
            self._next_start += hop
        return row

    def _emit_window(self, start: int, window_size: int) -> None:
        stop = min(start + window_size, len(self._rows))
        # Zero-copy: the window is a contiguous read-only view of the
        # row arena; the denoise stage hashes and reads it, never
        # mutates it (its outputs are fresh arrays).
        slab = self._rows.window(start, stop)
        out = np.asarray(self._denoise(slab, start), dtype=self._dtype)
        self._ensure_capacity(stop)
        OverlapWindowDenoiser.accumulate(
            self._den_sum, self._weight, start, out
        )
        self._covered_end = max(self._covered_end, stop)
        self.windows_denoised += 1

    def finalize_windows(self, window_size: int) -> None:
        """Emit the tail window so every packet is denoised at least once."""
        n = len(self._rows)
        if n == 0 or self._covered_end >= n:
            return
        self._emit_window(max(n - window_size, 0), window_size)

    def _ensure_capacity(self, rows: int) -> None:
        have = self._den_sum.shape[0]
        if have >= rows:
            return
        capacity = max(16, 2 * have, rows)
        channels = self._den_sum.shape[1]
        den_sum = np.zeros((capacity, channels), dtype=self._den_sum.dtype)
        den_sum[:have] = self._den_sum
        weight = np.zeros((capacity, channels), dtype=np.int64)
        weight[:have] = self._weight
        self._den_sum = den_sum
        self._weight = weight

    # ------------------------------------------------------------------

    def phase_mean(self, pair: tuple[int, int]) -> np.ndarray:
        """Per-subcarrier circular mean of the pair's phase difference."""
        i, j = int(pair[0]), int(pair[1])
        if (i, j) in self._phase:
            return self._phase[(i, j)].mean()
        # angle(H_j conj H_i) = -angle(H_i conj H_j) per packet, and the
        # circular mean commutes with negation.
        return -self._phase[(j, i)].mean()

    def phase_resultant(self, pair: tuple[int, int]) -> np.ndarray:
        """Per-subcarrier resultant length (concentration) of the pair."""
        i, j = int(pair[0]), int(pair[1])
        key = (i, j) if (i, j) in self._phase else (j, i)
        return self._phase[key].resultant_length()

    def denoised(self) -> np.ndarray:
        """Current denoised cube ``(n, K, A)``; NaN where not yet covered.

        Memoized per (packet count, window count) so the several
        per-pair reads of one ``estimate()`` poll resolve the overlap
        buffers once.
        """
        n = len(self._rows)
        if n == 0:
            raise ValueError("empty stream")
        token = (n, self.windows_denoised)
        if self._denoised_cache is not None and \
                self._denoised_cache[0] == token:
            return self._denoised_cache[1]
        self._ensure_capacity(n)
        den = OverlapWindowDenoiser.resolve(
            self._den_sum[:n], self._weight[:n]
        )
        den = np.clip(den, _AMPLITUDE_EPS, None)
        den = den.reshape(n, self.num_subcarriers, self.num_antennas)
        den.setflags(write=False)
        self._denoised_cache = (token, den)
        return den

    def mean_log_ratio(self, pair: tuple[int, int]) -> np.ndarray:
        """Per-subcarrier mean log amplitude ratio over denoised packets."""
        i, j = int(pair[0]), int(pair[1])
        den = self.denoised()
        ratio = den[:, :, i] / den[:, :, j]
        return finite_mean(np.log(ratio), axis=0)

    def to_trace(self, label: str) -> CsiTrace:
        """The accumulated packets as a :class:`CsiTrace`."""
        kwargs = {}
        if self.carrier_hz is not None:
            kwargs["carrier_hz"] = self.carrier_hz
        return CsiTrace(packets=list(self.packets), label=label, **kwargs)


class StreamingExtractor:
    """Consumes CSI packets incrementally, emits converging Omega-bar.

    Built from a *fitted* :class:`~repro.core.pipeline.WiMi`; reuses its
    deployment calibration (antenna pairs, good subcarriers), its
    engine (streaming windows are cached ``stream_window_denoise``
    stage artifacts) and, at :meth:`finalize`, its quality gate,
    degraded-capture fallbacks and classifier.

    Args:
        wimi: Fitted pipeline facade.
        scene: Deployment scene recorded on the finalized session
            (optional; replays pass the original session's scene).
        window_size: Streaming window override (default
            ``config.stream_window_size``).
        hop: Window stride override (default ``config.stream_hop``).
        material_name: Ground-truth label, when known (replays).
    """

    def __init__(
        self,
        wimi,
        scene=None,
        window_size: int | None = None,
        hop: int | None = None,
        material_name: str = "",
    ):
        if not wimi.is_fitted:
            raise RuntimeError(
                "WiMi is not fitted; streaming extraction needs the "
                "calibrated pairs/subcarriers and a trained classifier"
            )
        self._wimi = wimi
        self._scene = scene
        self._material_name = material_name
        config = wimi.config
        self.window_size = (
            int(window_size) if window_size is not None
            else config.stream_window_size
        )
        self.hop = int(hop) if hop is not None else config.stream_hop
        if self.window_size < 1:
            raise ValueError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        if not 1 <= self.hop <= self.window_size:
            raise ValueError(
                f"hop must be in [1, window_size={self.window_size}], "
                f"got {self.hop}"
            )
        self._pair = wimi.calibrated_pair
        self._subcarriers = wimi.calibrated_subcarriers
        if self._pair is None or not self._subcarriers:
            raise RuntimeError(
                "WiMi has no calibrated pair/subcarriers to stream against"
            )
        self._baseline: _TraceStream | None = None
        self._target: _TraceStream | None = None
        self._omega_track = RunningVariance()
        self._tracked_windows = 0
        self._ratio_mad = RollingMad(window=4 * self.window_size)
        self._result: StreamingResult | None = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has run (no more packets accepted)."""
        return self._result is not None

    def _coerce_packets(self, packets) -> tuple[list[CsiPacket], float | None]:
        if isinstance(packets, CsiPacket):
            return [packets], None
        if isinstance(packets, CsiTrace):
            return list(packets.packets), packets.carrier_hz
        return list(packets), None

    def _stream_for(
        self, which: str, first: CsiPacket
    ) -> _TraceStream:
        existing = self._baseline if which == "baseline" else self._target
        if existing is not None:
            return existing
        num_sc, num_ant = first.csi.shape
        other = self._target if which == "baseline" else self._baseline
        if other is not None and (
            num_sc != other.num_subcarriers or num_ant != other.num_antennas
        ):
            raise ValueError(
                f"{which} packet shape {(num_sc, num_ant)} does not match "
                f"the paired trace's "
                f"({other.num_subcarriers}, {other.num_antennas})"
            )
        engine = self._wimi.engine
        stream = _TraceStream(
            num_sc,
            num_ant,
            denoise=lambda rows, start: engine.stream_window_denoise(
                rows, start
            ).amplitudes,
            precision=self._wimi.config.compute_precision,
        )
        if which == "baseline":
            self._baseline = stream
        else:
            self._target = stream
        return stream

    def _push(self, which: str, packets) -> None:
        if self._result is not None:
            raise RuntimeError("stream already finalized")
        items, carrier_hz = self._coerce_packets(packets)
        if not items:
            return
        stream = self._stream_for(which, items[0])
        if carrier_hz is not None:
            stream.carrier_hz = carrier_hz
        i, j = self._pair
        for packet in items:
            row = stream.push(packet, self.window_size, self.hop)
            if which == "target":
                amp = np.clip(
                    row.reshape(stream.num_subcarriers, stream.num_antennas),
                    _AMPLITUDE_EPS,
                    None,
                )
                self._ratio_mad.add(
                    finite_mean(np.log(amp[:, i] / amp[:, j]))
                )

    def push_baseline(self, packets) -> None:
        """Ingest baseline packets (a packet, a trace, or an iterable)."""
        self._push("baseline", packets)

    def push_target(self, packets) -> None:
        """Ingest target packets (a packet, a trace, or an iterable)."""
        self._push("target", packets)

    # ------------------------------------------------------------------
    # Observables from running state
    # ------------------------------------------------------------------

    def _observables(
        self, pair: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 18/19 observables for ``pair`` from the running state.

        Same construction as the batch ``observables`` stage, with the
        running circular resultants standing in for the packet-axis
        circular mean and the overlap-added windows standing in for the
        full-trace denoised cubes.
        """
        base = self._baseline
        target = self._target
        theta = -np.asarray(
            wrap_phase(target.phase_mean(pair) - base.phase_mean(pair))
        )
        neg_log_psi = -(
            target.mean_log_ratio(pair) - base.mean_log_ratio(pair)
        )
        return theta, neg_log_psi

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------

    def _empty_estimate(self) -> StreamingEstimate:
        return StreamingEstimate(
            omega=math.nan,
            gamma=0,
            confidence=0.0,
            baseline_packets=len(self._baseline) if self._baseline else 0,
            target_packets=len(self._target) if self._target else 0,
            windows_denoised=self._windows_denoised(),
            amplitude_mad=self._ratio_mad.value(),
        )

    def _windows_denoised(self) -> int:
        total = 0
        for stream in (self._baseline, self._target):
            if stream is not None:
                total += stream.windows_denoised
        return total

    def estimate(self) -> StreamingEstimate:
        """Current Omega-bar estimate from the data so far.

        Cheap enough to poll per packet; NaN omega / zero confidence
        until both traces have at least one denoised window.  Unlike
        :meth:`finalize` this aggregates NaN-tolerantly (a degraded
        subcarrier is simply excluded mid-stream; the hard quality
        gate runs at finalize).
        """
        if self._result is not None:
            return self._result.estimate
        if self._baseline is None or self._target is None:
            return self._empty_estimate()
        wimi = self._wimi
        pair = self._pair
        sel = self._subcarriers
        theta_all, neg_all = self._observables(pair)
        theta_sel = theta_all[sel]
        n_sel = neg_all[sel]
        if not np.isfinite(theta_sel).any() or not np.isfinite(n_sel).any():
            return self._empty_estimate()
        theta_agg = circular_mean(theta_sel, ignore_nan=True)
        n_agg = float(finite_mean(n_sel))
        if not (math.isfinite(theta_agg) and math.isfinite(n_agg)):
            return self._empty_estimate()

        # Coarse anchor from the calibrated small-lever pair, when live.
        omega_coarse = math.nan
        coarse = wimi.calibrated_coarse_pair
        if coarse is not None and tuple(coarse) != tuple(pair):
            c_theta, c_n = self._observables(coarse)
            c_theta_agg = circular_mean(c_theta, ignore_nan=True)
            c_n_agg = float(finite_median(c_n))
            if math.isfinite(c_theta_agg) and math.isfinite(c_n_agg):
                omega_coarse = coarse_omega_estimate(
                    c_theta_agg, c_n_agg, wimi.extractor.reference_omegas
                )
        if math.isfinite(omega_coarse) and omega_coarse > 0:
            gamma, omega = resolve_gamma_with_coarse(
                theta_agg, n_agg, omega_coarse, wimi.config.max_gamma
            )
        else:
            gamma, omega = resolve_gamma(
                theta_agg,
                n_agg,
                wimi.extractor.reference_omegas,
                wimi.config.max_gamma,
                wimi.config.gamma_strategy,
            )

        windows = self._windows_denoised()
        if windows > self._tracked_windows:
            self._omega_track.add(omega)
            self._tracked_windows = windows
        confidence = self._confidence(pair, sel)
        return StreamingEstimate(
            omega=float(omega),
            gamma=int(gamma),
            confidence=confidence,
            baseline_packets=len(self._baseline),
            target_packets=len(self._target),
            windows_denoised=windows,
            amplitude_mad=self._ratio_mad.value(),
        )

    def _confidence(self, pair, subcarriers) -> float:
        """Phase concentration x Omega-bar convergence, in [0, 1]."""
        concentrations = []
        for stream in (self._baseline, self._target):
            r = finite_mean(
                np.asarray(stream.phase_resultant(pair))[subcarriers]
            )
            concentrations.append(r if math.isfinite(r) else 0.0)
        concentration = min(concentrations)
        if self._omega_track.count >= 2:
            mean = abs(self._omega_track.mean)
            spread = self._omega_track.std / max(mean, 1e-12)
            convergence = 1.0 / (1.0 + spread)
        else:
            # A single window: concentration alone, discounted.
            convergence = 0.5
        return float(min(max(concentration * convergence, 0.0), 1.0))

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------

    def finalize(self) -> StreamingResult:
        """Close the stream: tail windows, quality gate, features, label.

        Runs the exact batch-path session machinery -- quality gating
        (warns/raises per ``config.degradation_policy``), dead-pair
        substitution, subcarrier exclusion + top-up, coarse re-derivation
        -- over observables assembled from the streaming state, then
        classifies.  Idempotent: repeated calls return the same result.
        """
        if self._result is not None:
            return self._result
        if not self._baseline or not self._target:
            raise RuntimeError(
                "cannot finalize: both baseline and target packets are "
                "required"
            )
        wimi = self._wimi
        self._baseline.finalize_windows(self.window_size)
        self._target.finalize_windows(self.window_size)

        session = CaptureSession(
            baseline=self._baseline.to_trace("baseline/stream"),
            target=self._target.to_trace("target/stream"),
            material_name=self._material_name,
            scene=self._scene,
        )
        quality = wimi._gate(session)
        pairs = wimi._session_pairs(session)
        coarse = wimi.calibrated_coarse_pair
        exclude_sc: tuple[int, ...] = ()
        coarse_fallback = False
        if quality is not None and quality.is_degraded:
            pairs, coarse = wimi._degraded_plan(session, quality, pairs)
            exclude_sc = tuple(quality.bad_subcarriers)
            coarse_fallback = wimi.config.include_coarse_feature
        if (
            coarse is None
            and not coarse_fallback
            and wimi.config.use_coarse_pair
            and session.num_antennas >= 3
        ):
            # Uncalibrated coarse pair: fall back to the batch derivation
            # (one full denoiser pass; only reachable when calibrate()
            # found no coarse pair, never on the streaming hot path).
            coarse = wimi._find_coarse_pair(session, pairs[0])

        coarse_obs = None
        if coarse is not None:
            coarse_obs = self._observables(coarse)
        measurements = []
        for pair in pairs:
            subcarriers = wimi._subcarriers_for(
                session, pair, exclude=exclude_sc
            )
            theta_all, neg_all = self._observables(pair)
            measurement = wimi.extractor.measure_from_observables(
                pair,
                list(subcarriers),
                theta_all,
                neg_all,
                coarse_observables=(
                    coarse_obs if coarse is not None and coarse != pair
                    else None
                ),
                true_omega=None,
                include_coarse_feature=wimi.config.include_coarse_feature,
                material_name=session.material_name,
                coarse_fallback=coarse_fallback,
            )
            measurements.append(measurement)
        features = SessionFeatures(
            measurements=measurements,
            material_name=session.material_name,
            quality=quality,
        )
        artifact = wimi._classify(features)

        main = measurements[0]
        estimate = StreamingEstimate(
            omega=float(main.omega_mean),
            gamma=int(main.gamma),
            confidence=self._confidence(main.pair, main.subcarriers),
            baseline_packets=len(self._baseline),
            target_packets=len(self._target),
            windows_denoised=self._windows_denoised(),
            amplitude_mad=self._ratio_mad.value(),
        )
        self._result = StreamingResult(
            label=artifact.label,
            confidence=artifact.confidence,
            features=features,
            estimate=estimate,
            session=session,
        )
        return self._result
