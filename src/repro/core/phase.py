"""Phase Calibration Module (paper Sec. III-B, Eq. 5-6).

Raw CSI phase from a commodity NIC is corrupted per packet by carrier
frequency offset, sampling frequency offset and packet boundary delay --
``phi_measured = phi_true + k (lam_b + lam_s) + beta + Z`` (Eq. 5) -- so
across packets it is uniformly scattered over ``[0, 2 pi)`` (Fig. 2).

All antennas of one board share the sampling and oscillator clocks, so the
corruption is *common mode*: the phase difference between two antennas,

    Delta-phi_k = phi_k,i - phi_k,j = true difference + Delta-Z   (Eq. 6),

removes it entirely, leaving only the Gaussian measurement-noise
difference ``Delta-Z``, which averages out over a packet window.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import validate_antenna, validate_antenna_pair
from repro.csi.model import CsiTrace
from repro.dsp.stats import (
    angular_spread_deg,
    angular_spread_deg_axis,
    circular_mean_axis,
)


class PhaseCalibrator:
    """Extracts calibrated inter-antenna phase differences from traces."""

    def raw_phases(self, trace: CsiTrace, antenna: int = 0) -> np.ndarray:
        """Uncalibrated per-packet phases, shape ``(M, K)``.

        These are the grey dots of Fig. 2: dominated by per-packet clock
        errors, useless for sensing.  Exposed for the microbenchmarks.
        """
        self._check_antenna(trace, antenna)
        return np.angle(trace.matrix()[:, :, antenna])

    def phase_difference(
        self, trace: CsiTrace, pair: tuple[int, int]
    ) -> np.ndarray:
        """Eq. 6: per-packet inter-antenna phase difference, shape ``(M, K)``.

        Computed as ``angle(H_i * conj(H_j))``, which is inherently wrapped
        to ``(-pi, pi]`` and immune to the common clock corruption.
        """
        i, j = self._check_pair(trace, pair)
        matrix = trace.matrix()
        return np.angle(matrix[:, :, i] * np.conj(matrix[:, :, j]))

    def averaged_phase_difference(
        self, trace: CsiTrace, pair: tuple[int, int]
    ) -> np.ndarray:
        """Per-subcarrier circular mean over the packet window, shape ``(K,)``.

        This is the "averaging over a time window" that removes
        ``Delta-Z`` in Eq. 6.

        NaN-aware: packets with non-finite readings on a subcarrier are
        excluded from that subcarrier's mean (bit-identical to the plain
        mean on clean traces); a subcarrier with no finite reading at
        all averages to NaN, which the downstream feature guard rejects
        by name.
        """
        diffs = self.phase_difference(trace, pair)
        return circular_mean_axis(diffs, axis=0, ignore_nan=True)

    def angular_fluctuation_deg(
        self,
        trace: CsiTrace,
        pair: tuple[int, int] | None = None,
        antenna: int = 0,
        subcarrier: int | None = None,
    ) -> float:
        """The paper's Fig. 2/12 spread metric, in degrees.

        With ``pair`` given, measures the spread of the calibrated phase
        differences; otherwise the spread of raw single-antenna phase.
        ``subcarrier`` restricts to one report position (the figures plot a
        single subcarrier); default pools all subcarriers' deviations from
        their own means.
        """
        if pair is not None:
            values = self.phase_difference(trace, pair)
        else:
            values = self.raw_phases(trace, antenna)
        if subcarrier is not None:
            if not 0 <= subcarrier < values.shape[1]:
                raise ValueError(
                    f"subcarrier {subcarrier} out of range "
                    f"[0, {values.shape[1]})"
                )
            return angular_spread_deg(values[:, subcarrier])
        # Pool per-subcarrier spreads (each subcarrier has its own centre).
        return float(np.mean(angular_spread_deg_axis(values, axis=0)))

    # ------------------------------------------------------------------

    @staticmethod
    def _check_antenna(trace: CsiTrace, antenna: int) -> None:
        if len(trace) == 0:
            raise ValueError("empty trace")
        validate_antenna(antenna, trace.num_antennas)

    @staticmethod
    def _check_pair(trace: CsiTrace, pair: tuple[int, int]) -> tuple[int, int]:
        if len(trace) == 0:
            raise ValueError("empty trace")
        return validate_antenna_pair(pair, trace.num_antennas)
