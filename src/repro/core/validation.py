"""Shared input validation for the core pipeline modules.

The antenna-pair range check used to be copy-pasted across
``core/amplitude.py``, ``core/phase.py`` and the antenna selector; it
lives here once so every module raises identical, grep-able messages.
"""

from __future__ import annotations


def validate_antenna(antenna: int, num_antennas: int) -> int:
    """Check a single antenna index against the array size."""
    if not 0 <= antenna < num_antennas:
        raise ValueError(
            f"antenna {antenna} out of range [0, {num_antennas})"
        )
    return antenna


def validate_antenna_pair(
    pair: tuple[int, int], num_antennas: int
) -> tuple[int, int]:
    """Check that ``pair`` names two distinct in-range antennas.

    Returns the pair unpacked as ``(i, j)`` so call sites can keep their
    ``i, j = validate_antenna_pair(...)`` shape.
    """
    i, j = pair
    if i == j:
        raise ValueError(f"antenna pair must be distinct, got {pair}")
    for a in (i, j):
        validate_antenna(a, num_antennas)
    return i, j
