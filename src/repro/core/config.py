"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.csi.quality import QualityThresholds, validate_policy


@dataclass(frozen=True)
class WiMiConfig:
    """Knobs of the WiMi pipeline, with the paper's defaults.

    Attributes:
        num_good_subcarriers: ``P`` of Sec. III-B; the paper selects the
            ``P = 4`` subcarriers with the smallest phase-difference
            variance.
        subcarrier_override: Explicit subcarrier positions (0-based index
            into the 30-entry report) instead of variance-based selection;
            used by the Fig. 13 experiment ("random subcarriers 2, 7, 12"
            vs "good subcarriers 23, 24").
        antenna_pair: Fixed receiver antenna pair ``(i, j)``, or ``None``
            to select the most stable pair automatically (Sec. III-F).
        num_feature_pairs: How many precise antenna pairs contribute
            feature blocks.  ``1`` is the paper's single-pair mode; the
            default ``2`` fuses the two most stable pairs (Sec. III-F
            notes a p-antenna receiver offers p(p-1)/2 usable pairs),
            which stabilises the hard adjacent-liquid cases.  Clamped to
            the pairs actually available.
        denoise_amplitude: Apply the Sec. III-C denoiser before forming
            amplitude ratios (Fig. 14 turns this off for ablation).
        wavelet_name: Filter bank of the amplitude denoiser.
        wavelet_levels: SWT depth of the amplitude denoiser.
        outlier_sigmas: Outlier-rejection threshold.
        classifier: ``"svm"`` (paper), ``"knn"`` or ``"centroid"``.
        svm_c: Soft-margin penalty of the SVM.
        knn_k: Neighbour count for the kNN ablation.
        max_gamma: Search range for the phase-wrap integer of Eq. 21.
        gamma_strategy: ``"dictionary"`` (resolve gamma against the known
            material feature dictionary) or ``"envelope"`` (pick the gamma
            whose Omega-bar lands inside the physical envelope).  Used as
            the fallback when the coarse-pair method is unavailable.
        use_coarse_pair: With three or more antennas, resolve gamma from
            the smallest-lever antenna pair's coarse Omega-bar (the
            paper's "coarse CSI amplitude readings"); falls back to
            ``gamma_strategy`` on two-antenna devices.
        include_coarse_feature: Also append the coarse-pair Omega-bar to
            the feature vector (it is branch-independent and anchors the
            identify-time branch search).  Disable to study a single
            pair/subcarrier in isolation (Fig. 13).
        stream_window_size: Packet window of the streaming denoiser
            (:class:`repro.dsp.streaming.OverlapWindowDenoiser`): each
            window of this many consecutive packets is denoised as soon
            as it completes, so identify latency is bounded by the last
            window instead of the trace length.
        stream_hop: Stride (packets) between consecutive streaming
            windows; ``hop < window`` overlaps windows and overlap-added
            samples are averaged.  Must satisfy ``1 <= hop <= window``.
        compute_precision: Working floating-point precision of the hot
            compute paths: ``"float64"`` (default, bit-compatible with
            the scalar references) or ``"float32"`` (halves memory
            bandwidth in the batched denoiser, the simulator compute
            pass and the Gram-matrix kernels; features stay within the
            documented tolerances and labels are unchanged on the paper
            scenario -- see DESIGN.md §14).  Participates in the cache
            keys of every precision-sensitive stage, so float32 and
            float64 artifacts never alias.
        degradation_policy: How the pipeline treats degraded captures:
            ``"degrade"`` (default -- hard failures raise
            ``CorruptTraceError``, soft issues warn and trigger
            fallbacks), ``"raise"`` (any quality issue is an error) or
            ``"skip"`` (no gating; the pre-hardening behaviour).
        quality_thresholds: Gating thresholds of the quality boundary
            (see :class:`repro.csi.quality.QualityThresholds`).
        artifact_store_path: Directory of the durable artifact tier
            (:class:`repro.persist.ArtifactStore`) mounted behind the
            stage cache; ``None`` (default) keeps the cache
            memory-only.  Neither path participates in stage cache
            keys -- they locate state, they do not change results.
        model_registry_path: Directory of the
            :class:`repro.persist.ModelRegistry` used by
            ``WiMi.save_to_registry``/``WiMi.from_registry`` for
            warm-start serving; ``None`` disables registry wiring.
    """

    num_good_subcarriers: int = 4
    subcarrier_override: tuple[int, ...] | None = None
    antenna_pair: tuple[int, int] | None = None
    num_feature_pairs: int = 2
    denoise_amplitude: bool = True
    wavelet_name: str = "db2"
    wavelet_levels: int = 3
    outlier_sigmas: float = 3.0
    classifier: str = "svm"
    svm_c: float = 10.0
    knn_k: int = 5
    max_gamma: int = 4
    gamma_strategy: str = "dictionary"
    use_coarse_pair: bool = True
    include_coarse_feature: bool = True
    stream_window_size: int = 8
    stream_hop: int = 4
    compute_precision: str = "float64"
    degradation_policy: str = "degrade"
    quality_thresholds: QualityThresholds = field(
        default_factory=QualityThresholds
    )
    artifact_store_path: str | None = None
    model_registry_path: str | None = None

    def __post_init__(self) -> None:
        validate_policy(self.degradation_policy)
        if self.num_good_subcarriers < 1:
            raise ValueError(
                f"num_good_subcarriers must be >= 1, got "
                f"{self.num_good_subcarriers}"
            )
        if self.num_feature_pairs < 1:
            raise ValueError(
                f"num_feature_pairs must be >= 1, got {self.num_feature_pairs}"
            )
        if self.antenna_pair is not None:
            i, j = self.antenna_pair
            if i == j:
                raise ValueError(f"antenna pair must be distinct, got {i},{j}")
            if i < 0 or j < 0:
                raise ValueError(f"antenna indices must be >= 0, got {i},{j}")
        if self.classifier not in ("svm", "knn", "centroid"):
            raise ValueError(
                f"classifier must be svm/knn/centroid, got {self.classifier!r}"
            )
        if self.max_gamma < 0:
            raise ValueError(f"max_gamma must be >= 0, got {self.max_gamma}")
        if self.gamma_strategy not in ("dictionary", "envelope"):
            raise ValueError(
                "gamma_strategy must be 'dictionary' or 'envelope', got "
                f"{self.gamma_strategy!r}"
            )
        if self.outlier_sigmas <= 0:
            raise ValueError(
                f"outlier_sigmas must be positive, got {self.outlier_sigmas}"
            )
        if self.stream_window_size < 1:
            raise ValueError(
                f"stream_window_size must be >= 1, got "
                f"{self.stream_window_size}"
            )
        if not 1 <= self.stream_hop <= self.stream_window_size:
            raise ValueError(
                f"stream_hop must be in [1, stream_window_size="
                f"{self.stream_window_size}], got {self.stream_hop}"
            )
        if self.compute_precision not in ("float64", "float32"):
            raise ValueError(
                "compute_precision must be 'float64' or 'float32', got "
                f"{self.compute_precision!r}"
            )

    def with_overrides(self, **changes) -> "WiMiConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **changes)
