"""Baseline feature extractors the paper argues against.

Section III-D: "The material identification feature introduced in
[TagScan] does not work with commodity Wi-Fi devices ... because the
accurate absolute phase readings and amplitude readings can be obtained
from commodity RFID devices but not from commodity Wi-Fi devices."

:class:`AbsoluteFeatureExtractor` implements that TagScan-style feature
verbatim — single-antenna absolute phase change and amplitude change,
``Omega_abs = -ln(A_tar/A_free) / (phi_tar - phi_free + 2 gamma pi)`` —
so the claim can be tested: on RFID-grade readings it equals Eq. 21's
feature; on commodity Wi-Fi CSI the per-packet clock errors randomise the
phase term and the feature collapses to noise.  The ablation bench
``benchmarks/test_ablation_absolute_feature.py`` quantifies exactly this.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.amplitude import AmplitudeProcessor
from repro.core.feature import (
    FeatureMeasurement,
    _omega_from,
    resolve_gamma_with_coarse,
)
from repro.core.validation import validate_antenna
from repro.csi.collector import CaptureSession
from repro.csi.quality import CorruptTraceError
from repro.dsp.stats import (
    circular_mean,
    circular_mean_axis,
    finite_mean,
    wrap_phase,
)


class AbsoluteFeatureExtractor:
    """TagScan-style single-antenna absolute feature (paper Sec. III-D).

    Uses the *absolute* phase and amplitude change of one antenna between
    the baseline and target captures — exactly what a commodity RFID
    reader provides and a commodity Wi-Fi NIC does not.

    Args:
        reference_omega: A nominal material feature used only to unwrap
            the absolute phase (the same role the dictionary plays for
            WiMi); absolute-feature phase changes are much larger than
            the differential ones, so some unwrap hint is unavoidable.
        antenna: Which receive antenna to read.
        denoise: Apply the amplitude denoiser first (give the baseline
            its best shot).
    """

    def __init__(
        self,
        reference_omega: float,
        antenna: int = 0,
        denoise: bool = True,
        max_gamma: int = 64,
    ):
        if not math.isfinite(reference_omega) or reference_omega <= 0:
            raise ValueError(
                f"reference_omega must be finite positive, got "
                f"{reference_omega}"
            )
        if antenna < 0:
            raise ValueError(f"antenna must be >= 0, got {antenna}")
        if max_gamma < 0:
            raise ValueError(f"max_gamma must be >= 0, got {max_gamma}")
        self.reference_omega = reference_omega
        self.antenna = antenna
        self.max_gamma = max_gamma
        self.amplitude = AmplitudeProcessor(denoise=denoise)

    def measure(
        self, session: CaptureSession, subcarriers: list[int]
    ) -> FeatureMeasurement:
        """Extract the absolute feature from one paired session."""
        if not subcarriers:
            raise ValueError("need at least one selected subcarrier")
        validate_antenna(self.antenna, session.num_antennas)

        # Absolute phase change per subcarrier (paper Eq. 2, negated to
        # the paper's sign convention like the differential extractor).
        # NaN-aware means: degraded packets are excluded per subcarrier.
        base = session.baseline.matrix()[:, :, self.antenna]
        target = session.target.matrix()[:, :, self.antenna]
        base_phase = circular_mean_axis(np.angle(base), axis=0, ignore_nan=True)
        tar_phase = circular_mean_axis(np.angle(target), axis=0, ignore_nan=True)
        theta_all = -np.asarray(wrap_phase(tar_phase - base_phase))

        # Absolute amplitude change per subcarrier (paper Eq. 4).
        base_amp = self.amplitude.clean_amplitudes(session.baseline)
        tar_amp = self.amplitude.clean_amplitudes(session.target)
        ratio = np.exp(
            finite_mean(np.log(tar_amp[:, :, self.antenna]), axis=0)
            - finite_mean(np.log(base_amp[:, :, self.antenna]), axis=0)
        )
        neg_log = -np.log(np.clip(ratio, 1e-12, None))

        theta_sel = theta_all[subcarriers]
        n_sel = neg_log[subcarriers]

        # Boundary guard: fail loudly, naming the dead channel, instead of
        # feeding NaN into gamma resolution.
        bad = sorted(
            {
                int(k)
                for k, t, n in zip(subcarriers, theta_sel, n_sel)
                if not (math.isfinite(t) and math.isfinite(n))
            }
        )
        if bad:
            raise CorruptTraceError(
                f"non-finite observables at subcarrier(s) {bad} on "
                f"antenna {self.antenna}; the channel is dead or "
                f"saturated there"
            )
        theta_agg = circular_mean(theta_sel)
        n_agg = float(np.mean(n_sel))
        # Absolute phase changes span tens of wraps (D, not D1-D2, scales
        # them), hence the wide unwrap range.
        gamma, _ = resolve_gamma_with_coarse(
            theta_agg, n_agg, self.reference_omega, max_gamma=self.max_gamma
        )

        theta_aligned = np.array(
            [
                theta_agg + float(wrap_phase(t - theta_agg))
                for t in theta_sel
            ]
        )
        thetas = theta_aligned + 2.0 * math.pi * gamma
        omegas = np.array(
            [_omega_from(t, n) for t, n in zip(thetas, n_sel)]
        )
        return FeatureMeasurement(
            omegas=omegas,
            delta_theta=thetas,
            delta_psi=np.exp(-n_sel),
            gamma=gamma,
            pair=(self.antenna, self.antenna),
            subcarriers=list(subcarriers),
            material_name=session.material_name,
            theta_aligned=theta_aligned,
            neg_log_psi=np.asarray(n_sel),
        )
