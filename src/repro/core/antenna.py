"""Antenna-pair selection (paper Sec. III-F, Fig. 10, Fig. 21).

A receiver with ``p`` antennas offers ``p (p - 1) / 2`` antenna pairs, and
their phase-difference / amplitude-ratio stability differs: RF chains have
unequal noise and each pair sees slightly different multipath.  WiMi ranks
the pairs by a combined stability score and uses the best.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.amplitude import AmplitudeProcessor
from repro.core.phase import PhaseCalibrator
from repro.core.subcarrier import SubcarrierSelector
from repro.core.validation import validate_antenna_pair
from repro.csi.collector import CaptureSession
from repro.csi.model import CsiTrace


@dataclass(frozen=True)
class PairStability:
    """Stability diagnostics of one antenna pair (Fig. 10 data).

    Lower is better for both components and for the combined score.
    """

    pair: tuple[int, int]
    phase_variance: float
    ratio_variance: float

    @property
    def score(self) -> float:
        """Combined stability score (sum of the normalised variances)."""
        return self.phase_variance + self.ratio_variance


class AntennaPairSelector:
    """Ranks antenna pairs by phase/amplitude stability."""

    def __init__(
        self,
        selector: SubcarrierSelector | None = None,
        amplitude: AmplitudeProcessor | None = None,
    ):
        self.selector = selector if selector is not None else SubcarrierSelector()
        # Raw (undenoised) amplitudes: the selection must be cheap and is a
        # relative comparison, so the denoiser adds nothing here.
        self.amplitude = (
            amplitude if amplitude is not None else AmplitudeProcessor(denoise=False)
        )

    def all_pairs(self, trace: CsiTrace) -> list[tuple[int, int]]:
        """All unordered antenna pairs of a trace."""
        n = trace.num_antennas
        if n < 2:
            raise ValueError(f"need >= 2 antennas, got {n}")
        return [(i, j) for i in range(n) for j in range(i + 1, n)]

    def stability(
        self, session: CaptureSession, pair: tuple[int, int]
    ) -> PairStability:
        """Fig. 10 stability metrics of one pair, pooled over the session."""
        validate_antenna_pair(pair, session.num_antennas)
        phase_var = float(
            np.mean(
                self.selector.combined_variances(
                    session.baseline, session.target, pair
                )
            )
        )
        ratio_var = float(
            np.mean(
                self.amplitude.ratio_variance_per_subcarrier(
                    session.baseline, pair
                )
            )
            + np.mean(
                self.amplitude.ratio_variance_per_subcarrier(
                    session.target, pair
                )
            )
        )
        return PairStability(
            pair=pair, phase_variance=phase_var, ratio_variance=ratio_var
        )

    def rank(self, session: CaptureSession) -> list[PairStability]:
        """All pairs, most stable first."""
        stats = [
            self.stability(session, pair)
            for pair in self.all_pairs(session.baseline)
        ]
        return sorted(stats, key=lambda s: s.score)

    def best_pair(self, session: CaptureSession) -> tuple[int, int]:
        """The most stable antenna pair for this session."""
        return self.rank(session)[0].pair
