"""Antenna-pair selection (paper Sec. III-F, Fig. 10, Fig. 21).

A receiver with ``p`` antennas offers ``p (p - 1) / 2`` antenna pairs, and
their phase-difference / amplitude-ratio stability differs: RF chains have
unequal noise and each pair sees slightly different multipath.  WiMi ranks
the pairs by a combined stability score and uses the best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.amplitude import AmplitudeProcessor
from repro.core.phase import PhaseCalibrator
from repro.core.subcarrier import SubcarrierSelector
from repro.core.validation import validate_antenna_pair
from repro.csi.collector import CaptureSession
from repro.csi.model import CsiTrace
from repro.csi.quality import CorruptTraceError
from repro.dsp.stats import finite_mean


@dataclass(frozen=True)
class PairStability:
    """Stability diagnostics of one antenna pair (Fig. 10 data).

    Lower is better for both components and for the combined score.
    """

    pair: tuple[int, int]
    phase_variance: float
    ratio_variance: float

    @property
    def score(self) -> float:
        """Combined stability score (sum of the normalised variances)."""
        return self.phase_variance + self.ratio_variance

    @property
    def usable(self) -> bool:
        """Whether the score is meaningful (a dead chain scores NaN)."""
        return math.isfinite(self.score)


class AntennaPairSelector:
    """Ranks antenna pairs by phase/amplitude stability."""

    def __init__(
        self,
        selector: SubcarrierSelector | None = None,
        amplitude: AmplitudeProcessor | None = None,
    ):
        self.selector = selector if selector is not None else SubcarrierSelector()
        # Raw (undenoised) amplitudes: the selection must be cheap and is a
        # relative comparison, so the denoiser adds nothing here.
        self.amplitude = (
            amplitude if amplitude is not None else AmplitudeProcessor(denoise=False)
        )

    def all_pairs(
        self,
        trace: CsiTrace,
        exclude_antennas: Sequence[int] | None = None,
    ) -> list[tuple[int, int]]:
        """All unordered antenna pairs of a trace.

        ``exclude_antennas`` drops pairs touching quality-disqualified
        chains; raises :class:`~repro.csi.quality.CorruptTraceError`
        when no pair of live antennas remains.
        """
        n = trace.num_antennas
        if n < 2:
            raise ValueError(f"need >= 2 antennas, got {n}")
        banned = set(exclude_antennas or ())
        pairs = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if i not in banned and j not in banned
        ]
        if not pairs:
            raise CorruptTraceError(
                f"no usable antenna pairs: {sorted(banned)} of {n} "
                f"antennas disqualified by quality gating"
            )
        return pairs

    def stability(
        self, session: CaptureSession, pair: tuple[int, int]
    ) -> PairStability:
        """Fig. 10 stability metrics of one pair, pooled over the session.

        NaN-aware: subcarriers whose score is NaN (dead channels) are
        excluded from the pooled means; a pair with no finite subcarrier
        at all scores NaN and is reported unusable.
        """
        validate_antenna_pair(pair, session.num_antennas)
        phase_var = float(
            finite_mean(
                self.selector.combined_variances(
                    session.baseline, session.target, pair
                )
            )
        )
        ratio_var = float(
            finite_mean(
                self.amplitude.ratio_variance_per_subcarrier(
                    session.baseline, pair
                )
            )
            + finite_mean(
                self.amplitude.ratio_variance_per_subcarrier(
                    session.target, pair
                )
            )
        )
        return PairStability(
            pair=pair, phase_variance=phase_var, ratio_variance=ratio_var
        )

    def rank(
        self,
        session: CaptureSession,
        exclude_antennas: Sequence[int] | None = None,
    ) -> list[PairStability]:
        """Usable pairs, most stable first.

        Pairs touching ``exclude_antennas`` and pairs whose stability
        score is non-finite are omitted; raises
        :class:`~repro.csi.quality.CorruptTraceError` when nothing
        usable remains.
        """
        stats = [
            self.stability(session, pair)
            for pair in self.all_pairs(session.baseline, exclude_antennas)
        ]
        usable = [s for s in stats if s.usable]
        if not usable:
            raise CorruptTraceError(
                f"no antenna pair with a finite stability score among "
                f"{[s.pair for s in stats]} (all candidate chains dead "
                f"or saturated)"
            )
        return sorted(usable, key=lambda s: s.score)

    def best_pair(
        self,
        session: CaptureSession,
        exclude_antennas: Sequence[int] | None = None,
    ) -> tuple[int, int]:
        """The most stable usable antenna pair for this session."""
        return self.rank(session, exclude_antennas)[0].pair
