"""Material feature database (paper Sec. III-E).

"We put the extracted feature values into the material database.  Then,
when identifying a test material, WiMi collects the ... measurements, and
incorporates the material database and the SVM classifier to identify the
target material."

The database stores labelled feature vectors, exposes per-material
statistics (the Fig. 9 clusters), and builds the configured classifier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.feature import FeatureMeasurement
from repro.dsp.precision import validate_precision
from repro.ml.centroid import NearestCentroidClassifier
from repro.ml.kernels import make_kernel
from repro.ml.knn import KNeighborsClassifier
from repro.ml.multiclass import OneVsOneSVC
from repro.ml.scaler import StandardScaler
from repro.ml.svm import BinarySVC


@dataclass
class MaterialDatabase:
    """Labelled store of material feature vectors."""

    entries: dict[str, list[np.ndarray]] = field(default_factory=dict)

    def add(self, measurement: FeatureMeasurement, label: str | None = None) -> None:
        """Store one measurement under ``label`` (defaults to its own
        ground-truth name)."""
        name = label if label is not None else measurement.material_name
        if not name:
            raise ValueError("measurement has no label; pass one explicitly")
        self.entries.setdefault(name, []).append(measurement.vector())

    def add_vector(self, label: str, vector: np.ndarray) -> None:
        """Store a raw feature vector."""
        if not label:
            raise ValueError("label must be non-empty")
        self.entries.setdefault(label, []).append(
            np.asarray(vector, dtype=float)
        )

    @property
    def labels(self) -> list[str]:
        """All material labels, insertion-ordered."""
        return list(self.entries)

    def __len__(self) -> int:
        return sum(len(v) for v in self.entries.values())

    def count(self, label: str) -> int:
        """Number of stored vectors for ``label``."""
        return len(self.entries.get(label, []))

    def mean_feature(self, label: str) -> np.ndarray:
        """Per-material mean feature vector (the Fig. 9 cluster centre)."""
        vectors = self.entries.get(label)
        if not vectors:
            raise KeyError(f"no entries for material {label!r}")
        return np.mean(np.stack(vectors), axis=0)

    def feature_spread(self, label: str) -> float:
        """Std-dev of the scalar (mean-omega) feature for ``label``."""
        vectors = self.entries.get(label)
        if not vectors:
            raise KeyError(f"no entries for material {label!r}")
        scalars = [float(np.mean(v)) for v in vectors]
        return float(np.std(scalars))

    def dataset(self) -> tuple[np.ndarray, np.ndarray]:
        """All vectors as ``(X, y)`` arrays for training."""
        if not self.entries:
            raise ValueError("database is empty")
        xs, ys = [], []
        for label, vectors in self.entries.items():
            for vector in vectors:
                xs.append(vector)
                ys.append(label)
        lengths = {v.size for v in xs}
        if len(lengths) > 1:
            raise ValueError(
                f"inconsistent feature vector lengths in database: {lengths}"
            )
        return np.stack(xs), np.array(ys)

    # ------------------------------------------------------------------
    # Persistence (the npz/json payload convention of repro.persist)
    # ------------------------------------------------------------------

    def content_hash(self) -> str:
        """Deterministic digest of every (label, vector) in the database.

        Used as the registry manifest's training-set hash and as input
        to the deterministic classifier token: two processes holding the
        same training data agree on both.
        """
        digest = hashlib.blake2b(digest_size=16)
        for label, vectors in self.entries.items():
            digest.update(label.encode("utf-8") + b"\0")
            for vector in vectors:
                digest.update(
                    np.ascontiguousarray(vector, dtype=float).tobytes()
                )
            digest.update(b"\1")
        return digest.hexdigest()

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(meta, arrays)`` capturing every entry, bit-exactly."""
        meta = {"labels": list(self.entries)}
        arrays = {}
        for index, vectors in enumerate(self.entries.values()):
            arrays[f"db_{index}"] = (
                np.stack(vectors) if vectors else np.zeros((0, 0))
            )
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: dict, arrays: dict[str, np.ndarray]
    ) -> "MaterialDatabase":
        """Rebuild a database from :meth:`to_state` output."""
        entries: dict[str, list[np.ndarray]] = {}
        for index, label in enumerate(meta["labels"]):
            stacked = np.asarray(arrays[f"db_{index}"], dtype=float)
            entries[str(label)] = [np.array(row) for row in stacked]
        return cls(entries=entries)


class DatabaseClassifier:
    """A scaler + classifier trained from a :class:`MaterialDatabase`."""

    def __init__(
        self,
        kind: str = "svm",
        svm_c: float = 10.0,
        knn_k: int = 5,
        seed: int = 0,
        precision: str = "float64",
    ):
        if kind not in ("svm", "knn", "centroid"):
            raise ValueError(f"unknown classifier kind {kind!r}")
        validate_precision(precision)
        self.kind = kind
        self.svm_c = svm_c
        self.knn_k = knn_k
        self.seed = seed
        #: Working precision of the shared SVM Gram evaluation
        #: (``WiMiConfig.compute_precision``); SMO still accumulates
        #: in float64 either way.
        self.precision = precision
        self._scaler = StandardScaler()
        self._clf = None
        self._centroids: NearestCentroidClassifier | None = None

    def fit(self, database: MaterialDatabase) -> "DatabaseClassifier":
        """Train on everything in the database."""
        x, y = database.dataset()
        if len(set(y.tolist())) < 2:
            raise ValueError("need at least two materials to train")
        x = self._scaler.fit_transform(x)
        if self.kind == "svm":
            self._clf = OneVsOneSVC(
                kernel="rbf",
                C=self.svm_c,
                seed=self.seed,
                precision=self.precision,
            )
        elif self.kind == "knn":
            self._clf = KNeighborsClassifier(k=self.knn_k)
        else:
            self._clf = NearestCentroidClassifier()
        self._clf.fit(x, y)
        # Scaled per-class centroids, used by the branch search.
        self._centroids = NearestCentroidClassifier().fit(x, y)
        return self

    def predict(self, vectors: np.ndarray) -> np.ndarray:
        """Predicted material names for feature vectors."""
        if self._clf is None:
            raise RuntimeError("classifier is not fitted")
        x = self._scaler.transform(np.atleast_2d(vectors))
        return self._clf.predict(x)

    def predict_one(self, measurement: FeatureMeasurement) -> str:
        """Predicted material name for one measurement."""
        return str(self.predict(measurement.vector()[None, :])[0])

    def resolve_branch_and_predict(
        self,
        features,
        max_gamma: int = 4,
        envelope: tuple[float, float] | None = None,
    ) -> str:
        """Database-aided branch resolution + classification.

        ``Delta-Theta`` is only measured modulo ``2 pi``, and which branch
        is correct cannot always be decided from physics alone once the
        deployment's (static, classifier-absorbed) biases are in play.
        But the *database* carries the same biases: so, per feature block,
        the branch whose columns land closest to a known material's
        centroid is the consistent one.  This is the operational meaning
        of the paper's "incorporates the material database and the SVM
        classifier".

        ``features`` is a :class:`repro.core.feature.SessionFeatures` (or
        a single :class:`FeatureMeasurement`, treated as one block).
        """
        from repro.core.feature import SessionFeatures

        if self._clf is None or self._centroids is None:
            raise RuntimeError("classifier is not fitted")
        if isinstance(features, FeatureMeasurement):
            features = SessionFeatures(measurements=[features])

        parts = []
        for block, measurement in enumerate(features.measurements):
            parts.append(
                self._resolve_block(
                    features, block, measurement, max_gamma, envelope
                )
            )
        vector = np.concatenate(parts)
        return str(self.predict(vector[None, :])[0])

    def confidence(self, vector) -> float:
        """How decisively a feature vector matches its nearest material.

        Defined from the scaled centroid distances as
        ``1 - d_nearest / d_second``: ~1 when the vector sits on one
        cluster and far from all others, ~0 when two materials are
        equally plausible.  Useful for flagging out-of-catalog targets
        (e.g. mixtures, Discussion limitation #1), which land between
        clusters.
        """
        import numpy as _np

        if self._centroids is None:
            raise RuntimeError("classifier is not fitted")
        scaled = self._scaler.transform(_np.atleast_2d(vector))
        deltas = self._centroids.centroids_ - scaled
        distances = _np.sqrt(_np.sum(deltas * deltas, axis=1))
        order = _np.sort(distances)
        if order.size < 2 or order[1] == 0.0:
            return 1.0
        return float(max(0.0, 1.0 - order[0] / order[1]))

    # ------------------------------------------------------------------
    # Persistence (the npz/json payload convention of repro.persist)
    # ------------------------------------------------------------------

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(meta, arrays)`` of the full fitted state.

        Everything prediction touches is captured: scaler moments,
        branch-search centroids, and the kind-specific classifier (SVM
        support vectors and multipliers, kNN memorised set, or centroid
        table).  Restoring via :meth:`from_state` yields bit-identical
        ``predict``/``confidence``/``resolve_branch_and_predict``.
        """
        if self._clf is None or self._centroids is None:
            raise RuntimeError("cannot serialize an unfitted classifier")
        meta: dict = {
            "kind": self.kind,
            "svm_c": self.svm_c,
            "knn_k": self.knn_k,
            "seed": self.seed,
            "precision": self.precision,
            "centroid_classes": [str(c) for c in self._centroids.classes_],
        }
        arrays: dict[str, np.ndarray] = {
            "scaler_mean": self._scaler.mean_,
            "scaler_scale": self._scaler.scale_,
            "centroids": self._centroids.centroids_,
        }
        if self.kind == "svm":
            machines = []
            for (a, b), machine in sorted(self._clf._machines.items()):
                prefix = f"svm_{a}_{b}_"
                arrays[prefix + "alpha"] = machine._alpha
                arrays[prefix + "support_x"] = machine._support_x
                arrays[prefix + "support_y"] = machine._support_y
                machines.append(
                    {
                        "a": a,
                        "b": b,
                        "bias": machine._b,
                        "gamma": machine._gamma,
                    }
                )
            meta["svm"] = {
                "classes": [str(c) for c in self._clf.classes_],
                "kernel_name": self._clf.kernel_name,
                "kernel_params": self._clf.kernel_params,
                "C": self._clf.C,
                "seed": self._clf.seed,
                "machines": machines,
            }
        elif self.kind == "knn":
            arrays["knn_x"] = self._clf._x
            meta["knn"] = {
                "k": self._clf.k,
                "labels": [str(label) for label in self._clf._y],
            }
        else:
            arrays["cls_centroids"] = self._clf.centroids_
            meta["centroid"] = {
                "classes": [str(c) for c in self._clf.classes_]
            }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: dict, arrays: dict[str, np.ndarray]
    ) -> "DatabaseClassifier":
        """Rebuild a fitted classifier from :meth:`to_state` output."""
        self = cls(
            kind=str(meta["kind"]),
            svm_c=float(meta["svm_c"]),
            knn_k=int(meta["knn_k"]),
            seed=int(meta["seed"]),
            # Older bundles predate the precision knob; they were
            # trained on the historical float64 path.
            precision=str(meta.get("precision", "float64")),
        )
        self._scaler._mean = np.asarray(arrays["scaler_mean"], dtype=float)
        self._scaler._scale = np.asarray(arrays["scaler_scale"], dtype=float)
        centroids = NearestCentroidClassifier()
        centroids._centroids = np.asarray(arrays["centroids"], dtype=float)
        centroids._classes = np.array(meta["centroid_classes"])
        self._centroids = centroids

        if self.kind == "svm":
            spec = meta["svm"]
            clf = OneVsOneSVC(
                kernel=spec["kernel_name"],
                C=float(spec["C"]),
                seed=int(spec["seed"]),
                **spec["kernel_params"],
            )
            clf._classes = np.array(spec["classes"])
            clf._machines = {}
            for entry in spec["machines"]:
                a, b = int(entry["a"]), int(entry["b"])
                prefix = f"svm_{a}_{b}_"
                machine = BinarySVC(
                    kernel=make_kernel(
                        spec["kernel_name"], **spec["kernel_params"]
                    ),
                    C=float(spec["C"]),
                    seed=int(spec["seed"]),
                )
                machine._alpha = np.asarray(
                    arrays[prefix + "alpha"], dtype=float
                )
                machine._support_x = np.asarray(
                    arrays[prefix + "support_x"], dtype=float
                )
                machine._support_y = np.asarray(
                    arrays[prefix + "support_y"], dtype=float
                )
                machine._b = float(entry["bias"])
                machine._gamma = (
                    None if entry["gamma"] is None else float(entry["gamma"])
                )
                machine._fitted = True
                clf._machines[(a, b)] = machine
            self._clf = clf
        elif self.kind == "knn":
            spec = meta["knn"]
            clf = KNeighborsClassifier(k=int(spec["k"]))
            clf._x = np.asarray(arrays["knn_x"], dtype=float)
            clf._y = np.array(spec["labels"])
            self._clf = clf
        else:
            spec = meta["centroid"]
            clf = NearestCentroidClassifier()
            clf._centroids = np.asarray(arrays["cls_centroids"], dtype=float)
            clf._classes = np.array(spec["classes"])
            self._clf = clf
        return self

    def _resolve_block(
        self,
        features,
        block: int,
        measurement: FeatureMeasurement,
        max_gamma: int,
        envelope: tuple[float, float] | None,
    ) -> np.ndarray:
        """Best-branch columns for one feature block."""
        if measurement.theta_aligned is None:
            return measurement.vector()
        cols = features.block_slices()[block]
        centroid_cols = self._centroids.centroids_[:, cols]
        best_part = None
        best_distance = float("inf")
        for gamma in range(-max_gamma, max_gamma + 1):
            part = measurement.vector_for_gamma(gamma)
            mean_omega = float(np.mean(part[: len(measurement.subcarriers)]))
            if envelope is not None:
                lo, hi = envelope
                if not lo <= mean_omega <= hi:
                    continue
            scaled = (part - self._scaler.mean_[cols]) / self._scaler.scale_[cols]
            deltas = centroid_cols - scaled[None, :]
            distance = float(np.min(np.sum(deltas * deltas, axis=1)))
            if distance < best_distance:
                best_distance = distance
                best_part = part
        if best_part is None:
            best_part = measurement.vector()
        return best_part
