"""WiMi core -- the paper's contribution.

The modules here implement the Fig. 5 workflow on top of the substrates:

* :mod:`repro.core.phase` -- Phase Calibration Module (Eq. 5-6): raw phase
  is useless; the inter-antenna phase difference cancels CFO/SFO/PBD.
* :mod:`repro.core.subcarrier` -- "good" subcarrier selection (Eq. 7,
  Fig. 6): pick the subcarriers whose phase difference is most stable.
* :mod:`repro.core.amplitude` -- Amplitude Denoising Module (Sec. III-C):
  3-sigma outlier rejection + spatially-selective wavelet filtering +
  inter-antenna amplitude ratio.
* :mod:`repro.core.feature` -- the size-independent material feature
  ``Omega-bar`` (Eq. 18-21) with dictionary-aided ``gamma`` resolution.
* :mod:`repro.core.antenna` -- antenna-pair selection (Sec. III-F).
* :mod:`repro.core.database` -- the material feature database.
* :mod:`repro.core.pipeline` -- :class:`WiMi`, the end-to-end system.
* :mod:`repro.core.streaming` -- incremental (packet-at-a-time) feature
  extraction with a converging Omega-bar estimate.
"""

from repro.core.amplitude import AmplitudeProcessor
from repro.core.antenna import AntennaPairSelector, PairStability
from repro.core.config import WiMiConfig
from repro.core.database import MaterialDatabase
from repro.core.feature import (
    FeatureMeasurement,
    MaterialFeatureExtractor,
    SessionFeatures,
    resolve_gamma,
)
from repro.core.phase import PhaseCalibrator
from repro.core.pipeline import WiMi
from repro.core.streaming import (
    StreamingEstimate,
    StreamingExtractor,
    StreamingResult,
)
from repro.core.subcarrier import SubcarrierSelector

__all__ = [
    "AmplitudeProcessor",
    "AntennaPairSelector",
    "FeatureMeasurement",
    "MaterialDatabase",
    "MaterialFeatureExtractor",
    "PairStability",
    "PhaseCalibrator",
    "SessionFeatures",
    "StreamingEstimate",
    "StreamingExtractor",
    "StreamingResult",
    "SubcarrierSelector",
    "WiMi",
    "WiMiConfig",
    "resolve_gamma",
]
