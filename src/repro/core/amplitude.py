"""Amplitude Denoising Module (paper Sec. III-C).

Three stages, mirroring the paper:

1. **Outlier rejection** -- amplitudes outside ``mu +/- 3 sigma`` are
   dropped (replaced by the surviving median).
2. **Impulse-noise removal** -- the spatially-selective wavelet filter of
   Eq. 8-13 (see :mod:`repro.dsp.wavelet_denoise`), applied to each
   (subcarrier, antenna) amplitude time series.
3. **Amplitude ratio** -- close-by antennas see near-identical multipath
   and share the hardware gain, so the *ratio* of their amplitudes is far
   more stable than either amplitude alone (Fig. 8); the ratio is what
   feeds the material feature.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import validate_antenna, validate_antenna_pair
from repro.csi.model import CsiTrace
from repro.dsp.precision import real_dtype
from repro.dsp.stats import finite_mean, finite_median
from repro.dsp.wavelet_denoise import SpatiallySelectiveDenoiser, remove_outliers

#: Amplitudes below this are clamped before ratios/logs (quantisation can
#: produce exact zeros).
_AMPLITUDE_EPS = 1e-9


class AmplitudeProcessor:
    """Denoises CSI amplitudes and forms inter-antenna ratios."""

    def __init__(
        self,
        denoiser: SpatiallySelectiveDenoiser | None = None,
        denoise: bool = True,
    ):
        self.denoiser = (
            denoiser if denoiser is not None else SpatiallySelectiveDenoiser()
        )
        self.denoise = denoise
        # Denoising all (subcarrier, antenna) series of a trace is the
        # pipeline's hot spot and several consumers (each antenna pair,
        # the coarse pair) ask for the same trace; memoise per trace
        # identity.  Traces are de-facto immutable after capture.
        self._cache: dict[int, np.ndarray] = {}
        self._cache_order: list[int] = []

    # ------------------------------------------------------------------

    def clean_amplitudes(self, trace: CsiTrace) -> np.ndarray:
        """Denoised ``|H|`` series, shape ``(M, K, A)``.

        With ``denoise=False`` the raw amplitudes are returned (the
        Fig. 14 ablation).
        """
        key = id(trace)
        if key in self._cache:
            return self._cache[key]
        cleaned = self.compute_clean_amplitudes(trace)
        self._cache[key] = cleaned
        self._cache_order.append(key)
        if len(self._cache_order) > 64:
            oldest = self._cache_order.pop(0)
            self._cache.pop(oldest, None)
        return cleaned

    def compute_clean_amplitudes(self, trace: CsiTrace) -> np.ndarray:
        """Uncached denoising pass over one trace, shape ``(M, K, A)``.

        This is the single entry point the stage-graph engine's
        ``amplitude_denoise`` stage calls: the engine memoizes the result
        in its :class:`repro.engine.cache.StageCache` (keyed by the
        trace's *content* hash, not object identity), so every denoiser
        invocation in the engine path is observable through stage hooks.
        """
        amps = trace.amplitudes()
        if amps.size == 0:
            raise ValueError("empty trace")
        if not self.denoise:
            return np.clip(amps, _AMPLITUDE_EPS, None)
        num_packets, num_sc, num_ant = amps.shape
        # One batched denoiser pass over all (subcarrier, antenna)
        # columns at once: (M, K, A) -> (M, K*A) -> denoise -> back.
        # Cast up front to the denoiser's working precision so the
        # imputation/reshape traffic runs at it too (no-op for float64).
        columns = amps.reshape(num_packets, num_sc * num_ant).astype(
            real_dtype(self.denoiser.precision), copy=False
        )
        # The wavelet convolution would smear a single NaN over the whole
        # series; impute degraded samples with the series' finite median
        # first.  A fully dead series has no median to impute from -- it
        # is denoised as zeros and restored to NaN afterwards, so the
        # quality-driven channel exclusion (not silent garbage) decides
        # its fate.
        finite = np.isfinite(columns)
        dead_columns = None
        if not finite.all():
            medians = finite_median(columns, axis=0)
            fill = np.where(np.isfinite(medians), medians, 0.0)
            columns = np.where(finite, columns, fill[None, :])
            dead = ~finite.any(axis=0)
            if dead.any():
                dead_columns = dead
        if num_packets < 4:
            # Too short for the wavelet stage; outliers only.
            cleaned, _ = remove_outliers(columns, self.denoiser.outlier_sigmas)
        else:
            cleaned = self.denoiser.denoise(columns)
        if dead_columns is not None:
            cleaned = np.where(dead_columns[None, :], np.nan, cleaned)
        cleaned = cleaned.reshape(num_packets, num_sc, num_ant)
        return np.clip(cleaned, _AMPLITUDE_EPS, None)

    def amplitude_ratio(
        self, trace: CsiTrace, pair: tuple[int, int]
    ) -> np.ndarray:
        """Per-packet inter-antenna amplitude ratio, shape ``(M, K)``."""
        i, j = self._check_pair(trace, pair)
        cleaned = self.clean_amplitudes(trace)
        return cleaned[:, :, i] / cleaned[:, :, j]

    def averaged_amplitude_ratio(
        self, trace: CsiTrace, pair: tuple[int, int]
    ) -> np.ndarray:
        """Packet-averaged ratio per subcarrier, shape ``(K,)``.

        Averaged in the log domain, the natural scale of a ratio (the
        feature consumes ``ln`` of it anyway).  Packets that are NaN on a
        subcarrier are excluded from that subcarrier's mean; a subcarrier
        with no finite packet at all averages to NaN for the downstream
        guards to reject by name.
        """
        ratio = self.amplitude_ratio(trace, pair)
        return np.exp(finite_mean(np.log(ratio), axis=0))

    @staticmethod
    def averaged_ratio_from_clean(
        cleaned: np.ndarray, pair: tuple[int, int]
    ) -> np.ndarray:
        """:meth:`averaged_amplitude_ratio` from a precomputed clean cube.

        Lets the stage-graph engine form every antenna pair's ratio from
        one cached denoiser pass: ``cleaned`` is the ``(M, K, A)`` output
        of :meth:`compute_clean_amplitudes`.
        """
        i, j = validate_antenna_pair(pair, cleaned.shape[2])
        ratio = cleaned[:, :, i] / cleaned[:, :, j]
        return np.exp(finite_mean(np.log(ratio), axis=0))

    # ------------------------------------------------------------------
    # Diagnostics for the Fig. 8 microbenchmark
    # ------------------------------------------------------------------

    def amplitude_variance_per_subcarrier(
        self, trace: CsiTrace, antenna: int
    ) -> np.ndarray:
        """Normalised variance of raw ``|H|`` across packets, shape ``(K,)``.

        Normalised by the squared mean so antennas with different gains
        are comparable (Fig. 8 plots all curves on one axis).
        """
        amps = trace.amplitudes()
        if amps.size == 0:
            raise ValueError("empty trace")
        validate_antenna(antenna, amps.shape[2])
        series = amps[:, :, antenna]
        means = np.clip(series.mean(axis=0), _AMPLITUDE_EPS, None)
        return series.var(axis=0) / (means ** 2)

    def ratio_variance_per_subcarrier(
        self, trace: CsiTrace, pair: tuple[int, int]
    ) -> np.ndarray:
        """Normalised variance of the raw amplitude ratio, shape ``(K,)``.

        NaN-aware: degraded packets are excluded per subcarrier, and a
        subcarrier with no finite ratio scores NaN (filtered out by the
        antenna-pair selector instead of poisoning its stability score).
        """
        i, j = self._check_pair(trace, pair)
        amps = np.clip(trace.amplitudes(), _AMPLITUDE_EPS, None)
        ratio = amps[:, :, i] / amps[:, :, j]
        means = np.clip(finite_mean(ratio, axis=0), _AMPLITUDE_EPS, None)
        variance = finite_mean((ratio - means[None, :]) ** 2, axis=0)
        return variance / (means ** 2)

    # ------------------------------------------------------------------

    @staticmethod
    def _check_pair(trace: CsiTrace, pair: tuple[int, int]) -> tuple[int, int]:
        if len(trace) == 0:
            raise ValueError("empty trace")
        return validate_antenna_pair(pair, trace.num_antennas)
