"""Ray-based multipath channel model.

Commodity Wi-Fi uses omni-directional antennas, so indoor CSI is a sum of a
line-of-sight (LoS) ray and many reflected rays (walls, furniture, shelves).
This is the root of both WiMi challenges: reflections corrupt per-subcarrier
phase/amplitude differently at different frequencies (frequency-selective
fading), and they fluctuate over time.

The model here is geometric: each non-LoS :class:`Path` is a single-bounce
reflection off a point reflector.  For antenna ``a`` and subcarrier
frequency ``f_k`` the reflected ray contributes

    g * exp(j psi0) * exp(-j 2 pi f_k tau_a)

where ``tau_a`` is the Tx -> reflector -> antenna propagation delay, ``g``
the reflection gain and ``psi0`` a static phase from the bounce.  Because
``tau_a`` differs by centimetres across antennas and by the full excess
delay across subcarriers, both the per-subcarrier and the per-antenna
structure of real multipath emerge naturally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import LinkGeometry, Point
from repro.channel.propagation import SPEED_OF_LIGHT
from repro.dsp.precision import unit_phasor


@dataclass(frozen=True)
class Path:
    """A single-bounce reflected ray.

    Attributes:
        reflector: Reflection point coordinates (metres).
        gain: Reflection amplitude relative to the (unit) LoS ray.
        static_phase: Phase shift of the bounce itself (radians).
        jitter_scale: How strongly this path participates in temporal
            fading (1.0 = nominal; see the CSI simulator).
        extra_delay_s: Additional excess delay (seconds) beyond the
            single-bounce geometry, modelling multi-bounce reverberation.
            Indoor RMS delay spreads of 30-80 ns are what makes fading
            *frequency selective* across a 20 MHz channel -- the basis of
            the paper's good-subcarrier selection.
    """

    reflector: Point
    gain: float
    static_phase: float = 0.0
    jitter_scale: float = 1.0
    extra_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.gain < 0:
            raise ValueError(f"gain must be >= 0, got {self.gain}")
        if self.jitter_scale < 0:
            raise ValueError(
                f"jitter_scale must be >= 0, got {self.jitter_scale}"
            )
        if self.extra_delay_s < 0:
            raise ValueError(
                f"extra_delay_s must be >= 0, got {self.extra_delay_s}"
            )

    def delay_to(self, tx: Point, rx: Point) -> float:
        """Propagation delay (s) of Tx -> reflector -> rx."""
        d1 = math.hypot(self.reflector[0] - tx[0], self.reflector[1] - tx[1])
        d2 = math.hypot(self.reflector[0] - rx[0], self.reflector[1] - rx[1])
        return (d1 + d2) / SPEED_OF_LIGHT + self.extra_delay_s


class MultipathChannel:
    """LoS + reflections channel for a given link geometry.

    The channel returns, for each antenna and subcarrier, the *static*
    complex response.  Temporal fluctuation (people moving, fans, thermal
    drift) is layered on top by the CSI simulator via per-packet phase
    jitter so that the "good subcarrier" statistics of paper Eq. 7 are
    meaningful.
    """

    def __init__(self, geometry: LinkGeometry, paths: list[Path]):
        self.geometry = geometry
        self.paths = list(paths)
        self._rx_positions = geometry.rx_positions()
        self._tx = geometry.tx_position
        self._los_delays = np.array(
            [d / SPEED_OF_LIGHT for d in geometry.los_lengths()]
        )

    @property
    def num_antennas(self) -> int:
        """Number of receive antennas."""
        return len(self._rx_positions)

    def los_response(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """LoS-only response, shape ``(num_subcarriers, num_antennas)``.

        Unit amplitude; the phase encodes the Tx -> antenna delay, which is
        what gives closely-spaced antennas their static inter-antenna phase
        offset (it cancels in the baseline/target difference).
        """
        freqs = np.asarray(frequencies_hz, dtype=float)
        return np.exp(
            -2j * math.pi * freqs[:, None] * self._los_delays[None, :]
        )

    def reflection_delays(self) -> np.ndarray:
        """Delays of each path to each antenna, shape ``(P, A)``."""
        if not self.paths:
            return np.zeros((0, len(self._rx_positions)))
        return np.array(
            [
                [path.delay_to(self._tx, rx) for rx in self._rx_positions]
                for path in self.paths
            ]
        )

    def reflection_response(
        self,
        frequencies_hz: np.ndarray,
        phase_offsets: np.ndarray | None = None,
        gain_factors: np.ndarray | None = None,
    ) -> np.ndarray:
        """Sum of reflected rays, shape ``(num_subcarriers, num_antennas)``.

        Args:
            frequencies_hz: Subcarrier frequencies.
            phase_offsets: Optional per-path extra phase (radians), shape
                ``(P,)`` -- the simulator's per-packet jitter hook.
            gain_factors: Optional per-path gain multipliers, shape ``(P,)``.
        """
        freqs = np.asarray(frequencies_hz, dtype=float)
        num_ant = len(self._rx_positions)
        response = np.zeros((freqs.size, num_ant), dtype=complex)
        if not self.paths:
            return response
        delays = self.reflection_delays()
        for p, path in enumerate(self.paths):
            extra = 0.0 if phase_offsets is None else float(phase_offsets[p])
            gain = path.gain if gain_factors is None else (
                path.gain * float(gain_factors[p])
            )
            phase = (
                -2.0 * math.pi * freqs[:, None] * delays[p][None, :]
                + path.static_phase
                + extra
            )
            response += gain * np.exp(1j * phase)
        return response

    def reflection_response_batch(
        self,
        frequencies_hz: np.ndarray,
        phase_offsets: np.ndarray | None = None,
        gain_factors: np.ndarray | None = None,
        dtype: np.dtype | type | None = None,
    ) -> np.ndarray:
        """Per-packet sum of reflected rays, shape ``(M, K, A)``.

        Batched form of :meth:`reflection_response`: ``phase_offsets`` and
        ``gain_factors`` carry one row per packet, shape ``(M, P)``.  The
        per-path accumulation order matches the scalar method, so the two
        agree to floating-point rounding.

        ``dtype`` is the *real* working precision of the broadcast
        arithmetic (``None`` keeps the historical float64 path
        bit-for-bit; float32 evaluates the per-path complex exponentials
        in complex64 -- half the traffic on the hottest array in the
        capture pipeline).  The phase geometry itself is always built in
        float64 and rounded once per path, not compounded.
        """
        freqs = np.asarray(frequencies_hz, dtype=float)
        work = np.dtype(float if dtype is None else dtype)
        cdtype = np.complex64 if work == np.float32 else np.complex128
        num_ant = len(self._rx_positions)
        if phase_offsets is None and gain_factors is None:
            raise ValueError(
                "batched response needs per-packet phase_offsets or "
                "gain_factors to determine the packet count"
            )
        num_packets = (
            phase_offsets if phase_offsets is not None else gain_factors
        ).shape[0]
        response = np.zeros((num_packets, freqs.size, num_ant), dtype=cdtype)
        if not self.paths:
            return response
        delays = self.reflection_delays()
        for p, path in enumerate(self.paths):
            base_phase = (
                -2.0 * math.pi * freqs[:, None] * delays[p][None, :]
                + path.static_phase
            )
            if phase_offsets is None:
                phase = np.broadcast_to(
                    base_phase.astype(work, copy=False)[None, :, :],
                    (num_packets,) + base_phase.shape,
                )
            else:
                phase = (
                    base_phase[None, :, :] + phase_offsets[:, p, None, None]
                ).astype(work, copy=False)
            if gain_factors is None:
                gains = np.full(num_packets, path.gain, dtype=work)
            else:
                gains = (path.gain * gain_factors[:, p]).astype(
                    work, copy=False
                )
            response += gains[:, None, None] * unit_phasor(phase)
        return response

    def total_response_batch(
        self,
        frequencies_hz: np.ndarray,
        los_multiplier: np.ndarray | complex = 1.0,
        phase_offsets: np.ndarray | None = None,
        gain_factors: np.ndarray | None = None,
        dtype: np.dtype | type | None = None,
    ) -> np.ndarray:
        """Batched :meth:`total_response`, shape ``(M, K, A)``.

        The LoS term is static across packets, so it is built once and
        broadcast against the per-packet reflection sum.  ``dtype`` is
        the real working precision (see
        :meth:`reflection_response_batch`); the LoS grid is computed in
        float64 and rounded once before the broadcast add.
        """
        los = self._los_with_multiplier(frequencies_hz, los_multiplier)
        if dtype is not None and np.dtype(dtype) == np.float32:
            los = los.astype(np.complex64)
        reflections = self.reflection_response_batch(
            frequencies_hz, phase_offsets, gain_factors, dtype=dtype
        )
        return los[None, :, :] + reflections

    def with_phase_drift(
        self, rng: np.random.Generator, sigma_rad: float
    ) -> "MultipathChannel":
        """A copy of this channel with each path's static phase perturbed.

        Models the slow change of a room between capture sessions (a door
        moved, somebody shifted a chair): the reflectors stay put but each
        bounce's phase drifts by ``N(0, sigma * jitter_scale)``.  Used by
        the data collector so that repetitions in one deployment share the
        same multipath structure, as in the paper's protocol, while still
        differing slightly from one another.
        """
        if sigma_rad < 0:
            raise ValueError(f"sigma_rad must be >= 0, got {sigma_rad}")
        drifted = [
            Path(
                reflector=p.reflector,
                gain=p.gain,
                static_phase=p.static_phase
                + rng.normal(0.0, sigma_rad * p.jitter_scale),
                jitter_scale=p.jitter_scale,
                extra_delay_s=p.extra_delay_s,
            )
            for p in self.paths
        ]
        return MultipathChannel(self.geometry, drifted)

    def total_response(
        self,
        frequencies_hz: np.ndarray,
        los_multiplier: np.ndarray | complex = 1.0,
        phase_offsets: np.ndarray | None = None,
        gain_factors: np.ndarray | None = None,
    ) -> np.ndarray:
        """Full channel ``H[k, a] = LoS * multiplier + reflections``.

        ``los_multiplier`` is how the target enters the channel: when a
        beaker stands on the LoS, the simulator passes the per-antenna
        penetration response (Eq. 2-4 physics) here.  Reflected rays do not
        cross the beaker in this layout, so they are unchanged -- which is
        why the baseline/target difference isolates the target.
        """
        los = self._los_with_multiplier(frequencies_hz, los_multiplier)
        return los + self.reflection_response(
            frequencies_hz, phase_offsets, gain_factors
        )

    def _los_with_multiplier(
        self,
        frequencies_hz: np.ndarray,
        los_multiplier: np.ndarray | complex = 1.0,
    ) -> np.ndarray:
        """LoS response with the target multiplier applied, shape ``(K, A)``."""
        los = self.los_response(frequencies_hz)
        multiplier = np.asarray(los_multiplier, dtype=complex)
        if multiplier.ndim == 0:
            los = los * multiplier
        elif multiplier.ndim == 1:
            # One multiplier per antenna.
            if multiplier.size != los.shape[1]:
                raise ValueError(
                    f"per-antenna multiplier has size {multiplier.size}, "
                    f"channel has {los.shape[1]} antennas"
                )
            los = los * multiplier[None, :]
        else:
            # Full (subcarrier, antenna) grid.
            if multiplier.shape != los.shape:
                raise ValueError(
                    f"multiplier shape {multiplier.shape} != channel shape "
                    f"{los.shape}"
                )
            los = los * multiplier
        return los


def random_paths(
    geometry: LinkGeometry,
    num_paths: int,
    gain_range: tuple[float, float],
    rng: np.random.Generator,
    room_half_width: float = 3.0,
    jitter_scale: float = 1.0,
    delay_spread_s: float = 40e-9,
) -> list[Path]:
    """Scatter ``num_paths`` reflectors around the link.

    Reflectors land in a box around the link, excluding a small guard zone
    around the LoS so that they model wall/furniture bounces rather than
    the target itself.  Gains are drawn uniformly from ``gain_range`` and
    decay mildly with excess delay.  Each path also receives an
    exponentially-distributed reverberation delay (mean ``delay_spread_s``)
    so the channel is genuinely frequency selective across the 20 MHz band
    -- several fades per band, as indoor measurements show.
    """
    if num_paths < 0:
        raise ValueError(f"num_paths must be >= 0, got {num_paths}")
    if delay_spread_s < 0:
        raise ValueError(f"delay_spread_s must be >= 0, got {delay_spread_s}")
    lo, hi = gain_range
    if not 0 <= lo <= hi:
        raise ValueError(f"invalid gain range {gain_range}")
    paths: list[Path] = []
    distance = geometry.distance
    while len(paths) < num_paths:
        x = rng.uniform(-0.5, distance + 0.5)
        y = rng.uniform(-room_half_width, room_half_width)
        if abs(y) < 0.3:
            continue  # too close to the LoS corridor
        reflector = (x, y)
        extra_delay = rng.exponential(delay_spread_s)
        # Later reverberation arrives weaker (absorption per bounce).
        decay = math.exp(-extra_delay / (3.0 * delay_spread_s))
        gain = rng.uniform(lo, hi) * decay
        paths.append(
            Path(
                reflector=reflector,
                gain=gain,
                static_phase=rng.uniform(0.0, 2.0 * math.pi),
                jitter_scale=jitter_scale * rng.uniform(0.6, 1.4),
                extra_delay_s=extra_delay,
            )
        )
    return paths
