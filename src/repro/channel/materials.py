"""Dielectric material catalog for WiMi.

The paper identifies ten household liquids by how much they change the phase
and amplitude of a 5 GHz Wi-Fi signal that penetrates them.  Both effects are
fully determined by the material's *complex relative permittivity*

    eps_r = eps' - j eps''

at the carrier frequency: the real part ``eps'`` sets the in-medium
wavelength (hence the phase constant ``beta``) and the imaginary part
``eps''`` sets the loss (hence the attenuation constant ``alpha``).

The catalog below replaces the physical liquids of the paper's testbed.  The
values are representative of published dielectric measurements of these
liquids around 5 GHz (water-based liquids follow the Debye relaxation of
water, shifted by solutes; ionic solutes add a conductivity term to
``eps''``).  What matters for the reproduction is the *relative geometry* of
the materials in (eps', eps'') space: pure water / sweet water / Pepsi / Coke
are close together (hard to separate), oil is far from everything (easy), and
the saltwater concentration series moves monotonically with salinity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

#: Permittivity of free space (F/m).
EPSILON_0 = 8.8541878128e-12

#: Default carrier frequency: 5 GHz band, channel around 5.32 GHz as used by
#: the Intel 5300 setups in the CSI Tool literature.
DEFAULT_FREQUENCY_HZ = 5.32e9


@dataclass(frozen=True)
class Material:
    """A homogeneous material with a complex permittivity at 5 GHz.

    Attributes:
        name: Human-readable label, e.g. ``"pepsi"``.
        eps_real: Real part of the relative permittivity (``eps'``).
        eps_imag: Imaginary part of the relative permittivity (``eps''``),
            including any conductivity contribution, as a positive number.
        conductivity: Ionic conductivity in S/m.  Stored separately so the
            catalog can re-derive ``eps''`` at other frequencies.
        description: Short provenance note.
    """

    name: str
    eps_real: float
    eps_imag: float
    conductivity: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.eps_real < 1.0:
            raise ValueError(
                f"eps_real must be >= 1 (vacuum), got {self.eps_real} "
                f"for {self.name!r}"
            )
        if self.eps_imag < 0.0:
            raise ValueError(
                f"eps_imag must be >= 0, got {self.eps_imag} for {self.name!r}"
            )
        if self.conductivity < 0.0:
            raise ValueError(
                f"conductivity must be >= 0, got {self.conductivity} "
                f"for {self.name!r}"
            )

    @property
    def complex_permittivity(self) -> complex:
        """Relative permittivity ``eps' - j eps''`` (engineering convention)."""
        return complex(self.eps_real, -self.eps_imag)

    def effective_eps_imag(self, frequency_hz: float) -> float:
        """Loss factor at ``frequency_hz`` including the conductivity term.

        ``eps_imag`` is calibrated at :data:`DEFAULT_FREQUENCY_HZ`; the
        conductivity contribution ``sigma / (omega eps_0)`` scales inversely
        with frequency, so we re-scale only that part.
        """
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        omega_ref = 2.0 * math.pi * DEFAULT_FREQUENCY_HZ
        omega = 2.0 * math.pi * frequency_hz
        sigma_part_ref = self.conductivity / (omega_ref * EPSILON_0)
        dipolar_part = max(self.eps_imag - sigma_part_ref, 0.0)
        return dipolar_part + self.conductivity / (omega * EPSILON_0)

    @property
    def loss_tangent(self) -> float:
        """``tan(delta) = eps'' / eps'`` at the calibration frequency."""
        return self.eps_imag / self.eps_real

    @property
    def refractive_index(self) -> float:
        """Approximate refractive index ``sqrt(eps')`` (low-loss limit)."""
        return math.sqrt(self.eps_real)

    def with_name(self, name: str) -> "Material":
        """Return a copy of this material renamed to ``name``."""
        return replace(self, name=name)


#: Free space / air.  ``eps'' = 0`` makes ``alpha_free = 0`` exactly, which is
#: the limit the paper takes in Eq. 21 (``alpha_free`` is a constant ~0).
AIR = Material(
    name="air",
    eps_real=1.000536,
    eps_imag=0.0,
    description="dry air at room temperature",
)


def _conductivity_loss(sigma: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> float:
    """Loss-factor contribution of ionic conductivity ``sigma`` (S/m)."""
    return sigma / (2.0 * math.pi * frequency_hz * EPSILON_0)


def saltwater(grams_per_100ml: float) -> Material:
    """Saline water at the given concentration (g NaCl per 100 ml).

    Models the Fig. 16 experiment (1.2, 2.7 and 5.9 g/100 ml).  Dissolved
    NaCl *lowers* ``eps'`` slightly (dielectric decrement ~ -1.0 per g/100ml
    around this range) and *raises* the loss strongly through ionic
    conductivity (~ 1.5 S/m per g/100ml at low concentrations, saturating).
    """
    if grams_per_100ml < 0:
        raise ValueError(f"concentration must be >= 0, got {grams_per_100ml}")
    base = pure_water()
    # Dielectric decrement and conductivity rise, both mildly saturating.
    eps_real = base.eps_real - 1.05 * grams_per_100ml
    eps_real = max(eps_real, 40.0)
    sigma = 1.55 * grams_per_100ml / (1.0 + 0.045 * grams_per_100ml)
    eps_imag = base.eps_imag + _conductivity_loss(sigma)
    return Material(
        name=f"saltwater_{grams_per_100ml:g}g",
        eps_real=eps_real,
        eps_imag=eps_imag,
        conductivity=sigma,
        description=f"NaCl solution, {grams_per_100ml:g} g / 100 ml",
    )


def sugar_water(grams_per_100ml: float) -> Material:
    """Sucrose solution at the given concentration (g per 100 ml).

    Sugar lowers both ``eps'`` (displaces water dipoles) and, mildly,
    the dipolar loss; it adds no ionic conductivity.
    """
    if grams_per_100ml < 0:
        raise ValueError(f"concentration must be >= 0, got {grams_per_100ml}")
    base = pure_water()
    eps_real = max(base.eps_real - 0.55 * grams_per_100ml, 20.0)
    eps_imag = max(base.eps_imag - 0.10 * grams_per_100ml, 2.0)
    return Material(
        name=f"sugar_water_{grams_per_100ml:g}g",
        eps_real=eps_real,
        eps_imag=eps_imag,
        description=f"sucrose solution, {grams_per_100ml:g} g / 100 ml",
    )


def pure_water() -> Material:
    """Distilled water at ~25 C, Debye model evaluated near 5.32 GHz."""
    return Material(
        name="pure_water",
        eps_real=71.5,
        eps_imag=20.8,
        description="distilled water, Debye relaxation at 5.32 GHz",
    )


def mixture(
    first: Material,
    second: Material,
    fraction_first: float,
    name: str | None = None,
) -> Material:
    """Effective-medium mixture of two liquids (Lichtenecker rule).

    The paper's Discussion notes WiMi "cannot identify the target's
    material if it is comprised of two or more materials" -- it always
    reports a single material.  This helper builds the effective medium a
    mixed or emulsified target presents to the RF link (logarithmic
    Lichtenecker mixing of the complex permittivity), so that limitation
    can be demonstrated: the mixture's feature lands between the
    components' and WiMi maps it onto whichever pure catalog entry is
    nearest.

    Args:
        first: One component.
        second: The other component.
        fraction_first: Volume fraction of ``first`` in [0, 1].
        name: Label; defaults to ``mix_<first>_<second>_<fraction>``.
    """
    if not 0.0 <= fraction_first <= 1.0:
        raise ValueError(
            f"fraction_first must be in [0, 1], got {fraction_first}"
        )
    f = fraction_first
    # Lichtenecker: ln(eps_mix) = f ln(eps_1) + (1-f) ln(eps_2), applied
    # to the complex permittivity.
    import cmath

    eps_mix = cmath.exp(
        f * cmath.log(first.complex_permittivity)
        + (1.0 - f) * cmath.log(second.complex_permittivity)
    )
    label = name or f"mix_{first.name}_{second.name}_{f:g}"
    return Material(
        name=label,
        eps_real=max(eps_mix.real, 1.0),
        eps_imag=max(-eps_mix.imag, 0.0),
        conductivity=f * first.conductivity + (1.0 - f) * second.conductivity,
        description=(
            f"{f:.0%} {first.name} / {1 - f:.0%} {second.name} "
            "(Lichtenecker effective medium)"
        ),
    )


def _build_paper_liquids() -> dict[str, Material]:
    """The ten liquids of Fig. 15, in the paper's A..J order."""
    water = pure_water()
    liquids = {
        # A: vinegar -- ~5% acetic acid in water; slight decrement, some
        # ionic loss from dissociation.
        "vinegar": Material(
            "vinegar", 67.0, 25.64, conductivity=0.35,
            description="rice vinegar, ~5% acetic acid",
        ),
        # B: honey -- supersaturated sugar, little free water; low eps.
        "honey": Material(
            "honey", 10.5, 3.4,
            description="honey, ~17% moisture",
        ),
        # C: soy sauce -- very salty (~16 g NaCl / 100 ml): huge ionic loss.
        "soy": Material(
            "soy", 52.0, 38.0, conductivity=4.6,
            description="soy sauce, high salinity",
        ),
        # D: milk -- water + fat/protein/lactose; moderate decrement.
        "milk": Material(
            "milk", 62.5, 22.10, conductivity=0.28,
            description="whole milk",
        ),
        # E: pepsi -- ~11 g sugar / 100 ml cola, carbonated, phosphoric acid.
        "pepsi": Material(
            "pepsi", 65.6, 21.27, conductivity=0.13,
            description="Pepsi cola",
        ),
        # F: liquor -- ~50%vol ethanol-water (baijiu); ethanol relaxation
        # pulls eps' down hard and keeps loss high at 5 GHz.
        "liquor": Material(
            "liquor", 33.0, 26.0,
            description="52%vol distilled liquor (ethanol-water)",
        ),
        # G: pure water -- the Debye reference.
        "pure_water": water,
        # H: oil -- non-polar; tiny permittivity and loss.
        "oil": Material(
            "oil", 2.55, 0.17,
            description="vegetable (peanut) oil",
        ),
        # I: coke -- same category as pepsi, slightly different sugar/acid
        # balance: deliberately close to pepsi (the paper's hard pair).
        "coke": Material(
            "coke", 64.9, 21.88, conductivity=0.15,
            description="Coca-Cola",
        ),
        # J: sweet water -- ~8 g sugar / 100 ml.  Sucrose lowers eps' but
        # barely moves the loss at 5 GHz (relaxation broadening offsets the
        # water displacement), keeping it adjacent to pure water.
        "sweet_water": Material(
            "sweet_water", 67.1, 20.77,
            description="sucrose solution, ~8 g / 100 ml",
        ),
    }
    return liquids


#: Paper's class labels A..J (Fig. 15) in order.
PAPER_LIQUID_ORDER: tuple[str, ...] = (
    "vinegar",
    "honey",
    "soy",
    "milk",
    "pepsi",
    "liquor",
    "pure_water",
    "oil",
    "coke",
    "sweet_water",
)

#: Container wall materials (Fig. 20).  Thin solid shells.
CONTAINER_MATERIALS: dict[str, Material] = {
    "plastic": Material(
        "plastic", 2.6, 0.02,
        description="polypropylene beaker wall",
    ),
    "glass": Material(
        "glass", 5.5, 0.05,
        description="borosilicate beaker wall",
    ),
}


@dataclass
class MaterialCatalog:
    """A named collection of :class:`Material` definitions.

    The catalog is the reproduction's stand-in for "a shelf of liquids": the
    experiment harness asks it for materials by name, and the feature module
    uses its physical envelope (range of plausible ``Omega-bar`` values) to
    resolve the integer phase-wrap ``gamma`` of Eq. 21.
    """

    materials: dict[str, Material] = field(default_factory=dict)

    def add(self, material: Material) -> None:
        """Register ``material`` under its name; re-adding replaces it."""
        self.materials[material.name] = material

    def get(self, name: str) -> Material:
        """Look up a material; raises ``KeyError`` with suggestions."""
        if name in self.materials:
            return self.materials[name]
        known = ", ".join(sorted(self.materials))
        raise KeyError(f"unknown material {name!r}; catalog has: {known}")

    def __contains__(self, name: str) -> bool:
        return name in self.materials

    def __len__(self) -> int:
        return len(self.materials)

    def __iter__(self):
        return iter(self.materials.values())

    @property
    def names(self) -> list[str]:
        """All registered material names, insertion-ordered."""
        return list(self.materials)

    def subset(self, names: list[str] | tuple[str, ...]) -> "MaterialCatalog":
        """A new catalog holding only ``names`` (order preserved)."""
        return MaterialCatalog({n: self.get(n) for n in names})


def default_catalog() -> MaterialCatalog:
    """Catalog with the paper's ten liquids plus the saltwater series.

    Names: the ten Fig. 15 liquids (see :data:`PAPER_LIQUID_ORDER`), the
    Fig. 16 concentration series (``saltwater_1.2g`` etc.), and ``air``.
    """
    catalog = MaterialCatalog()
    for material in _build_paper_liquids().values():
        catalog.add(material)
    for concentration in (1.2, 2.7, 5.9):
        catalog.add(saltwater(concentration))
    catalog.add(AIR)
    return catalog
