"""RF propagation substrate for the WiMi reproduction.

This package models everything that happens to a Wi-Fi signal between the
transmitter and the receiver in the paper's testbed:

* :mod:`repro.channel.materials` -- a dielectric catalog for the paper's ten
  liquids (plus the saltwater concentration series and container walls),
  expressed as complex relative permittivity at the 5 GHz carrier.
* :mod:`repro.channel.propagation` -- the plane-wave physics of Section II-B:
  permittivity to attenuation constant ``alpha`` and phase constant ``beta``,
  and the phase/amplitude change a penetrating ray suffers (Eq. 2-4).
* :mod:`repro.channel.geometry` -- the testbed geometry: transmitter,
  receiver antenna array, cylindrical beaker on the LoS, and the chord
  lengths ``D_i`` each antenna's ray travels inside the liquid.
* :mod:`repro.channel.multipath` -- a ray-based multipath channel producing
  per-subcarrier frequency-selective responses.
* :mod:`repro.channel.environment` -- the hall / lab / library presets
  (low / medium / high multipath) used throughout the evaluation.
"""

from repro.channel.environment import Environment, make_environment
from repro.channel.geometry import (
    AntennaArray,
    CylinderTarget,
    LinkGeometry,
    chord_length,
)
from repro.channel.materials import (
    AIR,
    Material,
    MaterialCatalog,
    default_catalog,
    saltwater,
    sugar_water,
)
from repro.channel.multipath import MultipathChannel, Path
from repro.channel.propagation import (
    amplitude_ratio_through,
    attenuation_constant,
    penetration_response,
    phase_change_through,
    phase_constant,
    propagation_constants,
)

__all__ = [
    "AIR",
    "AntennaArray",
    "CylinderTarget",
    "Environment",
    "LinkGeometry",
    "Material",
    "MaterialCatalog",
    "MultipathChannel",
    "Path",
    "amplitude_ratio_through",
    "attenuation_constant",
    "chord_length",
    "default_catalog",
    "make_environment",
    "penetration_response",
    "phase_change_through",
    "phase_constant",
    "propagation_constants",
    "saltwater",
    "sugar_water",
]
