"""Indoor environment presets: hall, lab, library.

The paper evaluates in three environments chosen for their multipath
richness (Section IV): an empty hall (low), a laboratory/office (medium)
and a library full of shelves (high).  An :class:`Environment` bundles the
knobs the CSI simulator needs:

* how many reflected rays and how strong they are,
* how much those rays fluctuate over time (temporal jitter -- what makes
  per-subcarrier variance, paper Eq. 7, informative),
* the receiver noise floor.

Reflection strength additionally grows with the Tx-Rx distance -- the
paper's Fig. 17 observation that "the amount of multipath and diffraction
increase as the distance increases" -- because a longer LoS is weaker
relative to the fixed reflectors around it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.channel.geometry import LinkGeometry
from repro.channel.multipath import MultipathChannel, Path, random_paths

#: Reference Tx-Rx distance at which preset gains are calibrated (metres).
REFERENCE_DISTANCE_M = 2.0


@dataclass(frozen=True)
class Environment:
    """A multipath environment preset.

    Attributes:
        name: Preset label (``"hall"``, ``"lab"``, ``"library"``).
        num_paths: Number of single-bounce reflected rays.
        gain_range: Relative reflection amplitude range at the reference
            distance (LoS = 1).
        temporal_jitter_rad: Std-dev of the per-packet phase wander of each
            reflected ray (radians).  Models people/air movement.
        gain_jitter: Std-dev of per-packet relative gain fluctuation.
        session_drift_rad: Std-dev of the per-*session* phase drift of each
            reflected ray -- how much the room changes between two
            repetitions of a measurement in the same deployment.
        noise_floor: Std-dev of complex AWGN added per subcarrier/antenna,
            relative to the unit LoS.
        room_half_width: Half-width of the reflector box (metres).
        delay_spread_s: Mean reverberation excess delay of the reflected
            rays (seconds); sets how frequency selective the fading is
            across the 20 MHz band.
    """

    name: str
    num_paths: int
    gain_range: tuple[float, float]
    temporal_jitter_rad: float
    gain_jitter: float
    session_drift_rad: float
    noise_floor: float
    room_half_width: float = 3.0
    delay_spread_s: float = 60e-9

    def __post_init__(self) -> None:
        if self.num_paths < 0:
            raise ValueError(f"num_paths must be >= 0, got {self.num_paths}")
        if (
            self.temporal_jitter_rad < 0
            or self.gain_jitter < 0
            or self.session_drift_rad < 0
        ):
            raise ValueError("jitter parameters must be >= 0")
        if self.noise_floor < 0:
            raise ValueError(f"noise_floor must be >= 0, got {self.noise_floor}")

    def scaled_gain_range(self, distance_m: float) -> tuple[float, float]:
        """Reflection gain range at a given Tx-Rx distance.

        Reflections are anchored to the room, so when the LoS gets longer
        (and therefore weaker) the *relative* reflection strength grows
        roughly linearly with distance.
        """
        if distance_m <= 0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        scale = distance_m / REFERENCE_DISTANCE_M
        lo, hi = self.gain_range
        return (lo * scale, hi * scale)

    def build_channel(
        self, geometry: LinkGeometry, rng: np.random.Generator
    ) -> MultipathChannel:
        """Instantiate a concrete multipath channel in this environment."""
        paths = random_paths(
            geometry,
            num_paths=self.num_paths,
            gain_range=self.scaled_gain_range(geometry.distance),
            rng=rng,
            room_half_width=self.room_half_width,
            delay_spread_s=self.delay_spread_s,
        )
        return MultipathChannel(geometry, paths)

    def with_overrides(self, **changes) -> "Environment":
        """A copy of this preset with some fields replaced."""
        return replace(self, **changes)


#: The three presets of the paper, calibrated at the 2 m reference link.
_PRESETS: dict[str, Environment] = {
    "hall": Environment(
        name="hall",
        num_paths=3,
        gain_range=(0.008, 0.025),
        temporal_jitter_rad=0.9,
        gain_jitter=0.05,
        session_drift_rad=0.10,
        noise_floor=0.010,
        room_half_width=5.0,
        delay_spread_s=50e-9,
    ),
    "lab": Environment(
        name="lab",
        num_paths=8,
        gain_range=(0.015, 0.045),
        temporal_jitter_rad=1.1,
        gain_jitter=0.08,
        session_drift_rad=0.15,
        noise_floor=0.014,
        room_half_width=3.0,
        delay_spread_s=70e-9,
    ),
    "library": Environment(
        name="library",
        num_paths=12,
        gain_range=(0.025, 0.075),
        temporal_jitter_rad=1.8,
        gain_jitter=0.10,
        session_drift_rad=0.20,
        noise_floor=0.018,
        room_half_width=2.5,
        delay_spread_s=90e-9,
    ),
}


def make_environment(name: str) -> Environment:
    """Look up a preset by name (``hall`` / ``lab`` / ``library``)."""
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise KeyError(f"unknown environment {name!r}; known: {known}") from None


def environment_names() -> list[str]:
    """All preset names in low -> high multipath order."""
    return ["hall", "lab", "library"]
