"""Plane-wave propagation physics (paper Section II-B).

A time-harmonic plane wave in a lossy, non-magnetic medium propagates as
``exp(-gamma z)`` with complex propagation constant

    gamma = alpha + j beta = j omega sqrt(mu_0 eps_0 (eps' - j eps''))

``alpha`` (Np/m) is the *attenuation constant* and ``beta`` (rad/m) the
*phase constant*.  The closed forms used here are the standard ones (e.g.
Balanis, "Advanced Engineering Electromagnetics"):

    beta  = omega sqrt(mu eps'/2) * sqrt( sqrt(1 + tan^2 delta) + 1 )
    alpha = omega sqrt(mu eps'/2) * sqrt( sqrt(1 + tan^2 delta) - 1 )

with ``tan delta = eps''/eps'``.  From these the paper's Eq. 3 and Eq. 4
follow directly:

    delta_phi = D (beta_tar - beta_free)               (phase change)
    A_tar/A_free = exp(-D (alpha_tar - alpha_free))    (amplitude ratio)

for a ray travelling distance ``D`` inside the target.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.channel.materials import DEFAULT_FREQUENCY_HZ, EPSILON_0, Material

#: Permeability of free space (H/m).  All materials here are non-magnetic.
MU_0 = 4.0e-7 * math.pi

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 1.0 / math.sqrt(MU_0 * EPSILON_0)


def propagation_constants(
    material: Material, frequency_hz: float = DEFAULT_FREQUENCY_HZ
) -> tuple[float, float]:
    """Return ``(alpha, beta)`` for ``material`` at ``frequency_hz``.

    ``alpha`` is in nepers/metre, ``beta`` in radians/metre.  Uses the
    frequency-corrected loss factor so that conductive materials (saltwater,
    soy sauce) keep the right dispersion.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    omega = 2.0 * math.pi * frequency_hz
    eps_real = material.eps_real
    eps_imag = material.effective_eps_imag(frequency_hz)
    if eps_real <= 0:
        raise ValueError(f"eps_real must be positive, got {eps_real}")
    tan_delta = eps_imag / eps_real
    root = math.sqrt(1.0 + tan_delta * tan_delta)
    scale = omega * math.sqrt(MU_0 * EPSILON_0 * eps_real / 2.0)
    beta = scale * math.sqrt(root + 1.0)
    alpha = scale * math.sqrt(root - 1.0)
    return alpha, beta


def propagation_constants_array(
    material: Material, frequencies_hz: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vector form of :func:`propagation_constants` over a frequency grid.

    Returns ``(alpha, beta)`` arrays of the same shape as
    ``frequencies_hz``.  Elementwise identical (to the ulp) to calling the
    scalar form per frequency; this is the hot-path variant the CSI
    simulator uses to build the per-subcarrier penetration grid in one go.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    if np.any(freqs <= 0):
        raise ValueError("frequencies must be positive")
    eps_real = material.eps_real
    if eps_real <= 0:
        raise ValueError(f"eps_real must be positive, got {eps_real}")
    omega = 2.0 * math.pi * freqs
    # Inline Material.effective_eps_imag over the grid: the conductivity
    # term scales inversely with frequency, the dipolar part is fixed.
    omega_ref = 2.0 * math.pi * DEFAULT_FREQUENCY_HZ
    sigma_part_ref = material.conductivity / (omega_ref * EPSILON_0)
    dipolar_part = max(material.eps_imag - sigma_part_ref, 0.0)
    eps_imag = dipolar_part + material.conductivity / (omega * EPSILON_0)
    tan_delta = eps_imag / eps_real
    root = np.sqrt(1.0 + tan_delta * tan_delta)
    scale = omega * math.sqrt(MU_0 * EPSILON_0 * eps_real / 2.0)
    beta = scale * np.sqrt(root + 1.0)
    alpha = scale * np.sqrt(root - 1.0)
    return alpha, beta


def penetration_response_array(
    material: Material,
    path_length_m: float,
    frequencies_hz: np.ndarray,
    reference: Material | None = None,
) -> np.ndarray:
    """Vector form of :func:`penetration_response` over a frequency grid.

    Returns the complex multiplier per frequency, shape of
    ``frequencies_hz``.
    """
    from repro.channel.materials import AIR

    if path_length_m < 0:
        raise ValueError(f"path length must be >= 0, got {path_length_m}")
    ref = reference if reference is not None else AIR
    alpha_tar, beta_tar = propagation_constants_array(material, frequencies_hz)
    alpha_ref, beta_ref = propagation_constants_array(ref, frequencies_hz)
    ratio = np.exp(-path_length_m * (alpha_tar - alpha_ref))
    phase = path_length_m * (beta_tar - beta_ref)
    return ratio * np.exp(-1j * phase)


def attenuation_constant(
    material: Material, frequency_hz: float = DEFAULT_FREQUENCY_HZ
) -> float:
    """Attenuation constant ``alpha`` (Np/m) of ``material``."""
    alpha, _ = propagation_constants(material, frequency_hz)
    return alpha


def phase_constant(
    material: Material, frequency_hz: float = DEFAULT_FREQUENCY_HZ
) -> float:
    """Phase constant ``beta`` (rad/m) of ``material``."""
    _, beta = propagation_constants(material, frequency_hz)
    return beta


def wavelength_in(
    material: Material, frequency_hz: float = DEFAULT_FREQUENCY_HZ
) -> float:
    """In-medium wavelength ``2 pi / beta`` (metres)."""
    return 2.0 * math.pi / phase_constant(material, frequency_hz)


def phase_change_through(
    material: Material,
    path_length_m: float,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    reference: Material | None = None,
) -> float:
    """Paper Eq. 3: extra phase (rad) accrued by crossing ``path_length_m``.

    The change is relative to travelling the same distance in ``reference``
    (air by default): ``D (beta_tar - beta_free)``.  Positive for any
    material denser than air.
    """
    from repro.channel.materials import AIR

    if path_length_m < 0:
        raise ValueError(f"path length must be >= 0, got {path_length_m}")
    ref = reference if reference is not None else AIR
    beta_tar = phase_constant(material, frequency_hz)
    beta_ref = phase_constant(ref, frequency_hz)
    return path_length_m * (beta_tar - beta_ref)


def amplitude_ratio_through(
    material: Material,
    path_length_m: float,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    reference: Material | None = None,
) -> float:
    """Paper Eq. 4 (linear form): ``A_tar / A_free`` for a penetrating ray.

    Equals ``exp(-D (alpha_tar - alpha_free))``; in (0, 1] for lossy
    materials.
    """
    from repro.channel.materials import AIR

    if path_length_m < 0:
        raise ValueError(f"path length must be >= 0, got {path_length_m}")
    ref = reference if reference is not None else AIR
    alpha_tar = attenuation_constant(material, frequency_hz)
    alpha_ref = attenuation_constant(ref, frequency_hz)
    return math.exp(-path_length_m * (alpha_tar - alpha_ref))


def penetration_response(
    material: Material,
    path_length_m: float,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    reference: Material | None = None,
) -> complex:
    """Complex channel multiplier for a ray crossing the target.

    Combines Eq. 3 and Eq. 4: the field is multiplied by
    ``exp(-D (alpha_tar - alpha_free)) * exp(-j D (beta_tar - beta_free))``
    relative to the free-space ray.  This is what the CSI simulator applies
    to the LoS path when the target is present.
    """
    ratio = amplitude_ratio_through(material, path_length_m, frequency_hz, reference)
    phase = phase_change_through(material, path_length_m, frequency_hz, reference)
    return ratio * cmath.exp(-1j * phase)


def material_feature_theory(
    material: Material,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    reference: Material | None = None,
) -> float:
    """Ground-truth value of the paper's material feature (Eq. 21).

    ``Omega-bar = (alpha_tar - alpha_free) / (beta_tar - beta_free)``,
    positive for every lossy liquid.

    Note on the paper: substituting Eq. 20 into Eq. 21 gives
    ``-ln(DeltaPsi) = (D1-D2)(alpha_tar - alpha_free)`` over
    ``DeltaTheta + 2 gamma pi = (D1-D2)(beta_tar - beta_free)``, i.e. the
    *positive* form above; the paper's printed right-hand side
    ``(alpha_free - alpha_tar)/(beta_tar - beta_free)`` carries a sign typo.
    We use the self-consistent positive form everywhere.

    The WiMi pipeline estimates this from CSI alone; this helper computes it
    from the catalog physics, for verifying the estimator and for resolving
    the phase-wrap integer ``gamma``.
    """
    from repro.channel.materials import AIR

    ref = reference if reference is not None else AIR
    alpha_tar, beta_tar = propagation_constants(material, frequency_hz)
    alpha_ref, beta_ref = propagation_constants(ref, frequency_hz)
    beta_diff = beta_tar - beta_ref
    if abs(beta_diff) < 1e-12:
        raise ValueError(
            f"material {material.name!r} is indistinguishable from the "
            "reference medium: beta_tar == beta_free"
        )
    return (alpha_tar - alpha_ref) / beta_diff


def rss_change_db(
    material: Material,
    path_length_m: float,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
) -> float:
    """Paper Eq. 4 in dB: ``20 log10(A_tar / A_free)``.  Negative for loss."""
    ratio = amplitude_ratio_through(material, path_length_m, frequency_hz)
    return 20.0 * math.log10(ratio)
