"""Testbed geometry: link, antenna array, and the beaker on the LoS.

The paper's setup (Section IV) is a router 2 m from a laptop whose Intel
5300 NIC has three antennas; the liquid stands in a cylindrical beaker on
the line of sight.  For the material feature, the quantity that matters is
the *difference* ``D1 - D2`` between the path lengths two receiving
antennas' rays travel inside the liquid (Eq. 18-19) -- non-zero because the
antennas sit a few centimetres apart, so their rays cut slightly different
chords through the cylinder.

Everything is modelled in a 2-D horizontal plane:

* transmitter at the origin,
* receiver antennas on a vertical line at ``x = distance``, spaced
  ``antenna_spacing`` apart (default half a wavelength at 5.32 GHz),
* the beaker a circle of diameter ``container.diameter`` centred on the LoS
  (with an optional lateral offset).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.channel.materials import CONTAINER_MATERIALS, Material

#: Free-space wavelength at 5.32 GHz, ~5.63 cm.  The paper quotes "the
#: wavelength (6 cm) of the signal" for its diffraction argument (Fig. 19).
WAVELENGTH_5GHZ_M = 0.0563

#: Default receiver antenna spacing: half a wavelength.
DEFAULT_ANTENNA_SPACING_M = WAVELENGTH_5GHZ_M / 2.0

Point = tuple[float, float]


def chord_length(p0: Point, p1: Point, center: Point, radius: float) -> float:
    """Length of the part of segment ``p0 -> p1`` inside the given circle.

    Standard line-circle intersection, clipped to the segment.  Returns 0.0
    when the segment misses the circle.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius == 0.0:
        return 0.0
    dx = p1[0] - p0[0]
    dy = p1[1] - p0[1]
    fx = p0[0] - center[0]
    fy = p0[1] - center[1]
    a = dx * dx + dy * dy
    if a == 0.0:
        return 0.0
    b = 2.0 * (fx * dx + fy * dy)
    c = fx * fx + fy * fy - radius * radius
    disc = b * b - 4.0 * a * c
    if disc <= 0.0:
        return 0.0
    sqrt_disc = math.sqrt(disc)
    t1 = (-b - sqrt_disc) / (2.0 * a)
    t2 = (-b + sqrt_disc) / (2.0 * a)
    # Clip the entry/exit parameters to the segment [0, 1].
    t_enter = max(t1, 0.0)
    t_exit = min(t2, 1.0)
    if t_exit <= t_enter:
        return 0.0
    return (t_exit - t_enter) * math.sqrt(a)


@dataclass(frozen=True)
class CylinderTarget:
    """A liquid-filled cylindrical beaker standing on the LoS.

    Attributes:
        diameter: Outer diameter in metres (paper sizes: 14.3, 11, 8.9,
            6.1, 3.2 cm).
        height: Beaker height in metres (23 cm in the paper); kept for
            completeness -- the 2-D ray model does not use it.
        wall_thickness: Container wall thickness in metres.
        wall_material_name: Key into the container-material table
            (``"plastic"`` or ``"glass"``, Fig. 20).
        lateral_offset: Perpendicular displacement of the beaker centre from
            the LoS, in metres.
    """

    diameter: float = 0.143
    height: float = 0.23
    wall_thickness: float = 0.003
    wall_material_name: str = "plastic"
    lateral_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.diameter <= 0:
            raise ValueError(f"diameter must be positive, got {self.diameter}")
        if self.wall_thickness < 0:
            raise ValueError(
                f"wall thickness must be >= 0, got {self.wall_thickness}"
            )
        if 2.0 * self.wall_thickness >= self.diameter:
            raise ValueError(
                "wall thickness leaves no room for liquid: "
                f"{self.wall_thickness} vs diameter {self.diameter}"
            )
        if self.wall_material_name not in CONTAINER_MATERIALS:
            known = ", ".join(sorted(CONTAINER_MATERIALS))
            raise ValueError(
                f"unknown wall material {self.wall_material_name!r}; "
                f"known: {known}"
            )

    @property
    def outer_radius(self) -> float:
        """Outer radius of the beaker (metres)."""
        return self.diameter / 2.0

    @property
    def inner_radius(self) -> float:
        """Radius of the liquid column (metres)."""
        return self.diameter / 2.0 - self.wall_thickness

    @property
    def wall_material(self) -> Material:
        """The container wall material definition."""
        return CONTAINER_MATERIALS[self.wall_material_name]

    def diffraction_factor(self, wavelength_m: float = WAVELENGTH_5GHZ_M) -> float:
        """Fraction of received energy that penetrates (vs diffracts around).

        The paper observes (Fig. 19) that once the beaker diameter drops
        below the wavelength (~6 cm), diffraction around the target starts
        to dominate and identification degrades.  We model the penetrating
        fraction with a smooth logistic in ``diameter / wavelength``: ~1 for
        large beakers, falling steeply below one wavelength.
        """
        if wavelength_m <= 0:
            raise ValueError(f"wavelength must be positive, got {wavelength_m}")
        ratio = self.diameter / wavelength_m
        return 1.0 / (1.0 + math.exp(-6.0 * (ratio - 0.75)))


@dataclass(frozen=True)
class AntennaArray:
    """A uniform linear receiver array perpendicular to the LoS.

    Antenna positions are returned centred on the array phase centre, i.e.
    for 3 antennas at spacing ``s`` the offsets are ``(-s, 0, +s)``.
    """

    num_antennas: int = 3
    spacing: float = DEFAULT_ANTENNA_SPACING_M

    def __post_init__(self) -> None:
        if self.num_antennas < 1:
            raise ValueError(
                f"need at least one antenna, got {self.num_antennas}"
            )
        if self.spacing <= 0:
            raise ValueError(f"spacing must be positive, got {self.spacing}")

    def offsets(self) -> list[float]:
        """Perpendicular offsets of each antenna from the array centre."""
        mid = (self.num_antennas - 1) / 2.0
        return [(i - mid) * self.spacing for i in range(self.num_antennas)]

    def pairs(self) -> list[tuple[int, int]]:
        """All unordered antenna index pairs, e.g. [(0,1), (0,2), (1,2)]."""
        return [
            (i, j)
            for i in range(self.num_antennas)
            for j in range(i + 1, self.num_antennas)
        ]


@dataclass(frozen=True)
class LinkGeometry:
    """The full Tx -> target -> Rx-array layout.

    Attributes:
        distance: Tx-Rx separation in metres (paper default 2 m; Fig. 17
            sweeps 1-3 m).
        array: The receiver antenna array.
        target_position: Fractional position of the beaker centre along the
            LoS (0 = at Tx, 1 = at Rx; default mid-link).
    """

    distance: float = 2.0
    array: AntennaArray = field(default_factory=AntennaArray)
    target_position: float = 0.5

    def __post_init__(self) -> None:
        if self.distance <= 0:
            raise ValueError(f"distance must be positive, got {self.distance}")
        if not 0.0 < self.target_position < 1.0:
            raise ValueError(
                "target_position must be strictly inside (0, 1), "
                f"got {self.target_position}"
            )

    @property
    def tx_position(self) -> Point:
        """Transmitter coordinates (origin)."""
        return (0.0, 0.0)

    def rx_positions(self) -> list[Point]:
        """Coordinates of each receiver antenna."""
        return [(self.distance, off) for off in self.array.offsets()]

    def target_center(self, target: CylinderTarget) -> Point:
        """Beaker centre coordinates."""
        return (
            self.distance * self.target_position,
            target.lateral_offset,
        )

    def los_lengths(self) -> list[float]:
        """Straight-line Tx -> antenna distances, one per antenna."""
        tx = self.tx_position
        return [
            math.hypot(p[0] - tx[0], p[1] - tx[1]) for p in self.rx_positions()
        ]

    def liquid_path_lengths(self, target: CylinderTarget) -> list[float]:
        """Chord each antenna's LoS ray cuts through the *liquid* column.

        These are the ``D_i`` of Eq. 14-19.  Different antennas see
        different chords because their rays cross the cylinder at different
        lateral positions, which is exactly what makes ``D1 - D2`` non-zero.
        """
        center = self.target_center(target)
        tx = self.tx_position
        return [
            chord_length(tx, rx, center, target.inner_radius)
            for rx in self.rx_positions()
        ]

    def wall_path_lengths(self, target: CylinderTarget) -> list[float]:
        """Chord each ray cuts through the container *wall* annulus."""
        center = self.target_center(target)
        tx = self.tx_position
        lengths = []
        for rx in self.rx_positions():
            outer = chord_length(tx, rx, center, target.outer_radius)
            inner = chord_length(tx, rx, center, target.inner_radius)
            lengths.append(max(outer - inner, 0.0))
        return lengths

    def path_length_difference(
        self, target: CylinderTarget, pair: tuple[int, int]
    ) -> float:
        """``D_i - D_j`` for an antenna pair -- the lever arm of Eq. 18-21."""
        lengths = self.liquid_path_lengths(target)
        i, j = pair
        return lengths[i] - lengths[j]
