"""Versioned model registry: durable, promotable trained-model bundles.

A *bundle* is anything expressible in the repo's npz/json payload codec
(:mod:`repro.persist.serialize`): a JSON-able ``meta`` dict plus named
float arrays.  :meth:`repro.core.pipeline.WiMi.save_to_registry` packs
the trained classifier, the feature database and the calibration
profile into one bundle; the registry itself is model-agnostic so the
pipeline-zoo direction can register competing pipelines side by side.

Layout::

    <root>/<name>/
        versions/v0001/
            manifest.json    version, created_at, config fingerprint,
                             training-set hash, classifier token, metrics
            bundle.bin       framed payload (same integrity frame as the
                             artifact store)
        CURRENT              {"version": ..., "history": [...]} (atomic)

Version directories are allocated with ``mkdir`` (atomic on every POSIX
filesystem), so two processes saving concurrently get distinct
versions.  ``CURRENT`` is replaced atomically via tmp + ``os.replace``;
``promote`` appends to its history and ``rollback`` pops it, which
makes rollback an O(1) pointer move that never deletes data.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.persist.serialize import (
    IntegrityError,
    frame,
    pack,
    unframe,
    unpack,
)

#: Width of the zero-padded version number in directory names.
_VERSION_DIGITS = 4

_BUNDLE_FILE = "bundle.bin"
_MANIFEST_FILE = "manifest.json"
_CURRENT_FILE = "CURRENT"


class RegistryError(ValueError):
    """A registry operation referenced a missing or invalid entry."""


def _format_version(number: int) -> str:
    return f"v{number:0{_VERSION_DIGITS}d}"


def _parse_version(version: str) -> int:
    if not version.startswith("v"):
        raise RegistryError(f"malformed version {version!r}")
    try:
        return int(version[1:])
    except ValueError as exc:
        raise RegistryError(f"malformed version {version!r}") from exc


class ModelRegistry:
    """Save/load/list/promote/rollback over one registry root.

    All mutating operations are multi-process-safe: version allocation
    uses atomic ``mkdir`` and the ``CURRENT`` pointer uses tmp +
    ``os.replace``.  A thread lock additionally serialises pointer
    read-modify-write within a process.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _model_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid model name {name!r}")
        return self.root / name

    def _version_dir(self, name: str, version: str) -> Path:
        return self._model_dir(name) / "versions" / version

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------

    def save(
        self,
        name: str,
        meta: dict,
        arrays: dict[str, np.ndarray],
        manifest: dict | None = None,
        promote: bool = True,
    ) -> str:
        """Persist one bundle as a fresh version; returns the version id.

        ``manifest`` fields (config fingerprint, training-set hash,
        metrics...) are merged into the written manifest alongside the
        registry-owned ``version``/``created_at`` keys.  With
        ``promote=True`` (default) the new version also becomes
        ``CURRENT``.
        """
        versions_root = self._model_dir(name) / "versions"
        versions_root.mkdir(parents=True, exist_ok=True)
        existing = self._version_numbers(name)
        number = (max(existing) + 1) if existing else 1
        # mkdir is atomic: on a race, step past the winner and retry.
        while True:
            version = _format_version(number)
            try:
                self._version_dir(name, version).mkdir()
                break
            except FileExistsError:
                number += 1
        version_dir = self._version_dir(name, version)

        payload = frame(pack(meta, arrays))
        full_manifest = dict(manifest or {})
        full_manifest["version"] = version
        full_manifest["created_at"] = time.time()
        full_manifest["bundle_bytes"] = len(payload)

        self._write_atomic(version_dir / _BUNDLE_FILE, payload)
        self._write_atomic(
            version_dir / _MANIFEST_FILE,
            json.dumps(full_manifest, sort_keys=True, indent=2).encode(),
        )
        if promote:
            self.promote(name, version)
        return version

    def load(
        self, name: str, version: str | None = None
    ) -> tuple[dict, dict[str, np.ndarray], dict]:
        """Load ``(meta, arrays, manifest)`` for a version (None=CURRENT)."""
        if version is None:
            version = self.current_version(name)
            if version is None:
                raise RegistryError(f"model {name!r} has no current version")
        version_dir = self._version_dir(name, version)
        bundle_path = version_dir / _BUNDLE_FILE
        try:
            data = bundle_path.read_bytes()
        except FileNotFoundError as exc:
            raise RegistryError(
                f"model {name!r} version {version} not found"
            ) from exc
        try:
            meta, arrays = unpack(unframe(data))
        except IntegrityError as exc:
            raise RegistryError(
                f"model {name!r} version {version} failed verification: {exc}"
            ) from exc
        manifest = self.manifest(name, version)
        return meta, arrays, manifest

    def manifest(self, name: str, version: str) -> dict:
        """The manifest dict of one version."""
        path = self._version_dir(name, version) / _MANIFEST_FILE
        try:
            return json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise RegistryError(
                f"model {name!r} version {version} has no manifest"
            ) from exc

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------

    def list_models(self) -> list[str]:
        """Names of every registered model, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and (p / "versions").is_dir()
        )

    def list_versions(self, name: str) -> list[dict]:
        """Manifests of every version of ``name``, oldest first."""
        manifests = []
        for number in self._version_numbers(name):
            version = _format_version(number)
            try:
                manifests.append(self.manifest(name, version))
            except RegistryError:
                # Half-written version (crashed save): skip, gc later.
                continue
        return manifests

    def _version_numbers(self, name: str) -> list[int]:
        versions_root = self._model_dir(name) / "versions"
        if not versions_root.is_dir():
            return []
        numbers = []
        for path in versions_root.iterdir():
            try:
                numbers.append(_parse_version(path.name))
            except RegistryError:
                continue
        return sorted(numbers)

    # ------------------------------------------------------------------
    # CURRENT pointer
    # ------------------------------------------------------------------

    def current_version(self, name: str) -> str | None:
        """The promoted version of ``name`` (None if never promoted)."""
        state = self._read_pointer(name)
        return state.get("version") if state else None

    def promote(self, name: str, version: str) -> None:
        """Point ``CURRENT`` at ``version``, recording the old one."""
        if not (self._version_dir(name, version) / _BUNDLE_FILE).exists():
            raise RegistryError(
                f"cannot promote missing version {version} of {name!r}"
            )
        with self._lock:
            state = self._read_pointer(name) or {"version": None, "history": []}
            if state["version"] == version:
                return
            if state["version"] is not None:
                state.setdefault("history", []).append(state["version"])
            state["version"] = version
            self._write_pointer(name, state)

    def rollback(self, name: str) -> str:
        """Undo the last promote; returns the re-instated version."""
        with self._lock:
            state = self._read_pointer(name)
            if not state or not state.get("history"):
                raise RegistryError(
                    f"model {name!r} has no promotion history to roll back"
                )
            previous = state["history"].pop()
            state["version"] = previous
            self._write_pointer(name, state)
            return previous

    def _read_pointer(self, name: str) -> dict | None:
        path = self._model_dir(name) / _CURRENT_FILE
        try:
            return json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def _write_pointer(self, name: str, state: dict) -> None:
        path = self._model_dir(name) / _CURRENT_FILE
        self._write_atomic(
            path, json.dumps(state, sort_keys=True).encode()
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_bytes(data)
        os.replace(tmp, path)
