"""Durable persistence: artifact store, serialization, model registry.

This package is the disk half of the artifact lifecycle:

* :mod:`repro.persist.serialize` -- framed npz/json payload codec for
  the frozen :mod:`repro.engine.artifacts` dataclasses (no pickle, no
  third-party dependencies).
* :mod:`repro.persist.store` -- content-addressed on-disk store used as
  the second tier behind :class:`repro.engine.StageCache`; atomic CAS
  writes make it safe for spawn-based ``parallel_map`` fleets.
* :mod:`repro.persist.registry` -- versioned model registry with
  promote/rollback for trained classifier bundles, feature databases
  and calibration profiles.
"""

from repro.persist.registry import ModelRegistry, RegistryError
from repro.persist.serialize import (
    IntegrityError,
    deserialize_artifact,
    serialize_artifact,
)
from repro.persist.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "IntegrityError",
    "ModelRegistry",
    "RegistryError",
    "deserialize_artifact",
    "serialize_artifact",
]
