"""Content-addressed, multi-process-safe on-disk artifact store.

The store is the disk tier behind :class:`repro.engine.StageCache`.
Layout (all under one root directory)::

    <root>/
      objects/<stage>/<digest[:2]>/<digest>.art    framed artifact files
      quarantine/<stage>/<digest>.art              verify-failed entries
      *.tmp                                        in-flight writes

where ``digest`` is the blake2b-128 hex of ``stage + "\\0" + key`` --
the engine's cache keys are already content hashes of trace bytes plus
stage-relevant config, so addressing by (stage, key) *is* content
addressing and concurrent writers of the same key always carry
identical payloads.

Concurrency contract (the part ``parallel_map`` fleets depend on):

* **Writes are atomic.** A put writes to a unique ``.tmp`` file in the
  *same directory* and then ``os.replace``-es it into place.  Readers
  can never observe a torn file; two processes racing on one key both
  succeed and the survivor is a complete, valid entry.
* **Reads are verified.** Every get re-checks the integrity frame
  (magic + digest) and the recorded (stage, key); any mismatch --
  truncation, bit flips, a foreign file dropped into the tree -- is
  counted and reported as a miss, never an exception.
* **Corruption is quarantined.** A verify-failed entry is *moved* to
  ``quarantine/`` in the same get, so known-bad bytes are never re-read
  (later gets are plain not-found misses, not repeated verification of
  garbage) and the address is freed for the self-heal path: the miss
  triggers a recompute, whose put lands a fresh valid entry
  (``healed`` counts such re-puts of previously quarantined
  addresses).

The store deliberately has **no index file**: the filesystem tree is
the index, so there is nothing to lock and nothing to corrupt.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
from pathlib import Path

from repro.engine.artifacts import Artifact
from repro.persist.serialize import (
    IntegrityError,
    deserialize_artifact,
    payload_array_dtypes,
    serialize_artifact,
)

#: File extension of completed entries.
_ENTRY_SUFFIX = ".art"

#: Per-process counter making tmp names unique within a thread+pid.
_TMP_COUNTER = itertools.count()


def _address(stage: str, key: str) -> str:
    """Hex digest addressing one (stage, key) entry on disk."""
    raw = stage.encode("utf-8") + b"\0" + key.encode("utf-8")
    return hashlib.blake2b(raw, digest_size=16).hexdigest()


class ArtifactStore:
    """Durable artifact tier; see module docstring for guarantees.

    Args:
        root: Directory for the store (created on first use).

    Instance counters (``hits``/``misses``/``writes``/``corrupt``/
    ``errors``) are process-local and thread-safe; they feed the serve
    metrics and ``repro store`` output but carry no durable state.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._quarantine = self.root / "quarantine"
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.errors = 0
        self.quarantined = 0
        self.healed = 0
        #: Addresses quarantined by this process, pending self-heal
        #: (a later put of the same address counts as ``healed``).
        self._pending_heal: set[str] = set()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def path_for(self, stage: str, key: str) -> Path:
        """Where the entry for (stage, key) lives (whether or not it exists)."""
        digest = _address(stage, key)
        return self._objects / stage / digest[:2] / (digest + _ENTRY_SUFFIX)

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, stage: str, key: str) -> Artifact | None:
        """Load and verify one entry; any problem is a miss, not a crash."""
        path = self.path_for(stage, key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            with self._lock:
                self.errors += 1
                self.misses += 1
            return None
        try:
            artifact = deserialize_artifact(data)
        except (IntegrityError, ValueError, KeyError, OSError):
            # Truncated, bit-flipped, or foreign file: treat as a miss
            # and quarantine the bytes so they are never re-read.
            self._quarantine_entry(stage, key, path)
            return None
        if artifact.key != key:
            # An address collision or a file moved by hand; do not
            # serve an artifact for a key it was not computed under.
            self._quarantine_entry(stage, key, path)
            return None
        with self._lock:
            self.hits += 1
        return artifact

    def _quarantine_entry(self, stage: str, key: str, path: Path) -> None:
        """Move a verify-failed entry out of the addressable tree.

        ``os.replace`` keeps this race-safe: if two readers hit the
        same bad entry, one move wins and the loser's (FileNotFoundError)
        is ignored -- either way the address is freed, so the caller's
        miss triggers a recompute whose put self-heals the entry.
        """
        moved = already_gone = False
        dest = self._quarantine / stage / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            moved = True
        except FileNotFoundError:
            already_gone = True  # a concurrent reader quarantined it first
        except OSError:
            # Could not move (e.g. permissions): fall back to the old
            # behaviour -- the entry stays and will re-verify-fail.
            pass
        with self._lock:
            self.corrupt += 1
            self.misses += 1
            if moved:
                self.quarantined += 1
            if moved or already_gone:
                self._pending_heal.add(_address(stage, key))
            else:
                self.errors += 1

    def put(self, stage: str, key: str, artifact: Artifact) -> bool:
        """Persist one entry atomically; returns False if already stored.

        Content addressing makes the existence check safe: a concurrent
        writer of the same (stage, key) holds byte-equivalent content,
        so whichever ``os.replace`` lands last leaves a valid entry.
        """
        path = self.path_for(stage, key)
        if path.exists():
            return False
        try:
            data = serialize_artifact(artifact)
        except TypeError:
            # Artifact type without a codec: skip persistence silently;
            # the memory tier still serves it for this process.
            return False
        tmp = path.parent / (
            f"{path.stem}.{os.getpid()}.{threading.get_ident()}."
            f"{next(_TMP_COUNTER)}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                self.errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        with self._lock:
            self.writes += 1
            address = _address(stage, key)
            if address in self._pending_heal:
                self._pending_heal.discard(address)
                self.healed += 1
        return True

    def __contains__(self, stage_key: tuple[str, str]) -> bool:
        stage, key = stage_key
        return self.path_for(stage, key).exists()

    # ------------------------------------------------------------------
    # Inspection / maintenance
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Process-local activity counters as a plain dict."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "corrupt": self.corrupt,
                "errors": self.errors,
                "quarantined": self.quarantined,
                "healed": self.healed,
            }

    def stats(self) -> dict:
        """Walk the tree: total/per-stage entry counts, sizes and dtypes.

        Each stage additionally reports how many stored *arrays* it
        holds per dtype (``{"float64": 12, "float32": 12}``), read from
        the npz member headers -- the observable for mixed-precision
        stores, where float32 and float64 runs of the same stage live
        side by side under distinct cache keys.  Unreadable entries are
        skipped here exactly as reads treat them (a miss, not a crash).
        """
        stages: dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        if self._objects.is_dir():
            for stage_dir in sorted(self._objects.iterdir()):
                if not stage_dir.is_dir():
                    continue
                entries = 0
                size = 0
                dtypes: dict[str, int] = {}
                for path in stage_dir.rglob("*" + _ENTRY_SUFFIX):
                    try:
                        size += path.stat().st_size
                        member_dtypes = payload_array_dtypes(
                            path.read_bytes()
                        )
                    except (IntegrityError, ValueError, KeyError, OSError):
                        continue
                    entries += 1
                    for dtype in member_dtypes.values():
                        dtypes[dtype] = dtypes.get(dtype, 0) + 1
                stages[stage_dir.name] = {
                    "entries": entries,
                    "bytes": size,
                    "dtypes": dict(sorted(dtypes.items())),
                }
                total_entries += entries
                total_bytes += size
        quarantine_entries = 0
        quarantine_bytes = 0
        if self._quarantine.is_dir():
            for path in self._quarantine.rglob("*" + _ENTRY_SUFFIX):
                try:
                    quarantine_bytes += path.stat().st_size
                except OSError:
                    continue
                quarantine_entries += 1
        return {
            "root": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "stages": stages,
            "quarantine": {
                "entries": quarantine_entries,
                "bytes": quarantine_bytes,
            },
            "counters": self.counters(),
        }

    def gc(self) -> dict[str, int]:
        """Prune leftovers: stale tmp files, corrupt and quarantined entries.

        Returns counts of removed tmp files, corrupt entries (found by
        re-verifying the addressable tree) and purged quarantine files.
        Valid entries are never touched -- content addressing means an
        entry can only ever be stale by corruption, not by age.
        """
        removed_tmp = 0
        removed_corrupt = 0
        removed_quarantined = 0
        if self.root.is_dir():
            for tmp in self.root.rglob("*.tmp"):
                try:
                    tmp.unlink()
                    removed_tmp += 1
                except OSError:
                    continue
        if self._objects.is_dir():
            for path in self._objects.rglob("*" + _ENTRY_SUFFIX):
                try:
                    deserialize_artifact(path.read_bytes())
                except (IntegrityError, ValueError, KeyError, OSError):
                    try:
                        path.unlink()
                        removed_corrupt += 1
                    except OSError:
                        continue
        if self._quarantine.is_dir():
            for path in self._quarantine.rglob("*" + _ENTRY_SUFFIX):
                try:
                    path.unlink()
                    removed_quarantined += 1
                except OSError:
                    continue
        return {
            "tmp_removed": removed_tmp,
            "corrupt_removed": removed_corrupt,
            "quarantine_removed": removed_quarantined,
        }
