"""Artifact (de)serialization: the npz/json hybrid payload codec.

Every frozen :mod:`repro.engine.artifacts` dataclass round-trips through
a single self-describing payload format with **no third-party
dependencies**:

* numeric arrays travel as entries of an uncompressed ``.npz`` archive
  (bit-exact for float64, the repo-wide dtype);
* scalars, strings, tuples and nested plain dataclasses travel as one
  JSON document stored *inside* the same archive as a ``uint8`` byte
  array (``np.savez`` cannot hold strings without pickling, and pickle
  is deliberately banned -- a store file must never execute code on
  read).

On top of the payload sits a small integrity frame::

    MAGIC (8 bytes) | blake2b-128 digest of payload | payload

:func:`unframe` verifies the digest before a single payload byte is
parsed, so truncated or bit-flipped store files are detected up front
and reported as :class:`IntegrityError` -- the store maps that to a
cache miss, never a crash.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict

import numpy as np

from repro.csi.quality import QualityThresholds, TraceQualityReport
from repro.core.feature import FeatureMeasurement
from repro.engine.artifacts import (
    Artifact,
    ClassificationArtifact,
    DenoisedTraceArtifact,
    FeatureArtifact,
    ObservablesArtifact,
    PhaseArtifact,
    StreamWindowArtifact,
    SubcarrierArtifact,
    TraceQualityArtifact,
)

#: Leading bytes of every framed payload (format version 1).
MAGIC = b"WIMIART1"

#: Digest width of the integrity frame (blake2b-128).
_DIGEST_SIZE = 16

#: Name of the JSON member inside the npz archive.
_META_MEMBER = "__meta__"


class IntegrityError(ValueError):
    """A framed payload failed verification (truncated/corrupt/foreign)."""


# ----------------------------------------------------------------------
# Payload codec: (meta dict, arrays dict) <-> bytes
# ----------------------------------------------------------------------


def pack(meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """Encode a JSON-able ``meta`` dict plus named arrays into npz bytes."""
    if _META_MEMBER in arrays:
        raise ValueError(f"array name {_META_MEMBER!r} is reserved")
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    members = {_META_MEMBER: np.frombuffer(meta_bytes, dtype=np.uint8)}
    for name, array in arrays.items():
        members[name] = np.ascontiguousarray(array)
    buffer = io.BytesIO()
    np.savez(buffer, **members)
    return buffer.getvalue()


def unpack(data: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Decode :func:`pack` output back into ``(meta, arrays)``.

    ``allow_pickle`` stays off: a payload can only ever contain plain
    arrays and JSON, so a malicious or damaged file cannot run code.
    """
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        if _META_MEMBER not in archive:
            raise IntegrityError("payload has no metadata member")
        meta = json.loads(archive[_META_MEMBER].tobytes().decode("utf-8"))
        arrays = {
            name: archive[name]
            for name in archive.files
            if name != _META_MEMBER
        }
    return meta, arrays


def payload_array_dtypes(data: bytes) -> dict[str, str]:
    """Dtype string of every array member in a framed artifact file.

    Used by the store's stats walk to report what precisions live on
    disk: the npz payload stores each member's dtype natively, so a
    float32 artifact is visible (and round-trips bit-identically)
    without re-materialising the full artifact object.  Raises
    :class:`IntegrityError` on damaged input like any other read.
    """
    _, arrays = unpack(unframe(data))
    return {name: str(array.dtype) for name, array in arrays.items()}


def content_digest(payload: bytes) -> str:
    """Hex blake2b-128 digest of raw payload bytes."""
    import hashlib

    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()


def frame(payload: bytes) -> bytes:
    """Wrap payload bytes in the MAGIC + digest integrity frame."""
    import hashlib

    digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    return MAGIC + digest + payload


def unframe(data: bytes) -> bytes:
    """Verify and strip the integrity frame; raises :class:`IntegrityError`.

    Detects short reads (truncation), foreign files (magic mismatch) and
    payload damage (digest mismatch) before any parsing happens.
    """
    import hashlib

    header = len(MAGIC) + _DIGEST_SIZE
    if len(data) < header:
        raise IntegrityError(
            f"file too short to be a framed payload ({len(data)} bytes)"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise IntegrityError("bad magic: not a WiMi artifact file")
    digest = data[len(MAGIC):header]
    payload = data[header:]
    actual = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    if actual != digest:
        raise IntegrityError("payload digest mismatch (corrupt file)")
    return payload


# ----------------------------------------------------------------------
# Artifact <-> payload
# ----------------------------------------------------------------------


def _pair(meta_value) -> tuple[int, int]:
    i, j = meta_value
    return (int(i), int(j))


def _optional_array(arrays: dict, name: str) -> np.ndarray | None:
    value = arrays.get(name)
    return None if value is None else np.asarray(value)


def _encode_quality_report(report: TraceQualityReport) -> tuple[dict, dict]:
    meta = {
        "num_packets": report.num_packets,
        "num_antennas": report.num_antennas,
        "num_subcarriers": report.num_subcarriers,
        "finite_fraction": report.finite_fraction,
        "loss_rate": report.loss_rate,
        "sequence_gaps": report.sequence_gaps,
        "duplicate_packets": report.duplicate_packets,
        "reordered_packets": report.reordered_packets,
        "clipped_packets": report.clipped_packets,
        "clipping_rate": report.clipping_rate,
        "thresholds": asdict(report.thresholds),
    }
    arrays = {
        "antenna_finite_fraction": report.antenna_finite_fraction,
        "subcarrier_finite_fraction": report.subcarrier_finite_fraction,
        "antenna_live_fraction": report.antenna_live_fraction,
        "subcarrier_live_fraction": report.subcarrier_live_fraction,
    }
    return meta, arrays


def _decode_quality_report(meta: dict, arrays: dict) -> TraceQualityReport:
    return TraceQualityReport(
        num_packets=int(meta["num_packets"]),
        num_antennas=int(meta["num_antennas"]),
        num_subcarriers=int(meta["num_subcarriers"]),
        finite_fraction=float(meta["finite_fraction"]),
        antenna_finite_fraction=np.asarray(arrays["antenna_finite_fraction"]),
        subcarrier_finite_fraction=np.asarray(
            arrays["subcarrier_finite_fraction"]
        ),
        antenna_live_fraction=np.asarray(arrays["antenna_live_fraction"]),
        subcarrier_live_fraction=np.asarray(
            arrays["subcarrier_live_fraction"]
        ),
        loss_rate=float(meta["loss_rate"]),
        sequence_gaps=int(meta["sequence_gaps"]),
        duplicate_packets=int(meta["duplicate_packets"]),
        reordered_packets=int(meta["reordered_packets"]),
        clipped_packets=int(meta["clipped_packets"]),
        clipping_rate=float(meta["clipping_rate"]),
        thresholds=QualityThresholds(**meta["thresholds"]),
    )


def serialize_artifact(artifact: Artifact) -> bytes:
    """One artifact -> framed payload bytes (see module docstring)."""
    meta: dict = {"type": type(artifact).__name__, "key": artifact.key}
    arrays: dict[str, np.ndarray] = {}

    if isinstance(artifact, PhaseArtifact):
        meta["pair"] = list(artifact.pair)
        arrays["theta_wrapped"] = artifact.theta_wrapped
    elif isinstance(artifact, DenoisedTraceArtifact):
        arrays["amplitudes"] = artifact.amplitudes
    elif isinstance(artifact, StreamWindowArtifact):
        meta["start"] = artifact.start
        arrays["amplitudes"] = artifact.amplitudes
    elif isinstance(artifact, ObservablesArtifact):
        meta["pair"] = list(artifact.pair)
        arrays["theta_wrapped"] = artifact.theta_wrapped
        arrays["neg_log_psi"] = artifact.neg_log_psi
    elif isinstance(artifact, SubcarrierArtifact):
        meta["pair"] = list(artifact.pair)
        meta["subcarriers"] = list(artifact.subcarriers)
    elif isinstance(artifact, ClassificationArtifact):
        meta["label"] = artifact.label
        meta["confidence"] = artifact.confidence
    elif isinstance(artifact, TraceQualityArtifact):
        report_meta, report_arrays = _encode_quality_report(artifact.report)
        meta["report"] = report_meta
        arrays.update(report_arrays)
    elif isinstance(artifact, FeatureArtifact):
        m = artifact.measurement
        meta["measurement"] = {
            "gamma": m.gamma,
            "pair": list(m.pair),
            "subcarriers": list(m.subcarriers),
            "material_name": m.material_name,
            "omega_coarse": m.omega_coarse,
            "include_coarse": m.include_coarse,
        }
        arrays["omegas"] = m.omegas
        arrays["delta_theta"] = m.delta_theta
        arrays["delta_psi"] = m.delta_psi
        if m.theta_aligned is not None:
            arrays["theta_aligned"] = m.theta_aligned
        if m.neg_log_psi is not None:
            arrays["neg_log_psi"] = m.neg_log_psi
    else:
        raise TypeError(
            f"no serialization for artifact type {type(artifact).__name__}"
        )
    return frame(pack(meta, arrays))


def deserialize_artifact(data: bytes) -> Artifact:
    """Framed payload bytes -> the original artifact, bit-identically.

    Raises :class:`IntegrityError` on any damage or unknown type; the
    store turns that into a miss.
    """
    meta, arrays = unpack(unframe(data))
    kind = meta.get("type")
    key = meta.get("key", "")

    if kind == "PhaseArtifact":
        return PhaseArtifact(
            key=key,
            pair=_pair(meta["pair"]),
            theta_wrapped=np.asarray(arrays["theta_wrapped"]),
        )
    if kind == "DenoisedTraceArtifact":
        return DenoisedTraceArtifact(
            key=key, amplitudes=np.asarray(arrays["amplitudes"])
        )
    if kind == "StreamWindowArtifact":
        return StreamWindowArtifact(
            key=key,
            start=int(meta["start"]),
            amplitudes=np.asarray(arrays["amplitudes"]),
        )
    if kind == "ObservablesArtifact":
        return ObservablesArtifact(
            key=key,
            pair=_pair(meta["pair"]),
            theta_wrapped=np.asarray(arrays["theta_wrapped"]),
            neg_log_psi=np.asarray(arrays["neg_log_psi"]),
        )
    if kind == "SubcarrierArtifact":
        return SubcarrierArtifact(
            key=key,
            pair=_pair(meta["pair"]),
            subcarriers=tuple(int(k) for k in meta["subcarriers"]),
        )
    if kind == "ClassificationArtifact":
        return ClassificationArtifact(
            key=key,
            label=str(meta["label"]),
            confidence=float(meta["confidence"]),
        )
    if kind == "TraceQualityArtifact":
        return TraceQualityArtifact(
            key=key, report=_decode_quality_report(meta["report"], arrays)
        )
    if kind == "FeatureArtifact":
        m = meta["measurement"]
        measurement = FeatureMeasurement(
            omegas=np.asarray(arrays["omegas"]),
            delta_theta=np.asarray(arrays["delta_theta"]),
            delta_psi=np.asarray(arrays["delta_psi"]),
            gamma=int(m["gamma"]),
            pair=_pair(m["pair"]),
            subcarriers=[int(k) for k in m["subcarriers"]],
            material_name=str(m["material_name"]),
            theta_aligned=_optional_array(arrays, "theta_aligned"),
            neg_log_psi=_optional_array(arrays, "neg_log_psi"),
            omega_coarse=float(m["omega_coarse"]),
            include_coarse=bool(m["include_coarse"]),
        )
        return FeatureArtifact(key=key, measurement=measurement)
    raise IntegrityError(f"unknown artifact type {kind!r} in payload")
