"""Stage declarations of the WiMi processing graph.

Each stage of the paper's Fig. 5 chain is declared once, with the
:class:`repro.core.config.WiMiConfig` fields its output depends on and
the stages it consumes.  The engine uses the declarations to build cache
keys (only the declared config fields enter a stage's key, so e.g. a
classifier sweep reuses every upstream artifact) and to expose the graph
for introspection/docs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StageSpec:
    """Static description of one pipeline stage.

    Attributes:
        name: Stable stage identifier (also the stats bucket name).
        config_fields: ``WiMiConfig`` fields that parameterise the stage's
            output; they are hashed into every cache key of the stage.
        inputs: Names of upstream stages this stage consumes (the edges of
            the stage graph).
        description: One-line human description.
    """

    name: str
    config_fields: tuple[str, ...] = ()
    inputs: tuple[str, ...] = ()
    description: str = ""


#: Quality boundary: per-trace degradation measurement (finite/live
#: fractions, loss rate, clipping rate).  Gating decisions downstream
#: depend on the thresholds, so they parameterise the key.
TRACE_QUALITY = StageSpec(
    name="trace_quality",
    config_fields=("quality_thresholds",),
    inputs=(),
    description="TraceQualityReport of one trace (loss/clipping/liveness)",
)

#: Eq. 5-6: inter-antenna phase differencing, packet-averaged, baseline
#: vs target.  Depends on data only.
PHASE_CALIBRATION = StageSpec(
    name="phase_calibration",
    config_fields=(),
    inputs=(),
    description="wrapped Delta-Theta per subcarrier (Eq. 18 observable)",
)

#: Sec. III-C: outlier rejection + spatially-selective wavelet filtering
#: of one trace's amplitude cube.  The pipeline's hot spot.
#: ``compute_precision`` is part of the key: a float32 cube and a
#: float64 cube of the same trace are different artifacts and must
#: never alias in the cache (the downstream stages inherit the field
#: by building their tuples from this one).
AMPLITUDE_DENOISE = StageSpec(
    name="amplitude_denoise",
    config_fields=(
        "denoise_amplitude",
        "wavelet_name",
        "wavelet_levels",
        "outlier_sigmas",
        "compute_precision",
    ),
    inputs=(),
    description="denoised |H| cube of one trace",
)

#: Incremental sibling of ``amplitude_denoise``: one fixed-size packet
#: window of raw amplitude rows, denoised as soon as the window
#: completes.  Partial-input stage: the key hashes the window's *rows*
#: plus its absolute start index, so a replayed stream (same packets,
#: any chunking) resolves every window from cache while a divergent
#: stream misses from the first differing window.
STREAM_WINDOW_DENOISE = StageSpec(
    name="stream_window_denoise",
    config_fields=AMPLITUDE_DENOISE.config_fields
    + ("stream_window_size", "stream_hop"),
    inputs=(),
    description="denoised |H| rows of one streaming window",
)

#: Eq. 19 observable assembled from the denoised cubes of both traces.
OBSERVABLES = StageSpec(
    name="observables",
    config_fields=AMPLITUDE_DENOISE.config_fields,
    inputs=(PHASE_CALIBRATION.name, AMPLITUDE_DENOISE.name),
    description="(Delta-Theta, -ln DeltaPsi) per subcarrier for one pair",
)

#: Eq. 7: good-subcarrier selection, pooled over calibration sessions.
SUBCARRIER_SELECTION = StageSpec(
    name="subcarrier_selection",
    config_fields=(),
    inputs=(PHASE_CALIBRATION.name,),
    description="most stable subcarriers for one pair (Eq. 7 ranking)",
)

#: Eq. 18-21: Omega-bar with gamma resolution for one feature block.
FEATURE_EXTRACTION = StageSpec(
    name="feature_extraction",
    config_fields=("max_gamma", "gamma_strategy"),
    inputs=(OBSERVABLES.name, SUBCARRIER_SELECTION.name),
    description="Omega-bar feature block with resolved gamma",
)

#: Sec. III-E: database-aided branch resolution + classification.
CLASSIFY = StageSpec(
    name="classify",
    config_fields=(
        "classifier",
        "svm_c",
        "knn_k",
        "max_gamma",
        "compute_precision",
    ),
    inputs=(FEATURE_EXTRACTION.name,),
    description="material label (+ centroid-margin confidence)",
)

#: All stages, topologically ordered.
ALL_STAGES: tuple[StageSpec, ...] = (
    TRACE_QUALITY,
    PHASE_CALIBRATION,
    AMPLITUDE_DENOISE,
    STREAM_WINDOW_DENOISE,
    OBSERVABLES,
    SUBCARRIER_SELECTION,
    FEATURE_EXTRACTION,
    CLASSIFY,
)


def stage_graph() -> dict[str, tuple[str, ...]]:
    """Adjacency view of the stage graph: ``{stage: upstream stages}``."""
    return {spec.name: spec.inputs for spec in ALL_STAGES}
