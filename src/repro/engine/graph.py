"""The pipeline engine: memoized execution of the WiMi stage graph.

:class:`PipelineEngine` owns the execution of the Fig. 5 chain as
declared in :mod:`repro.engine.stages`.  Every stage call resolves a
content-hash key (session/trace bytes + the stage's declared config
fields), consults the :class:`repro.engine.cache.StageCache`, and only
runs the underlying ``repro.core`` component on a miss.  Registered
hooks observe every resolution as a :class:`StageEvent`, which is how
the perf benchmarks count real denoiser executions.

The engine holds *no* mutable pipeline state of its own -- deployment
calibration (chosen pairs/subcarriers) stays in
:class:`repro.core.pipeline.WiMi` -- so one engine (or one shared cache)
can serve many ``WiMi`` facades concurrently, which is what makes the
experiment runner's config sweeps cheap.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable

import numpy as np

from repro.core.amplitude import AmplitudeProcessor
from repro.core.config import WiMiConfig
from repro.core.feature import MaterialFeatureExtractor, SessionFeatures
from repro.core.subcarrier import SubcarrierSelector
from repro.csi.collector import CaptureSession
from repro.csi.model import CsiTrace
from repro.csi.quality import TraceQualityReport, assess_trace
from repro.dsp.streaming import denoise_window
from repro.engine.artifacts import (
    ClassificationArtifact,
    DenoisedTraceArtifact,
    FeatureArtifact,
    ObservablesArtifact,
    PhaseArtifact,
    StreamWindowArtifact,
    SubcarrierArtifact,
    TraceQualityArtifact,
    array_fingerprint,
    config_fingerprint,
    features_fingerprint,
    make_key,
    session_fingerprint,
    trace_fingerprint,
)
from repro.engine.cache import TIER_COMPUTE, StageCache, StageEvent
from repro.resilience.deadline import check_deadline
from repro.engine.stages import (
    AMPLITUDE_DENOISE,
    CLASSIFY,
    FEATURE_EXTRACTION,
    OBSERVABLES,
    PHASE_CALIBRATION,
    STREAM_WINDOW_DENOISE,
    SUBCARRIER_SELECTION,
    TRACE_QUALITY,
    StageSpec,
    stage_graph,
)

Hook = Callable[[StageEvent], None]


class PipelineEngine:
    """Memoizing executor of the WiMi stage graph.

    Args:
        extractor: Feature extractor (also provides the calibrator and
            amplitude processor used by the upstream stages).
        subcarrier_selector: Eq. 7 good-subcarrier selector.
        config: Pipeline configuration; stage keys embed only each
            stage's declared config fields.
        cache: Artifact store; pass a shared instance to reuse artifacts
            across several engines/facades.
    """

    def __init__(
        self,
        extractor: MaterialFeatureExtractor,
        subcarrier_selector: SubcarrierSelector,
        config: WiMiConfig,
        cache: StageCache | None = None,
    ):
        self.extractor = extractor
        self.subcarrier_selector = subcarrier_selector
        self.config = config
        self.cache = cache if cache is not None else StageCache()
        self._hooks: list[Hook] = []
        self._config_keys: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Hooks + introspection
    # ------------------------------------------------------------------

    def add_hook(self, hook: Hook) -> None:
        """Register a callable fired on every stage resolution."""
        self._hooks.append(hook)

    def remove_hook(self, hook: Hook) -> None:
        """Unregister a hook (no-op if it was never added)."""
        try:
            self._hooks.remove(hook)
        except ValueError:
            pass

    @staticmethod
    def describe() -> dict[str, tuple[str, ...]]:
        """The stage graph as ``{stage: upstream stages}``."""
        return stage_graph()

    # ------------------------------------------------------------------
    # Core resolution machinery
    # ------------------------------------------------------------------

    def _config_key(self, spec: StageSpec) -> str:
        key = self._config_keys.get(spec.name)
        if key is None:
            key = config_fingerprint(self.config, spec.config_fields)
            self._config_keys[spec.name] = key
        return key

    def _resolve(self, spec: StageSpec, key: str, compute: Callable[[], object]):
        def guarded_compute():
            # Deadline checkpoint at the stage boundary: a request whose
            # ambient deadline (repro.resilience.deadline_scope) already
            # lapsed stops here instead of executing the stage.  Cached
            # artifacts still resolve -- serving a hit costs nothing.
            check_deadline(spec.name)
            return compute()

        artifact, tier = self.cache.resolve_tier(spec.name, key, guarded_compute)
        if self._hooks:
            event = StageEvent(
                stage=spec.name,
                key=key,
                cache_hit=tier != TIER_COMPUTE,
                tier=tier,
            )
            for hook in list(self._hooks):
                hook(event)
        return artifact

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def trace_quality(self, trace: CsiTrace) -> TraceQualityArtifact:
        """Degradation measurement of one trace (the quality boundary).

        Pure measurement -- gating decisions (raise/degrade/skip) live in
        the ``WiMi`` facade, so the memoized report can serve any policy.
        """
        key = make_key(
            trace_fingerprint(trace), self._config_key(TRACE_QUALITY)
        )

        def compute() -> TraceQualityArtifact:
            report = assess_trace(trace, self.config.quality_thresholds)
            return TraceQualityArtifact(key=key, report=report)

        return self._resolve(TRACE_QUALITY, key, compute)

    def phase_calibration(
        self, session: CaptureSession, pair: tuple[int, int]
    ) -> PhaseArtifact:
        """Eq. 18 wrapped phase change for one (session, pair)."""
        pair = (int(pair[0]), int(pair[1]))
        key = make_key(
            session_fingerprint(session),
            pair,
            self._config_key(PHASE_CALIBRATION),
        )

        def compute() -> PhaseArtifact:
            theta = self.extractor.phase_observable(session, pair)
            return PhaseArtifact(key=key, pair=pair, theta_wrapped=theta)

        return self._resolve(PHASE_CALIBRATION, key, compute)

    def amplitude_denoise(self, trace: CsiTrace) -> DenoisedTraceArtifact:
        """Denoised amplitude cube of one trace (the hot stage)."""
        key = make_key(
            trace_fingerprint(trace), self._config_key(AMPLITUDE_DENOISE)
        )

        def compute() -> DenoisedTraceArtifact:
            cleaned = self.extractor.amplitude.compute_clean_amplitudes(trace)
            return DenoisedTraceArtifact(key=key, amplitudes=cleaned)

        return self._resolve(AMPLITUDE_DENOISE, key, compute)

    def stream_window_denoise(
        self, rows: np.ndarray, start: int
    ) -> StreamWindowArtifact:
        """Denoised amplitude rows of one streaming window.

        ``rows`` is the raw ``(window, channels)`` |H| slab whose first
        row sits at absolute packet index ``start``.  The key is the
        slab's content hash plus the start index (a partial-input
        artifact: the trace is still growing, so there is no finished
        object to fingerprint) -- replaying the same stream resolves
        every window from cache regardless of how the packets were
        chunked on the way in.
        """
        start = int(start)
        key = make_key(
            array_fingerprint(rows),
            start,
            self._config_key(STREAM_WINDOW_DENOISE),
        )

        def compute() -> StreamWindowArtifact:
            if self.config.denoise_amplitude:
                cleaned = denoise_window(
                    rows, self.extractor.amplitude.denoiser
                )
            else:
                # Fig. 14 ablation: raw amplitudes straight through.
                cleaned = np.asarray(rows, dtype=float).copy()
            return StreamWindowArtifact(
                key=key, start=start, amplitudes=cleaned
            )

        return self._resolve(STREAM_WINDOW_DENOISE, key, compute)

    def observables(
        self, session: CaptureSession, pair: tuple[int, int]
    ) -> ObservablesArtifact:
        """Eq. 18/19 observables for one (session, pair).

        On a miss this pulls the phase artifact and both traces' denoised
        cubes (each itself memoized) and forms the pair's amplitude ratio
        from the cached cubes -- so N antenna pairs cost one denoiser
        pass per trace, not N.
        """
        pair = (int(pair[0]), int(pair[1]))
        key = make_key(
            session_fingerprint(session), pair, self._config_key(OBSERVABLES)
        )

        def compute() -> ObservablesArtifact:
            phase = self.phase_calibration(session, pair)
            base = self.amplitude_denoise(session.baseline).amplitudes
            target = self.amplitude_denoise(session.target).amplitudes
            base_ratio = AmplitudeProcessor.averaged_ratio_from_clean(
                base, pair
            )
            target_ratio = AmplitudeProcessor.averaged_ratio_from_clean(
                target, pair
            )
            neg_log_psi = -np.log(target_ratio / base_ratio)
            return ObservablesArtifact(
                key=key,
                pair=pair,
                theta_wrapped=phase.theta_wrapped,
                neg_log_psi=neg_log_psi,
            )

        return self._resolve(OBSERVABLES, key, compute)

    def select_subcarriers(
        self,
        sessions: Iterable[CaptureSession],
        pair: tuple[int, int],
        count: int,
        exclude: tuple[int, ...] = (),
    ) -> SubcarrierArtifact:
        """Eq. 7 good-subcarrier selection pooled over ``sessions``.

        A single session reproduces the per-session selection exactly
        (pooling over one session is the identity).  ``exclude`` removes
        quality-disqualified subcarriers from the candidate set (it
        changes the output, so it is part of the cache key).
        """
        sessions = list(sessions)
        pair = (int(pair[0]), int(pair[1]))
        exclude = tuple(sorted(int(k) for k in exclude))
        pool = hashlib.blake2b(digest_size=12)
        for session in sessions:
            pool.update(session_fingerprint(session).encode())
        key = make_key(
            pool.hexdigest(),
            len(sessions),
            pair,
            count,
            exclude,
            self._config_key(SUBCARRIER_SELECTION),
        )

        def compute() -> SubcarrierArtifact:
            selected = self.subcarrier_selector.select_pooled(
                sessions, pair, count=count, exclude=exclude
            )
            return SubcarrierArtifact(
                key=key, pair=pair, subcarriers=tuple(int(k) for k in selected)
            )

        return self._resolve(SUBCARRIER_SELECTION, key, compute)

    def extract_feature(
        self,
        session: CaptureSession,
        pair: tuple[int, int],
        subcarriers: tuple[int, ...],
        coarse_pair: tuple[int, int] | None = None,
        true_omega: float | None = None,
        include_coarse_feature: bool = True,
        coarse_fallback: bool = False,
    ) -> FeatureArtifact:
        """Eq. 18-21 feature block for one (session, pair)."""
        pair = (int(pair[0]), int(pair[1]))
        subcarriers = tuple(int(k) for k in subcarriers)
        key = make_key(
            session_fingerprint(session),
            pair,
            subcarriers,
            coarse_pair,
            repr(true_omega),
            int(include_coarse_feature),
            int(coarse_fallback),
            self._config_key(FEATURE_EXTRACTION),
            # Observables config (wavelet etc.) shapes the inputs, so it
            # must shape the key too.
            self._config_key(OBSERVABLES),
        )

        def compute() -> FeatureArtifact:
            obs = self.observables(session, pair)
            coarse_observables = None
            if coarse_pair is not None and tuple(coarse_pair) != pair:
                coarse = self.observables(session, coarse_pair)
                coarse_observables = (
                    coarse.theta_wrapped,
                    coarse.neg_log_psi,
                )
            measurement = self.extractor.measure_from_observables(
                pair,
                list(subcarriers),
                obs.theta_wrapped,
                obs.neg_log_psi,
                coarse_observables=coarse_observables,
                true_omega=true_omega,
                include_coarse_feature=include_coarse_feature,
                material_name=session.material_name,
                coarse_fallback=coarse_fallback,
            )
            return FeatureArtifact(key=key, measurement=measurement)

        return self._resolve(FEATURE_EXTRACTION, key, compute)

    def classify(
        self,
        features: SessionFeatures,
        classifier,
        classifier_token: str,
        envelope: tuple[float, float] | None = None,
    ) -> ClassificationArtifact:
        """Database-aided branch resolution + prediction (+ confidence).

        Args:
            features: The session's extracted feature blocks.
            classifier: A fitted
                :class:`repro.core.database.DatabaseClassifier`.
            classifier_token: Unique token of this *trained* classifier
                instance (a new token per ``fit``), so cached labels can
                never outlive the model that produced them.
            envelope: Physical Omega-bar envelope for branch search.
        """
        key = make_key(
            features_fingerprint(features),
            classifier_token,
            repr(envelope),
            self._config_key(CLASSIFY),
        )

        def compute() -> ClassificationArtifact:
            label = classifier.resolve_branch_and_predict(
                features, max_gamma=self.config.max_gamma, envelope=envelope
            )
            confidence = classifier.confidence(features.vector())
            return ClassificationArtifact(
                key=key, label=str(label), confidence=float(confidence)
            )

        return self._resolve(CLASSIFY, key, compute)
