"""Tiered per-stage memoization with per-tier hit/miss accounting.

:class:`StageCache` is the engine's cache: a memory LRU keyed by
``(stage name, content-hash key)``, optionally backed by a durable disk
tier (any object with ``get(stage, key) -> artifact | None`` and
``put(stage, key, artifact)``, in practice
:class:`repro.persist.ArtifactStore`).  Lookups fall through
memory -> disk -> compute; disk hits are promoted into the memory LRU,
and computed artifacts are written through to both tiers.  Per-stage
statistics distinguish the tiers so ``repro bench-cache`` and the serve
metrics can report memory vs disk vs compute.

The cache still supports sharing across several ``WiMi`` instances
(the experiment runner's classifier sweeps reuse calibration and
denoising artifacts this way -- stage keys embed the stage-relevant
config fields, so sharing is always safe).

Thread-safety contract (the serving worker pool relies on it): all
in-memory bookkeeping -- the LRU dict, per-stage counters, snapshots
and invalidation -- is guarded by one lock, so any number of threads
may share a cache.  Disk I/O and ``compute`` deliberately run *outside*
the lock; two threads missing the same key concurrently may both
compute it (the artifacts are content-addressed, so the duplicate is
identical and the last store wins), but no thread ever observes a torn
entry or inconsistent counters.  The disk tier guarantees its own
atomicity (tmp + rename), which additionally makes the combination
safe across *processes*.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

#: A cache miss sentinel distinct from any artifact.
_MISSING = object()

#: Tier labels carried by :class:`StageEvent` and the stats snapshot.
TIER_MEMORY = "memory"
TIER_DISK = "disk"
TIER_COMPUTE = "compute"


@dataclass
class StageStats:
    """Per-tier hit/miss counters of one stage.

    ``hits`` (all tiers combined) is kept as a property so existing
    consumers -- tests, ``bench-cache`` renderers, perf baselines --
    keep reading the same number they always did.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        """Cache hits across every tier (memory + disk)."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total cache lookups for the stage."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class StageEvent:
    """One stage resolution, delivered to engine hooks.

    Attributes:
        stage: Stage name (see :mod:`repro.engine.stages`).
        key: Content-hash cache key of the artifact.
        cache_hit: True when the artifact came from any cache tier;
            False when the stage actually executed.
        tier: Which tier satisfied the resolution -- ``"memory"``,
            ``"disk"`` or ``"compute"``.  Defaults from ``cache_hit``
            (hit -> memory) so pre-tier call sites and tests that build
            events by hand stay valid.
    """

    stage: str
    key: str
    cache_hit: bool
    tier: str = ""

    def __post_init__(self):
        if not self.tier:
            object.__setattr__(
                self, "tier", TIER_MEMORY if self.cache_hit else TIER_COMPUTE
            )


class StageCache:
    """Tiered artifact cache keyed by ``(stage, key)`` with per-tier stats.

    Args:
        max_entries: Memory entries kept before least-recently-used
            eviction.  The artifacts are small (per-subcarrier vectors,
            one denoised cube per trace), so a few thousand entries
            cover realistic experiment sweeps.
        disk_store: Optional durable tier consulted on memory misses
            and written through on computes.  Must expose
            ``get(stage, key)`` returning an artifact or None and
            ``put(stage, key, artifact)``; read failures must surface
            as None (a miss), never an exception.
    """

    def __init__(self, max_entries: int = 4096, disk_store: Any = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.disk_store = disk_store
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._stats: dict[str, StageStats] = {}

    # ------------------------------------------------------------------

    def lookup_tier(self, stage: str, key: str) -> tuple[Any, str]:
        """``(artifact, tier)`` where tier is memory/disk/compute.

        ``"compute"`` means a full miss (artifact is None).  Records the
        outcome in the stage's per-tier statistics.  The disk read runs
        outside the lock.
        """
        with self._lock:
            stats = self._stats.setdefault(stage, StageStats())
            value = self._entries.get((stage, key), _MISSING)
            if value is not _MISSING:
                stats.memory_hits += 1
                self._entries.move_to_end((stage, key))
                return value, TIER_MEMORY
        if self.disk_store is not None:
            artifact = self.disk_store.get(stage, key)
            if artifact is not None:
                # Promote into memory so repeat lookups stay O(1).
                self._store_memory(stage, key, artifact)
                with self._lock:
                    stats.disk_hits += 1
                return artifact, TIER_DISK
        with self._lock:
            stats.misses += 1
        return None, TIER_COMPUTE

    def lookup(self, stage: str, key: str) -> tuple[Any, bool]:
        """``(artifact, True)`` on any-tier hit, ``(None, False)`` on a miss."""
        artifact, tier = self.lookup_tier(stage, key)
        return artifact, tier != TIER_COMPUTE

    def _store_memory(self, stage: str, key: str, artifact: Any) -> None:
        with self._lock:
            self._entries[(stage, key)] = artifact
            self._entries.move_to_end((stage, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def store(self, stage: str, key: str, artifact: Any) -> None:
        """Insert into both tiers (memory LRU may evict; disk persists)."""
        self._store_memory(stage, key, artifact)
        if self.disk_store is not None:
            self.disk_store.put(stage, key, artifact)

    def resolve_tier(
        self, stage: str, key: str, compute: Callable[[], Any]
    ) -> tuple[Any, str]:
        """Memoized computation: ``(artifact, tier)``.

        ``compute`` runs outside the cache lock; see the module
        docstring for the concurrent-miss semantics.
        """
        artifact, tier = self.lookup_tier(stage, key)
        if tier != TIER_COMPUTE:
            return artifact, tier
        artifact = compute()
        self.store(stage, key, artifact)
        return artifact, TIER_COMPUTE

    def resolve(
        self, stage: str, key: str, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Memoized computation: ``(artifact, cache_hit)``."""
        artifact, tier = self.resolve_tier(stage, key, compute)
        return artifact, tier != TIER_COMPUTE

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, stage_key: tuple[str, str]) -> bool:
        with self._lock:
            return stage_key in self._entries

    @property
    def stats(self) -> dict[str, StageStats]:
        """Per-stage per-tier counters (live view)."""
        return self._stats

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict statistics, ready for printing/serialisation."""
        with self._lock:
            return {
                stage: {
                    "hits": s.hits,
                    "memory_hits": s.memory_hits,
                    "disk_hits": s.disk_hits,
                    "misses": s.misses,
                    "hit_rate": s.hit_rate,
                }
                for stage, s in sorted(self._stats.items())
            }

    def clear(self) -> None:
        """Drop all memory artifacts and statistics (disk is untouched)."""
        with self._lock:
            self._entries.clear()
            self._stats.clear()

    def invalidate_stage(self, stage: str) -> int:
        """Drop one stage's memory artifacts; returns how many were dropped.

        The disk tier is content-addressed and never invalidated here:
        a changed config or trace changes the key, so stale entries can
        only be *unreferenced*, not wrong (``repro store --gc`` prunes
        corrupt files).
        """
        with self._lock:
            doomed = [k for k in self._entries if k[0] == stage]
            for k in doomed:
                del self._entries[k]
            return len(doomed)


@dataclass
class StageCounter:
    """Engine hook counting stage executions and cache hits per tier.

    Register with :meth:`repro.engine.graph.PipelineEngine.add_hook`;
    the perf benchmarks use it to assert that repeated extraction does
    not re-run the denoiser, and the warm-start tests use it to assert
    a fresh process serves entirely from the disk tier::

        counter = StageCounter()
        wimi.engine.add_hook(counter)
        wimi.extract(session)
        assert counter.executions.get("amplitude_denoise", 0) <= 2

    ``hits`` counts cache hits from *any* tier (preserving the pre-tier
    meaning); ``disk_hits`` additionally breaks out the durable tier.
    """

    executions: dict[str, int] = field(default_factory=dict)
    hits: dict[str, int] = field(default_factory=dict)
    disk_hits: dict[str, int] = field(default_factory=dict)

    def __call__(self, event: StageEvent) -> None:
        bucket = self.hits if event.cache_hit else self.executions
        bucket[event.stage] = bucket.get(event.stage, 0) + 1
        if event.tier == TIER_DISK:
            self.disk_hits[event.stage] = (
                self.disk_hits.get(event.stage, 0) + 1
            )

    def total(self, stage: str) -> int:
        """Executions + hits observed for one stage."""
        return self.executions.get(stage, 0) + self.hits.get(stage, 0)

    def reset(self) -> None:
        """Zero all counters."""
        self.executions.clear()
        self.hits.clear()
        self.disk_hits.clear()
