"""Per-stage memoization with hit/miss accounting.

:class:`StageCache` is the engine's only cache: an LRU keyed by
``(stage name, content-hash key)``.  It keeps per-stage statistics so the
``repro bench-cache`` command and the perf benchmarks can report hit
rates, and it supports sharing one cache across several ``WiMi``
instances (the experiment runner's classifier sweeps reuse calibration
and denoising artifacts this way -- stage keys embed the stage-relevant
config fields, so sharing is always safe).

Thread-safety contract (the serving worker pool relies on it): all
bookkeeping -- the LRU dict, per-stage counters, snapshots and
invalidation -- is guarded by one lock, so any number of threads may
share a cache.  :meth:`StageCache.resolve` deliberately runs ``compute``
*outside* the lock; two threads missing the same key concurrently may
both compute it (the artifacts are content-addressed, so the duplicate
is identical and the last store wins), but no thread ever observes a
torn entry or inconsistent counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

#: A cache miss sentinel distinct from any artifact.
_MISSING = object()


@dataclass
class StageStats:
    """Hit/miss counters of one stage."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total cache lookups for the stage."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class StageEvent:
    """One stage resolution, delivered to engine hooks.

    Attributes:
        stage: Stage name (see :mod:`repro.engine.stages`).
        key: Content-hash cache key of the artifact.
        cache_hit: True when the artifact came from the cache; False when
            the stage actually executed.
    """

    stage: str
    key: str
    cache_hit: bool


class StageCache:
    """LRU artifact store keyed by ``(stage, key)`` with per-stage stats.

    Args:
        max_entries: Entries kept before least-recently-used eviction.
            The artifacts are small (per-subcarrier vectors, one denoised
            cube per trace), so a few thousand entries cover realistic
            experiment sweeps.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._stats: dict[str, StageStats] = {}

    # ------------------------------------------------------------------

    def lookup(self, stage: str, key: str) -> tuple[Any, bool]:
        """``(artifact, True)`` on a hit, ``(None, False)`` on a miss.

        Records the outcome in the stage's statistics.
        """
        with self._lock:
            stats = self._stats.setdefault(stage, StageStats())
            value = self._entries.get((stage, key), _MISSING)
            if value is _MISSING:
                stats.misses += 1
                return None, False
            stats.hits += 1
            self._entries.move_to_end((stage, key))
            return value, True

    def store(self, stage: str, key: str, artifact: Any) -> None:
        """Insert an artifact, evicting the LRU entry when full."""
        with self._lock:
            self._entries[(stage, key)] = artifact
            self._entries.move_to_end((stage, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def resolve(
        self, stage: str, key: str, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Memoized computation: ``(artifact, cache_hit)``.

        ``compute`` runs outside the cache lock; see the module
        docstring for the concurrent-miss semantics.
        """
        artifact, hit = self.lookup(stage, key)
        if hit:
            return artifact, True
        artifact = compute()
        self.store(stage, key, artifact)
        return artifact, False

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, stage_key: tuple[str, str]) -> bool:
        with self._lock:
            return stage_key in self._entries

    @property
    def stats(self) -> dict[str, StageStats]:
        """Per-stage hit/miss counters (live view)."""
        return self._stats

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict statistics, ready for printing/serialisation."""
        with self._lock:
            return {
                stage: {
                    "hits": s.hits,
                    "misses": s.misses,
                    "hit_rate": s.hit_rate,
                }
                for stage, s in sorted(self._stats.items())
            }

    def clear(self) -> None:
        """Drop all artifacts and statistics."""
        with self._lock:
            self._entries.clear()
            self._stats.clear()

    def invalidate_stage(self, stage: str) -> int:
        """Drop all artifacts of one stage; returns how many were dropped."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == stage]
            for k in doomed:
                del self._entries[k]
            return len(doomed)


@dataclass
class StageCounter:
    """Engine hook counting stage executions and cache hits.

    Register with :meth:`repro.engine.graph.PipelineEngine.add_hook`;
    the perf benchmarks use it to assert that repeated extraction does
    not re-run the denoiser::

        counter = StageCounter()
        wimi.engine.add_hook(counter)
        wimi.extract(session)
        assert counter.executions.get("amplitude_denoise", 0) <= 2
    """

    executions: dict[str, int] = field(default_factory=dict)
    hits: dict[str, int] = field(default_factory=dict)

    def __call__(self, event: StageEvent) -> None:
        bucket = self.hits if event.cache_hit else self.executions
        bucket[event.stage] = bucket.get(event.stage, 0) + 1

    def total(self, stage: str) -> int:
        """Executions + hits observed for one stage."""
        return self.executions.get(stage, 0) + self.hits.get(stage, 0)

    def reset(self) -> None:
        """Zero all counters."""
        self.executions.clear()
        self.hits.clear()
