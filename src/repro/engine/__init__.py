"""Stage-graph pipeline engine.

The WiMi chain (phase calibration -> good-subcarrier selection ->
amplitude denoising -> Omega-bar extraction -> classification, paper
Fig. 5) is executed here as an explicit stage graph:

* :mod:`repro.engine.stages` declares each stage, its upstream inputs
  and the config fields its output depends on;
* :mod:`repro.engine.artifacts` defines the typed, frozen artifacts the
  stages exchange and the content-hash keying that identifies them;
* :mod:`repro.engine.cache` memoizes artifacts per (stage, key) with
  per-stage hit/miss statistics;
* :mod:`repro.engine.graph` runs it all, firing
  :class:`~repro.engine.cache.StageEvent` hooks on every resolution.

:class:`repro.core.pipeline.WiMi` is a thin facade over this engine;
experiments that sweep configurations share one
:class:`~repro.engine.cache.StageCache` so unchanged upstream stages are
never recomputed.
"""

from repro.engine.artifacts import (
    Artifact,
    ClassificationArtifact,
    DenoisedTraceArtifact,
    FeatureArtifact,
    ObservablesArtifact,
    PhaseArtifact,
    StreamWindowArtifact,
    SubcarrierArtifact,
    array_fingerprint,
    config_fingerprint,
    features_fingerprint,
    session_fingerprint,
    trace_fingerprint,
)
from repro.engine.cache import (
    TIER_COMPUTE,
    TIER_DISK,
    TIER_MEMORY,
    StageCache,
    StageCounter,
    StageEvent,
    StageStats,
)
from repro.engine.graph import PipelineEngine
from repro.engine.stages import (
    ALL_STAGES,
    AMPLITUDE_DENOISE,
    CLASSIFY,
    FEATURE_EXTRACTION,
    OBSERVABLES,
    PHASE_CALIBRATION,
    STREAM_WINDOW_DENOISE,
    SUBCARRIER_SELECTION,
    StageSpec,
    stage_graph,
)

__all__ = [
    "ALL_STAGES",
    "AMPLITUDE_DENOISE",
    "Artifact",
    "CLASSIFY",
    "ClassificationArtifact",
    "DenoisedTraceArtifact",
    "FEATURE_EXTRACTION",
    "FeatureArtifact",
    "OBSERVABLES",
    "ObservablesArtifact",
    "PHASE_CALIBRATION",
    "PhaseArtifact",
    "PipelineEngine",
    "STREAM_WINDOW_DENOISE",
    "SUBCARRIER_SELECTION",
    "StageCache",
    "StageCounter",
    "StageEvent",
    "StageSpec",
    "StageStats",
    "StreamWindowArtifact",
    "SubcarrierArtifact",
    "TIER_COMPUTE",
    "TIER_DISK",
    "TIER_MEMORY",
    "array_fingerprint",
    "config_fingerprint",
    "features_fingerprint",
    "session_fingerprint",
    "stage_graph",
    "trace_fingerprint",
]
