"""Typed stage artifacts and content-hash keying.

Every stage of the pipeline engine consumes and produces *artifacts*:
small frozen dataclasses that carry the stage output plus the cache key it
was computed under.  Keys are content hashes -- a session is identified by
the bytes of its CSI matrices, a config by the values of the stage's
declared fields -- so two ``WiMi`` instances (or two calls years apart in
one process) that see the same data and the same relevant knobs share the
same artifacts, while any change to either produces a fresh key.

The hashing contract mirrors the repo-wide assumption that CSI traces are
immutable after capture: a trace's fingerprint is computed once and pinned
on the object.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.feature import FeatureMeasurement
from repro.csi.quality import TraceQualityReport

#: Attribute used to pin a computed fingerprint on traces/sessions.
_FINGERPRINT_ATTR = "_engine_fingerprint"


def _hash_array(h: "hashlib._Hash", array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    h.update(str(array.shape).encode())
    h.update(str(array.dtype).encode())
    h.update(array.tobytes())


def trace_fingerprint(trace) -> str:
    """Content hash of one :class:`repro.csi.model.CsiTrace`.

    Hashes the dense complex matrix, so two traces with identical CSI get
    the same fingerprint regardless of labels or timestamps.  The result
    is pinned on the trace (traces are de-facto immutable after capture),
    so repeated calls are O(1).
    """
    cached = getattr(trace, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    _hash_array(h, trace.matrix())
    fingerprint = h.hexdigest()
    try:
        object.__setattr__(trace, _FINGERPRINT_ATTR, fingerprint)
    except (AttributeError, TypeError):
        pass  # exotic trace type without a __dict__; recompute next time
    return fingerprint


def session_fingerprint(session) -> str:
    """Content hash of a paired capture session (baseline + target)."""
    cached = getattr(session, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    h.update(trace_fingerprint(session.baseline).encode())
    h.update(trace_fingerprint(session.target).encode())
    fingerprint = h.hexdigest()
    try:
        object.__setattr__(session, _FINGERPRINT_ATTR, fingerprint)
    except (AttributeError, TypeError):
        pass
    return fingerprint


def config_fingerprint(config, fields: tuple[str, ...]) -> str:
    """Stable hash of the stage-relevant subset of a config.

    Only the named fields enter the key, so e.g. changing the classifier
    does not invalidate cached denoising artifacts.
    """
    if not fields:
        return "-"
    h = hashlib.blake2b(digest_size=8)
    for name in fields:
        h.update(name.encode())
        h.update(repr(getattr(config, name)).encode())
    return h.hexdigest()


def features_fingerprint(features) -> str:
    """Content hash of a :class:`repro.core.feature.SessionFeatures`.

    Includes the per-subcarrier observables (not just the final vector)
    because identify-time branch resolution re-derives alternative-gamma
    vectors from them.
    """
    h = hashlib.blake2b(digest_size=16)
    for m in features.measurements:
        _hash_array(h, np.asarray(m.omegas, dtype=float))
        h.update(str(m.pair).encode())
        h.update(str(m.gamma).encode())
        h.update(str(tuple(m.subcarriers)).encode())
        h.update(repr(float(m.omega_coarse)).encode())
        h.update(b"1" if m.include_coarse else b"0")
        if m.theta_aligned is not None:
            _hash_array(h, np.asarray(m.theta_aligned, dtype=float))
        if m.neg_log_psi is not None:
            _hash_array(h, np.asarray(m.neg_log_psi, dtype=float))
    return h.hexdigest()


def array_fingerprint(array: np.ndarray) -> str:
    """Content hash of a bare array (shape + dtype + bytes).

    Used by partial-input stages (streaming windows) whose inputs are
    slabs of a still-growing trace rather than finished objects a
    fingerprint could be pinned on.
    """
    h = hashlib.blake2b(digest_size=16)
    _hash_array(h, np.asarray(array))
    return h.hexdigest()


def make_key(*parts) -> str:
    """Join key parts into one cache key string."""
    return "|".join(str(p) for p in parts)


def _freeze(array: np.ndarray) -> np.ndarray:
    """Read-only view so cached artifacts cannot be mutated downstream."""
    array = np.asarray(array)
    array.setflags(write=False)
    return array


# ----------------------------------------------------------------------
# Artifact types (one per stage output)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Artifact:
    """Base: every artifact remembers the cache key it lives under."""

    key: str


@dataclass(frozen=True)
class TraceQualityArtifact(Artifact):
    """Output of ``trace_quality``: degradation measurement of one trace."""

    report: TraceQualityReport


@dataclass(frozen=True)
class PhaseArtifact(Artifact):
    """Output of ``phase_calibration``: Eq. 18 wrapped phase change.

    Attributes:
        pair: Antenna pair the phases were differenced over.
        theta_wrapped: Per-subcarrier wrapped ``Delta-Theta`` (paper sign
            convention), shape ``(K,)``.
    """

    pair: tuple[int, int]
    theta_wrapped: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "theta_wrapped", _freeze(self.theta_wrapped))


@dataclass(frozen=True)
class DenoisedTraceArtifact(Artifact):
    """Output of ``amplitude_denoise``: cleaned ``|H|`` for one trace.

    Attributes:
        amplitudes: Denoised amplitude cube, shape ``(M, K, A)``.
    """

    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "amplitudes", _freeze(self.amplitudes))


@dataclass(frozen=True)
class StreamWindowArtifact(Artifact):
    """Output of ``stream_window_denoise``: cleaned rows of one window.

    Attributes:
        start: Absolute packet index of the window's first row.
        amplitudes: Denoised ``(window, channels)`` rows; NaN where a
            channel column was dead for the whole window.
    """

    start: int
    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "amplitudes", _freeze(self.amplitudes))


@dataclass(frozen=True)
class ObservablesArtifact(Artifact):
    """Combined per-pair observables feeding feature extraction.

    Attributes:
        pair: Antenna pair.
        theta_wrapped: Eq. 18 wrapped phase change, shape ``(K,)``.
        neg_log_psi: Eq. 19 ``-ln DeltaPsi``, shape ``(K,)``.
    """

    pair: tuple[int, int]
    theta_wrapped: np.ndarray
    neg_log_psi: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "theta_wrapped", _freeze(self.theta_wrapped))
        object.__setattr__(self, "neg_log_psi", _freeze(self.neg_log_psi))


@dataclass(frozen=True)
class SubcarrierArtifact(Artifact):
    """Output of ``subcarrier_selection``: the good subcarriers.

    Attributes:
        pair: Antenna pair the Eq. 7 variances were computed over.
        subcarriers: Selected 0-based report positions, ascending.
    """

    pair: tuple[int, int]
    subcarriers: tuple[int, ...]


@dataclass(frozen=True)
class FeatureArtifact(Artifact):
    """Output of ``feature_extraction``: one Omega-bar feature block."""

    measurement: FeatureMeasurement


@dataclass(frozen=True)
class ClassificationArtifact(Artifact):
    """Output of ``classify``: the identified material.

    Attributes:
        label: Predicted material name.
        confidence: ``1 - d_nearest / d_second`` over the scaled database
            centroids (NaN if unavailable).
    """

    label: str
    confidence: float = float("nan")

    @property
    def has_confidence(self) -> bool:
        """Whether a confidence score was computed."""
        return math.isfinite(self.confidence)
