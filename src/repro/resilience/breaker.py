"""Per-dependency circuit breaker (closed -> open -> half-open).

The orchestrator keeps one breaker per shard: consecutive worker
failures (crashes, stale heartbeats) trip the breaker open, new keys
divert to ring neighbors while it is open, and after a cool-down the
breaker admits trial traffic (half-open).  A successful reply closes
it; another failure re-opens it.

A restarted worker does *not* auto-close its breaker -- a process that
boots and immediately crashes again on a poison workload would flap
forever.  Only evidence of successful service (a reply) closes the
circuit, which is exactly what the half-open trial produces.

All transitions happen lazily inside the lock on ``allow()`` /
``record_*()``; there is no background timer.  The clock is injectable
for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open recovery.

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        open_duration_s: Cool-down before half-open trials are allowed.
        half_open_trials: Number of trial admissions granted per
            half-open episode before further traffic is refused.
        clock: Monotonic time source (injectable for tests).
        on_transition: Optional ``callback(old_state, new_state)`` fired
            inside the lock on every state change -- keep it cheap
            (metrics increments).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        open_duration_s: float = 5.0,
        half_open_trials: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if open_duration_s < 0:
            raise ValueError(
                f"open_duration_s must be >= 0, got {open_duration_s}"
            )
        if half_open_trials < 1:
            raise ValueError(
                f"half_open_trials must be >= 1, got {half_open_trials}"
            )
        self.failure_threshold = failure_threshold
        self.open_duration_s = open_duration_s
        self.half_open_trials = half_open_trials
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trials_left = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    def _refresh(self) -> None:
        """Apply the timed open -> half-open transition (lock held)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.open_duration_s
        ):
            self._trials_left = self.half_open_trials
            self._transition(HALF_OPEN)

    @property
    def state(self) -> str:
        with self._lock:
            self._refresh()
            return self._state

    # ------------------------------------------------------------------
    # Admission + evidence
    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """Whether new work may be routed to the guarded dependency.

        In half-open state each ``allow()`` consumes one trial slot, so
        a single straggler probe -- not a thundering herd -- tests the
        recovering dependency.
        """
        with self._lock:
            self._refresh()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._trials_left > 0:
                self._trials_left -= 1
                return True
            return False

    def record_success(self) -> None:
        """Evidence of successful service: closes the circuit."""
        with self._lock:
            self._refresh()
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """Evidence of failure: trips or re-trips the circuit."""
        with self._lock:
            self._refresh()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def snapshot(self) -> dict:
        """Point-in-time view for metrics/debug output."""
        with self._lock:
            self._refresh()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
            }
