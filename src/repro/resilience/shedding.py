"""Adaptive load shedding at admission edges.

The shedder turns two live signals into a single *pressure* reading in
``[0, inf)``:

* queue depth relative to capacity (instantaneous backlog), and
* a latency EWMA relative to a target (sustained slowness that a short
  queue can hide -- e.g. throttled or cache-cold workers).

Admission compares pressure against a per-priority threshold: low
priority work sheds first (``base - step`` at priority -1), normal
work at ``base``, and high-priority work only near saturation.  Shed
requests get a typed ``OverloadError`` immediately instead of sitting
in the queue until their deadline lapses -- failing fast is the whole
point: the caller learns *overload* (retryable elsewhere/later), not
*timeout* (ambiguous).
"""

from __future__ import annotations

import threading


class LoadShedder:
    """Queue-depth + latency-EWMA admission controller.

    Args:
        capacity: Queue capacity the depth signal is normalized by.
        latency_threshold_ms: Latency EWMA mapping to pressure 1.0;
            ``None`` disables the latency signal (depth-only shedding).
        ewma_alpha: Smoothing factor for the latency EWMA.
        base_pressure: Pressure above which priority-0 work sheds.
        priority_step: Threshold shift per priority unit -- priority +1
            sheds ``step`` later, priority -1 ``step`` earlier.
        floor_pressure: Lower bound on any shed threshold, so deeply
            negative priorities still get service on an idle system.
    """

    def __init__(
        self,
        capacity: int,
        latency_threshold_ms: float | None = None,
        ewma_alpha: float = 0.2,
        base_pressure: float = 1.0,
        priority_step: float = 0.15,
        floor_pressure: float = 0.25,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if latency_threshold_ms is not None and latency_threshold_ms <= 0:
            raise ValueError(
                "latency_threshold_ms must be > 0 or None, "
                f"got {latency_threshold_ms}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if not 0.0 < base_pressure:
            raise ValueError(
                f"base_pressure must be > 0, got {base_pressure}"
            )
        if priority_step < 0:
            raise ValueError(
                f"priority_step must be >= 0, got {priority_step}"
            )
        self.capacity = capacity
        self.latency_threshold_ms = latency_threshold_ms
        self.ewma_alpha = ewma_alpha
        self.base_pressure = base_pressure
        self.priority_step = priority_step
        self.floor_pressure = floor_pressure
        self._lock = threading.Lock()
        self._ewma_ms: float | None = None

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def observe_latency(self, latency_ms: float) -> None:
        """Feed one completed-request latency into the EWMA."""
        if latency_ms < 0:
            return
        with self._lock:
            if self._ewma_ms is None:
                self._ewma_ms = latency_ms
            else:
                self._ewma_ms += self.ewma_alpha * (latency_ms - self._ewma_ms)

    @property
    def ewma_ms(self) -> float | None:
        with self._lock:
            return self._ewma_ms

    def pressure(self, depth: int) -> float:
        """Combined pressure: max of the depth and latency signals."""
        depth_pressure = max(0, depth) / self.capacity
        if self.latency_threshold_ms is None:
            return depth_pressure
        with self._lock:
            ewma = self._ewma_ms
        if ewma is None:
            return depth_pressure
        return max(depth_pressure, ewma / self.latency_threshold_ms)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def threshold(self, priority: int = 0) -> float:
        """Shed threshold for ``priority`` (higher priority sheds later)."""
        return max(
            self.floor_pressure,
            self.base_pressure + priority * self.priority_step,
        )

    def admit(self, depth: int, priority: int = 0) -> bool:
        """Whether a request at ``priority`` should be admitted now.

        A threshold at or above 1.0 disables the *depth* signal for
        that priority: depth saturation already has its own typed
        rejection (queue-full) at the bounded queue itself, so only the
        latency EWMA -- which can exceed 1.0 without bound -- sheds
        there.  Thresholds below 1.0 shed on either signal, before the
        queue hard-fills.
        """
        threshold = self.threshold(priority)
        if threshold >= 1.0:
            return self._latency_pressure() < threshold
        return self.pressure(depth) < threshold

    def _latency_pressure(self) -> float:
        """The latency signal alone (0.0 while unconfigured/unfed)."""
        if self.latency_threshold_ms is None:
            return 0.0
        with self._lock:
            ewma = self._ewma_ms
        if ewma is None:
            return 0.0
        return ewma / self.latency_threshold_ms

    def snapshot(self) -> dict:
        """Point-in-time view for metrics/debug output."""
        with self._lock:
            ewma = self._ewma_ms
        return {
            "ewma_ms": ewma,
            "base_pressure": self.base_pressure,
            "capacity": self.capacity,
        }
