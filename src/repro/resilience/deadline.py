"""End-to-end deadline propagation.

A :class:`Deadline` is an absolute expiry instant on an injectable
clock.  In-process code uses the monotonic clock; cross-process
envelopes carry wall-clock expiries (``time.time``) because monotonic
clocks are not comparable across processes -- the same discipline the
cluster layer already follows.

The active deadline travels via a :mod:`contextvars` scope rather than
as a parameter threaded through every pipeline signature: the engine's
stage resolver calls :func:`check_deadline` before *executing* a stage
(cached artifacts still flow -- serving a hit costs nothing), so a
request that expired while queued stops burning CPU at the next stage
boundary instead of running the whole graph to completion.

Drop points increment a ``deadline.expired_<point>`` counter so the
soak harness can prove each check fires: ``admission`` (rejected at
submit), ``dequeue`` (expired while queued), ``stage`` (expired between
pipeline stages), ``retry`` (expired between retry attempts).
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Callable, Iterator


class DeadlineExpiredError(Exception):
    """Raised at a deadline checkpoint once the budget is exhausted."""


class Deadline:
    """Absolute expiry instant on an explicit clock.

    Args:
        at: Expiry instant in the clock's own epoch.
        clock: Zero-arg callable returning "now"; defaults to
            :func:`time.monotonic` for in-process use.
    """

    __slots__ = ("at", "clock")

    def __init__(self, at: float, clock: Callable[[], float] = time.monotonic):
        self.at = float(at)
        self.clock = clock

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Deadline ``seconds`` from now on ``clock``."""
        return cls(clock() + seconds, clock)

    @classmethod
    def at_wall(cls, timestamp: float) -> "Deadline":
        """Deadline at an absolute wall-clock instant (``time.time``)."""
        return cls(timestamp, time.time)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.at - self.clock()

    def expired(self) -> bool:
        return self.clock() >= self.at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.4f}s)"


#: The ambient deadline for the work currently executing on this thread
#: (contextvars give each thread -- and each asyncio task, should one
#: appear -- an independent slot).
_CURRENT: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_resilience_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline governing the current context, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install ``deadline`` as the ambient deadline for the block.

    ``None`` is accepted and clears any outer scope, so batch paths can
    pass through "no deadline" without branching at every call site.
    """
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)


def check_deadline(point: str = "") -> None:
    """Raise :class:`DeadlineExpiredError` if the ambient deadline passed."""
    deadline = _CURRENT.get()
    if deadline is not None and deadline.expired():
        where = f" at {point}" if point else ""
        raise DeadlineExpiredError(
            f"deadline expired{where} "
            f"({-deadline.remaining():.4f}s past expiry)"
        )
