"""Composable retry policy: exponential backoff with full jitter.

One policy object replaces the hard-coded ``base * 2**attempt`` loops
scattered through the serving and cluster layers.  The jitter model is
"full jitter" (AWS architecture-blog style): each delay is drawn
uniformly from ``[0, min(base * factor**attempt, cap)]``, which
decorrelates retry storms -- a crashing shard's salvaged envelopes must
not land on its replacement in one synchronized wave.

The RNG is injectable so tests can pin delays deterministically.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator


class Backoff:
    """Exponential backoff schedule with optional full jitter.

    Args:
        base_s: Delay ceiling for the first retry (attempt 0).
        factor: Multiplier applied per subsequent attempt.
        max_s: Hard cap on any single delay.
        jitter: ``True`` draws each delay uniformly from ``[0, ceiling]``;
            ``False`` returns the deterministic ceiling (useful in tests
            and when callers layer their own jitter).
        rng: Source of ``uniform(a, b)``; defaults to a private
            :class:`random.Random` so seeding the global RNG elsewhere
            cannot couple retry timing to experiment reproducibility.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        factor: float = 2.0,
        max_s: float = 2.0,
        jitter: bool = True,
        rng: random.Random | None = None,
    ):
        if base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {base_s}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if max_s < 0:
            raise ValueError(f"max_s must be >= 0, got {max_s}")
        self.base_s = base_s
        self.factor = factor
        self.max_s = max_s
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()

    def ceiling(self, attempt: int) -> float:
        """Upper bound of the delay for ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.base_s * (self.factor ** attempt), self.max_s)

    def delay(self, attempt: int) -> float:
        """Concrete delay for ``attempt``; jittered when enabled."""
        ceiling = self.ceiling(attempt)
        if not self.jitter or ceiling == 0.0:
            return ceiling
        return self._rng.uniform(0.0, ceiling)


class RetryPolicy:
    """Budget-capped retries with a pluggable retryability classifier.

    Args:
        budget: Maximum number of *retries* (attempts beyond the first).
        backoff: Delay schedule; a default :class:`Backoff` if omitted.
        retryable: Predicate deciding whether an exception is worth
            another attempt.  Defaults to retrying everything -- callers
            with poison-pill error types (e.g. ``CorruptTraceError``)
            pass a classifier that excludes them.
    """

    def __init__(
        self,
        budget: int = 1,
        backoff: Backoff | None = None,
        retryable: Callable[[BaseException], bool] | None = None,
    ):
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.budget = budget
        self.backoff = backoff if backoff is not None else Backoff()
        self._retryable = retryable

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` merits another attempt under this policy."""
        if self._retryable is None:
            return True
        return bool(self._retryable(error))

    def delays(self) -> Iterator[float]:
        """Concrete delay per retry, one entry per unit of budget."""
        for attempt in range(self.budget):
            yield self.backoff.delay(attempt)

    def sleep(
        self,
        attempt: int,
        sleep: Callable[[float], None] = time.sleep,
    ) -> float:
        """Sleep the (jittered) delay for ``attempt``; returns the delay."""
        delay = self.backoff.delay(attempt)
        if delay > 0:
            sleep(delay)
        return delay
