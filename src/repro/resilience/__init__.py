"""Unified failure-control plane shared by serve, cluster and persist.

Dependency-free building blocks (no imports from other ``repro``
subpackages) so every layer -- thread pool, process cluster, disk store
-- composes the same retry/deadline/breaker/shed policies instead of
growing ad-hoc per-layer knobs:

* :class:`Backoff` / :class:`RetryPolicy` -- exponential + full-jitter
  delays, budget-capped, pluggable retryability.
* :class:`Deadline` / :func:`deadline_scope` / :func:`check_deadline`
  -- end-to-end deadline propagation with per-drop-point accounting.
* :class:`CircuitBreaker` -- closed/open/half-open per-dependency
  admission.
* :class:`LoadShedder` -- queue-depth + latency-EWMA adaptive
  admission, priority-aware.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    DeadlineExpiredError,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.retry import Backoff, RetryPolicy
from repro.resilience.shedding import LoadShedder

__all__ = [
    "Backoff",
    "CircuitBreaker",
    "CLOSED",
    "Deadline",
    "DeadlineExpiredError",
    "HALF_OPEN",
    "LoadShedder",
    "OPEN",
    "RetryPolicy",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]
