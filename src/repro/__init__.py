"""WiMi reproduction: material identification with commodity Wi-Fi CSI.

Full reimplementation of *"WiMi: Target Material Identification with
Commodity Wi-Fi Devices"* (ICDCS 2019), including a physics-based CSI
capture simulator standing in for the Intel 5300 testbed.

Quickstart::

    from repro import (
        WiMi, WiMiConfig, default_catalog, make_environment,
        LinkGeometry, CylinderTarget, SimulationScene, DataCollector,
        theory_reference_omegas,
    )

    catalog = default_catalog()
    scene = SimulationScene(
        geometry=LinkGeometry(distance=2.0),
        environment=make_environment("lab"),
        target=CylinderTarget(lateral_offset=0.011),
    )
    collector = DataCollector(scene, rng=0)
    liquids = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]

    sessions = [
        collector.collect(m) for m in liquids for _ in range(10)
    ]
    wimi = WiMi(theory_reference_omegas(liquids))
    wimi.fit(sessions)
    print(wimi.identify(collector.collect(catalog.get("pepsi"))))
"""

from repro.channel import (
    AIR,
    AntennaArray,
    CylinderTarget,
    Environment,
    LinkGeometry,
    Material,
    MaterialCatalog,
    default_catalog,
    make_environment,
)
from repro.channel.propagation import (
    material_feature_theory,
    propagation_constants,
)
from repro.core import (
    AmplitudeProcessor,
    AntennaPairSelector,
    FeatureMeasurement,
    MaterialDatabase,
    MaterialFeatureExtractor,
    PhaseCalibrator,
    SubcarrierSelector,
    WiMi,
    WiMiConfig,
)
from repro.core.feature import resolve_gamma, theory_reference_omegas
from repro.csi import (
    CaptureSession,
    CsiPacket,
    CsiSimulator,
    CsiTrace,
    DataCollector,
    HardwareProfile,
    SessionConfig,
    SimulationScene,
)
from repro.engine import PipelineEngine, StageCache, StageCounter, StageEvent
from repro.serve import (
    IdentificationService,
    MetricsRegistry,
    QueueFullError,
    RequestHandle,
    ServiceConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AIR",
    "AmplitudeProcessor",
    "AntennaArray",
    "AntennaPairSelector",
    "CaptureSession",
    "CsiPacket",
    "CsiSimulator",
    "CsiTrace",
    "CylinderTarget",
    "DataCollector",
    "Environment",
    "FeatureMeasurement",
    "HardwareProfile",
    "IdentificationService",
    "LinkGeometry",
    "Material",
    "MaterialCatalog",
    "MaterialDatabase",
    "MaterialFeatureExtractor",
    "MetricsRegistry",
    "PhaseCalibrator",
    "PipelineEngine",
    "QueueFullError",
    "RequestHandle",
    "ServiceConfig",
    "SessionConfig",
    "SimulationScene",
    "StageCache",
    "StageCounter",
    "StageEvent",
    "SubcarrierSelector",
    "WiMi",
    "WiMiConfig",
    "__version__",
    "default_catalog",
    "make_environment",
    "material_feature_theory",
    "propagation_constants",
    "resolve_gamma",
    "theory_reference_omegas",
]
