"""Composable, seeded fault injectors for CSI traces and ``.wimi`` logs.

Each injector models one receiver-side failure mode of a commodity Intel
5300 capture chain:

* :class:`PacketLoss` -- dropped CSI reports (sequence gaps remain
  visible, exactly as on real hardware).
* :class:`PacketReorder` -- out-of-order delivery from the logging path.
* :class:`DuplicatePackets` -- duplicated sequence numbers (firmware
  retransmit echoes).
* :class:`AntennaDropout` -- one RF chain dead (NaN or zeroed readings).
* :class:`AgcClipping` -- an AGC-saturated burst: I/Q components of a
  contiguous packet run slammed onto the ADC rail.
* :class:`SubcarrierErasure` -- zeroed or NaN subcarriers (pilot
  stripping, interpolation bugs, interference nulls).
* :class:`TimestampJitter` -- host-clock jitter on receive timestamps.

Injectors are frozen dataclasses applied through :func:`inject` /
:func:`inject_session` with an explicit seed, so any degraded capture is
exactly reproducible.  :func:`truncate_file` and :func:`flip_bits`
damage on-disk ``.wimi`` logs for exercising :mod:`repro.csi.io`'s
corruption handling.

None of the injectors mutate their input; every application returns a
new :class:`~repro.csi.model.CsiTrace` built from fresh packet arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.csi.collector import CaptureSession
from repro.csi.model import CsiPacket, CsiTrace


@runtime_checkable
class TraceFault(Protocol):
    """A deterministic-given-``rng`` transformation of a trace."""

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        """Return a degraded copy of ``trace``."""
        ...


def _check_rate(name: str, value: float, upper: float = 1.0) -> None:
    if not 0.0 <= value <= upper:
        raise ValueError(f"{name} must be in [0, {upper}], got {value}")


def _rebuild(
    trace: CsiTrace,
    matrix: np.ndarray,
    packets: Sequence[CsiPacket] | None = None,
) -> CsiTrace:
    """New trace with per-packet CSI replaced by ``matrix`` rows."""
    source = list(packets) if packets is not None else trace.packets
    rebuilt = [
        replace(p, csi=np.ascontiguousarray(matrix[m]))
        for m, p in enumerate(source)
    ]
    return CsiTrace(
        packets=rebuilt, carrier_hz=trace.carrier_hz, label=trace.label
    )


@dataclass(frozen=True)
class PacketLoss:
    """Drop packets independently with probability ``rate``.

    Kept packets retain their original sequence numbers and timestamps,
    so the loss remains visible as sequence gaps -- exactly what
    :func:`repro.csi.quality.assess_trace` measures as ``loss_rate``.
    ``min_keep`` packets always survive (an all-dropped capture is a
    different failure -- an empty file -- not packet loss).
    """

    rate: float
    min_keep: int = 2

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)
        if self.min_keep < 1:
            raise ValueError(f"min_keep must be >= 1, got {self.min_keep}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        n = len(trace)
        keep = rng.random(n) >= self.rate
        if keep.sum() < min(self.min_keep, n):
            forced = rng.choice(n, size=min(self.min_keep, n), replace=False)
            keep[forced] = True
        packets = [trace.packets[m] for m in range(n) if keep[m]]
        return CsiTrace(
            packets=packets, carrier_hz=trace.carrier_hz, label=trace.label
        )


@dataclass(frozen=True)
class PacketReorder:
    """Swap a ``fraction`` of adjacent packet pairs (late delivery)."""

    fraction: float

    def __post_init__(self) -> None:
        _check_rate("fraction", self.fraction)

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        packets = list(trace.packets)
        n = len(packets)
        num_swaps = int(round(self.fraction * max(n - 1, 0)))
        if num_swaps > 0:
            positions = rng.choice(n - 1, size=num_swaps, replace=False)
            for pos in positions:
                packets[pos], packets[pos + 1] = packets[pos + 1], packets[pos]
        return CsiTrace(
            packets=packets, carrier_hz=trace.carrier_hz, label=trace.label
        )


@dataclass(frozen=True)
class DuplicatePackets:
    """Re-deliver packets with probability ``rate`` (same sequence number)."""

    rate: float

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        duplicated = rng.random(len(trace)) < self.rate
        packets: list[CsiPacket] = []
        for m, packet in enumerate(trace.packets):
            packets.append(packet)
            if duplicated[m]:
                packets.append(replace(packet, csi=packet.csi.copy()))
        return CsiTrace(
            packets=packets, carrier_hz=trace.carrier_hz, label=trace.label
        )


@dataclass(frozen=True)
class AntennaDropout:
    """Kill one RF chain for the whole trace.

    ``antenna=None`` picks the victim from ``rng``.  ``mode="nan"``
    models a parser that flags missing chains; ``mode="zero"`` models the
    nastier real-world case where the dead chain reads as silence --
    finite, plausible-looking, and (phase-wise) perfectly "stable"
    garbage that only a live-fraction check can disqualify.
    """

    antenna: int | None = None
    mode: str = "nan"

    def __post_init__(self) -> None:
        if self.mode not in ("nan", "zero"):
            raise ValueError(f"mode must be 'nan' or 'zero', got {self.mode!r}")
        if self.antenna is not None and self.antenna < 0:
            raise ValueError(f"antenna must be >= 0, got {self.antenna}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        num_ant = trace.num_antennas
        if num_ant == 0:
            return trace
        victim = (
            int(rng.integers(num_ant)) if self.antenna is None else self.antenna
        )
        if victim >= num_ant:
            raise ValueError(
                f"antenna {victim} out of range [0, {num_ant})"
            )
        fill = complex("nan+nanj") if self.mode == "nan" else 0.0 + 0.0j
        matrix = trace.matrix().copy()
        matrix[:, :, victim] = fill
        return _rebuild(trace, matrix)


@dataclass(frozen=True)
class AgcClipping:
    """Saturate a contiguous burst of packets on the ADC rail.

    For each packet of a burst covering ``fraction`` of the trace, I/Q
    components are clipped at ``level`` times the packet's own peak
    component -- the flat-topped waveform an overdriven AGC produces.
    """

    fraction: float
    level: float = 0.3

    def __post_init__(self) -> None:
        _check_rate("fraction", self.fraction)
        if not 0.0 < self.level <= 1.0:
            raise ValueError(f"level must be in (0, 1], got {self.level}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        n = len(trace)
        burst = int(round(self.fraction * n))
        if burst == 0 or n == 0:
            return trace
        start = int(rng.integers(max(n - burst, 0) + 1))
        matrix = trace.matrix().copy()
        for m in range(start, start + burst):
            csi = matrix[m]
            components = np.stack([np.abs(csi.real), np.abs(csi.imag)])
            finite = np.isfinite(components)
            if not finite.any():
                continue
            rail = self.level * float(np.where(finite, components, 0.0).max())
            if rail <= 0.0:
                continue
            matrix[m] = np.clip(csi.real, -rail, rail) + 1j * np.clip(
                csi.imag, -rail, rail
            )
        return _rebuild(trace, matrix)


@dataclass(frozen=True)
class SubcarrierErasure:
    """Erase subcarriers to NaN or zero.

    ``scope="column"`` kills a ``rate`` share of whole subcarrier columns
    for the full trace (interference null, pilot stripping);
    ``scope="cells"`` erases independent ``(packet, subcarrier, antenna)``
    cells with probability ``rate`` (sporadic parser glitches).
    """

    rate: float
    mode: str = "nan"
    scope: str = "column"

    def __post_init__(self) -> None:
        _check_rate("rate", self.rate)
        if self.mode not in ("nan", "zero"):
            raise ValueError(f"mode must be 'nan' or 'zero', got {self.mode!r}")
        if self.scope not in ("column", "cells"):
            raise ValueError(
                f"scope must be 'column' or 'cells', got {self.scope!r}"
            )

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        matrix = trace.matrix().copy()
        if matrix.size == 0:
            return trace
        fill = complex("nan+nanj") if self.mode == "nan" else 0.0 + 0.0j
        num_sc = matrix.shape[1]
        if self.scope == "column":
            victims = int(round(self.rate * num_sc))
            if victims > 0:
                columns = rng.choice(num_sc, size=victims, replace=False)
                matrix[:, columns, :] = fill
        else:
            mask = rng.random(matrix.shape) < self.rate
            matrix[mask] = fill
        return _rebuild(trace, matrix)


@dataclass(frozen=True)
class TimestampJitter:
    """Add zero-mean Gaussian jitter (std ``std_s`` seconds) to timestamps."""

    std_s: float

    def __post_init__(self) -> None:
        if self.std_s < 0:
            raise ValueError(f"std_s must be >= 0, got {self.std_s}")

    def apply(self, trace: CsiTrace, rng: np.random.Generator) -> CsiTrace:
        offsets = rng.normal(0.0, self.std_s, size=len(trace))
        packets = [
            replace(p, timestamp_s=float(p.timestamp_s + offsets[m]))
            for m, p in enumerate(trace.packets)
        ]
        return CsiTrace(
            packets=packets, carrier_hz=trace.carrier_hz, label=trace.label
        )


# ----------------------------------------------------------------------
# Application
# ----------------------------------------------------------------------


def inject(
    trace: CsiTrace,
    faults: Sequence[TraceFault],
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> CsiTrace:
    """Apply a fault chain to a trace, in order, under one seeded stream.

    Exactly one of ``seed``/``rng`` selects the randomness source;
    passing neither uses a fresh default generator (non-reproducible --
    fine for ad-hoc exploration, wrong for experiments).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    elif seed is not None:
        raise ValueError("pass either seed or rng, not both")
    degraded = trace
    for fault in faults:
        degraded = fault.apply(degraded, rng)
    return degraded


def inject_session(
    session: CaptureSession,
    faults: Sequence[TraceFault],
    seed: int | None = None,
    baseline_faults: Sequence[TraceFault] | None = None,
) -> CaptureSession:
    """Apply fault chains to both traces of a paired session.

    ``faults`` hits the target trace; ``baseline_faults`` (default: the
    same chain) hits the baseline.  Both draw from one seeded stream so
    a single ``seed`` pins the whole degraded session.
    """
    rng = np.random.default_rng(seed)
    if baseline_faults is None:
        baseline_faults = faults
    return replace(
        session,
        baseline=inject(session.baseline, baseline_faults, rng=rng),
        target=inject(session.target, faults, rng=rng),
    )


# ----------------------------------------------------------------------
# On-disk faults for ``.wimi`` logs
# ----------------------------------------------------------------------


def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Truncate a file to ``keep_fraction`` of its bytes; returns new size."""
    _check_rate("keep_fraction", keep_fraction)
    path = Path(path)
    data = path.read_bytes()
    kept = int(len(data) * keep_fraction)
    path.write_bytes(data[:kept])
    return kept


def flip_bits(
    path: str | Path, num_flips: int = 8, seed: int | None = None
) -> list[int]:
    """Flip ``num_flips`` random bits in a file; returns hit byte offsets."""
    if num_flips < 0:
        raise ValueError(f"num_flips must be >= 0, got {num_flips}")
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data or num_flips == 0:
        return []
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, len(data), size=num_flips)
    bits = rng.integers(0, 8, size=num_flips)
    for offset, bit in zip(offsets, bits):
        data[int(offset)] ^= 1 << int(bit)
    path.write_bytes(bytes(data))
    return sorted(int(o) for o in offsets)
