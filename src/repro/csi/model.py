"""CSI data containers.

These are the interchange types of the whole system: the simulator emits
them, the pre-processing modules consume them.  A real deployment would
construct the same objects from Intel 5300 CSI Tool ``.dat`` parses, which
is why nothing downstream of this module knows the data is synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CsiPacket:
    """CSI of one received packet.

    Attributes:
        csi: Complex channel matrix, shape ``(num_subcarriers, num_antennas)``.
        timestamp_s: Receive time in seconds from session start.
        sequence: Packet sequence number.
    """

    csi: np.ndarray
    timestamp_s: float = 0.0
    sequence: int = 0

    def __post_init__(self) -> None:
        csi = np.asarray(self.csi)
        if csi.ndim != 2:
            raise ValueError(
                f"csi must be 2-D (subcarriers, antennas), got shape {csi.shape}"
            )
        if not np.iscomplexobj(csi):
            raise TypeError("csi must be a complex array")
        object.__setattr__(self, "csi", csi)

    @property
    def num_subcarriers(self) -> int:
        """Number of reported subcarriers."""
        return self.csi.shape[0]

    @property
    def num_antennas(self) -> int:
        """Number of receive antennas."""
        return self.csi.shape[1]

    def amplitude(self) -> np.ndarray:
        """``|H|`` per subcarrier/antenna."""
        return np.abs(self.csi)

    def phase(self) -> np.ndarray:
        """``angle(H)`` per subcarrier/antenna, in ``(-pi, pi]``."""
        return np.angle(self.csi)


@dataclass
class CsiTrace:
    """A time-ordered sequence of CSI packets from one capture session.

    The canonical dense view is :meth:`matrix`, a complex array of shape
    ``(num_packets, num_subcarriers, num_antennas)``.
    """

    packets: list[CsiPacket] = field(default_factory=list)
    carrier_hz: float = 5.32e9
    label: str = ""

    def __post_init__(self) -> None:
        shapes = {p.csi.shape for p in self.packets}
        if len(shapes) > 1:
            raise ValueError(f"inconsistent packet shapes in trace: {shapes}")

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self):
        return iter(self.packets)

    def __getitem__(self, index: int) -> CsiPacket:
        return self.packets[index]

    @property
    def num_subcarriers(self) -> int:
        """Subcarriers per packet (0 for an empty trace)."""
        return self.packets[0].num_subcarriers if self.packets else 0

    @property
    def num_antennas(self) -> int:
        """Antennas per packet (0 for an empty trace)."""
        return self.packets[0].num_antennas if self.packets else 0

    def matrix(self) -> np.ndarray:
        """Dense ``(packets, subcarriers, antennas)`` complex array."""
        if not self.packets:
            return np.zeros((0, 0, 0), dtype=complex)
        return np.stack([p.csi for p in self.packets])

    def amplitudes(self) -> np.ndarray:
        """``|H|`` over the whole trace, same shape as :meth:`matrix`."""
        return np.abs(self.matrix())

    def phases(self) -> np.ndarray:
        """``angle(H)`` over the whole trace, same shape as :meth:`matrix`."""
        return np.angle(self.matrix())

    def timestamps(self) -> np.ndarray:
        """Packet receive times (seconds from session start)."""
        return np.array([p.timestamp_s for p in self.packets])

    def subset(self, num_packets: int) -> "CsiTrace":
        """First ``num_packets`` packets as a new trace (paper Fig. 18)."""
        if num_packets < 0:
            raise ValueError(f"num_packets must be >= 0, got {num_packets}")
        return CsiTrace(
            packets=self.packets[:num_packets],
            carrier_hz=self.carrier_hz,
            label=self.label,
        )

    @staticmethod
    def from_matrix(
        matrix: np.ndarray,
        carrier_hz: float = 5.32e9,
        packet_interval_s: float = 0.01,
        label: str = "",
    ) -> "CsiTrace":
        """Build a trace from a dense ``(packets, subcarriers, antennas)``
        array, with evenly spaced timestamps (10 ms default, as the paper's
        receiver logs CSI every 10 ms)."""
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 3:
            raise ValueError(
                f"matrix must be 3-D (packets, subcarriers, antennas), "
                f"got shape {matrix.shape}"
            )
        packets = [
            CsiPacket(csi=matrix[m], timestamp_s=m * packet_interval_s, sequence=m)
            for m in range(matrix.shape[0])
        ]
        return CsiTrace(packets=packets, carrier_hz=carrier_hz, label=label)
