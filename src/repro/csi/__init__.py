"""CSI capture substrate -- the reproduction's Intel 5300 stand-in.

The paper collects CSI with the Linux 802.11n CSI Tool on an Intel 5300
NIC: 30 grouped subcarriers of a 20 MHz channel, 3 RX antennas, one packet
every 10 ms.  We have no such hardware, so this package *simulates* the
capture end to end:

* :mod:`repro.csi.subcarriers` -- the 802.11n subcarrier grid and the
  Intel 5300's 30-subcarrier grouped report.
* :mod:`repro.csi.model` -- :class:`CsiPacket` / :class:`CsiTrace`
  containers, the data the rest of the system consumes.
* :mod:`repro.csi.impairments` -- every hardware nuisance the paper's
  pre-processing exists to defeat: CFO/SFO/packet-boundary-delay phase
  corruption (common across antennas on one board), per-antenna
  measurement noise, amplitude outliers and impulse noise, quantisation.
* :mod:`repro.csi.simulator` -- ties geometry + environment + material +
  impairments into packet streams.
* :mod:`repro.csi.collector` -- the paper's Data Collection Module:
  paired baseline (no target) / target capture sessions.
* :mod:`repro.csi.faults` -- seeded, composable fault injectors
  modelling degraded commodity captures (packet loss, dead antennas,
  AGC clipping, NaN subcarriers, damaged ``.wimi`` files).
* :mod:`repro.csi.quality` -- the quality boundary: trace assessment,
  gating thresholds and the ``CorruptTraceError`` /
  ``DegradedTraceWarning`` taxonomy.
"""

from repro.csi.collector import CaptureSession, DataCollector, SessionConfig
from repro.csi.impairments import HardwareProfile, IntelQuantizer
from repro.csi.io import load_session, load_trace, save_session, save_trace
from repro.csi.model import CsiPacket, CsiTrace
from repro.csi.quality import (
    CorruptTraceError,
    DegradedTraceWarning,
    QualityThresholds,
    SessionQualityReport,
    TraceQualityReport,
    assess_session,
    assess_trace,
    gate_session,
    gate_trace,
)
from repro.csi.simulator import CsiSimulator, SimulationScene
from repro.csi.subcarriers import (
    INTEL5300_NUM_SUBCARRIERS,
    intel5300_subcarrier_indices,
    subcarrier_frequencies,
)

__all__ = [
    "CaptureSession",
    "CorruptTraceError",
    "CsiPacket",
    "CsiSimulator",
    "CsiTrace",
    "DataCollector",
    "DegradedTraceWarning",
    "HardwareProfile",
    "INTEL5300_NUM_SUBCARRIERS",
    "IntelQuantizer",
    "QualityThresholds",
    "SessionConfig",
    "SessionQualityReport",
    "SimulationScene",
    "TraceQualityReport",
    "assess_session",
    "assess_trace",
    "gate_session",
    "gate_trace",
    "intel5300_subcarrier_indices",
    "load_session",
    "load_trace",
    "save_session",
    "save_trace",
    "subcarrier_frequencies",
]
