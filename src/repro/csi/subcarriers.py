"""802.11n subcarrier layout and the Intel 5300 grouped report.

A 20 MHz 802.11n channel has 64 OFDM subcarriers spaced 312.5 kHz apart, of
which 56 carry data/pilots (indices -28..-1, 1..28).  The Intel 5300 CSI
Tool reports channel state for 30 of them ("grouping", IEEE 802.11n-2009
section 7.3.1.27): every second subcarrier plus the band edges.

The paper indexes subcarriers 1..30 in its figures (e.g. "good" subcarriers
5, 20, 23, 24 in Fig. 6); those are positions in this grouped report.
"""

from __future__ import annotations

import numpy as np

#: 20 MHz OFDM subcarrier spacing (Hz).
SUBCARRIER_SPACING_HZ = 312.5e3

#: Number of subcarriers in the Intel 5300 grouped CSI report.
INTEL5300_NUM_SUBCARRIERS = 30

#: Grouped subcarrier indices reported by the Intel 5300 for 20 MHz
#: channels (logical OFDM indices, DC = 0).  From the CSI Tool docs.
_INTEL5300_INDICES_20MHZ: tuple[int, ...] = (
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
    1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28,
)


def intel5300_subcarrier_indices() -> np.ndarray:
    """Logical OFDM indices of the 30 reported subcarriers."""
    return np.array(_INTEL5300_INDICES_20MHZ, dtype=int)


def subcarrier_frequencies(
    carrier_hz: float,
    indices: np.ndarray | None = None,
    spacing_hz: float = SUBCARRIER_SPACING_HZ,
) -> np.ndarray:
    """Absolute RF frequency of each reported subcarrier.

    Args:
        carrier_hz: Channel centre frequency (e.g. 5.32 GHz).
        indices: Logical subcarrier indices; defaults to the Intel 5300
            grouped report.
        spacing_hz: Subcarrier spacing.

    Returns:
        Array of absolute frequencies in Hz, one per reported subcarrier.
    """
    if carrier_hz <= 0:
        raise ValueError(f"carrier frequency must be positive, got {carrier_hz}")
    if spacing_hz <= 0:
        raise ValueError(f"subcarrier spacing must be positive, got {spacing_hz}")
    if indices is None:
        indices = intel5300_subcarrier_indices()
    indices = np.asarray(indices, dtype=float)
    return carrier_hz + indices * spacing_hz


def validate_subcarrier_selection(
    selection: list[int] | tuple[int, ...] | np.ndarray,
    num_subcarriers: int = INTEL5300_NUM_SUBCARRIERS,
) -> list[int]:
    """Check a list of report positions (0-based) and return it as a list.

    Raises ``ValueError`` on duplicates or out-of-range positions; used by
    the pipeline wherever a user supplies explicit subcarrier choices.
    """
    positions = [int(s) for s in np.asarray(selection).ravel()]
    if not positions:
        raise ValueError("subcarrier selection must not be empty")
    if len(set(positions)) != len(positions):
        raise ValueError(f"duplicate subcarrier positions in {positions}")
    for pos in positions:
        if not 0 <= pos < num_subcarriers:
            raise ValueError(
                f"subcarrier position {pos} out of range "
                f"[0, {num_subcarriers})"
            )
    return positions
