"""Data Collection Module (paper Fig. 5, first box).

WiMi works on *paired* captures: a baseline trace recorded with the empty
beaker on the LoS, and a target trace recorded after the liquid is poured
in.  The :class:`DataCollector` reproduces the paper's protocol:

* One collector = one *deployment*: a single multipath realisation shared
  by every session it records, exactly like the paper's 20 repetitions per
  material captured in one static room.
* Per session, the room drifts slightly (each reflected ray's phase moves
  by the environment's ``session_drift_rad``) and the beaker is
  repositioned within a small tolerance (``offset_jitter``) -- the two
  sources of repetition-to-repetition variation.
* Within a session, the baseline and target traces share the drifted
  channel (they are recorded seconds apart); per-packet temporal fading
  and all hardware impairments are drawn independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.materials import AIR, Material
from repro.csi.impairments import HardwareProfile
from repro.csi.model import CsiTrace
from repro.csi.simulator import CsiSimulator, SimulationScene


@dataclass(frozen=True)
class SessionConfig:
    """How much data one capture session records.

    Attributes:
        num_packets: Packets per trace (paper default 20; Fig. 18 sweeps
            3..30).
        baseline_material: What fills the beaker during the baseline
            capture.  The paper uses the *empty* (air-filled) beaker, which
            is what makes the container wall cancel out (Fig. 20).
        target_motion_std: Per-packet lateral sloshing of the liquid
            during the *target* capture (metres).  0 = the paper's static
            protocol; >0 exercises the Discussion-section limitation.
    """

    num_packets: int = 20
    baseline_material: Material = field(default_factory=lambda: AIR)
    target_motion_std: float = 0.0

    def __post_init__(self) -> None:
        if self.num_packets < 1:
            raise ValueError(
                f"num_packets must be >= 1, got {self.num_packets}"
            )
        if self.target_motion_std < 0:
            raise ValueError(
                f"target_motion_std must be >= 0, got "
                f"{self.target_motion_std}"
            )


@dataclass
class CaptureSession:
    """One paired baseline/target measurement.

    Attributes:
        baseline: CSI with the empty beaker on the LoS.
        target: CSI with the liquid poured in.
        material_name: Ground-truth label of the liquid.
        scene: The deployment this session was captured in.
    """

    baseline: CsiTrace
    target: CsiTrace
    material_name: str
    scene: SimulationScene

    def __post_init__(self) -> None:
        if len(self.baseline) == 0 or len(self.target) == 0:
            raise ValueError("capture session traces must be non-empty")
        if self.baseline.num_antennas != self.target.num_antennas:
            raise ValueError(
                "baseline and target traces disagree on antenna count: "
                f"{self.baseline.num_antennas} vs {self.target.num_antennas}"
            )
        if self.baseline.num_subcarriers != self.target.num_subcarriers:
            raise ValueError(
                "baseline and target traces disagree on subcarrier count: "
                f"{self.baseline.num_subcarriers} vs "
                f"{self.target.num_subcarriers}"
            )

    @property
    def num_antennas(self) -> int:
        """Receive antennas in this session."""
        return self.baseline.num_antennas

    def truncated(self, num_packets: int) -> "CaptureSession":
        """Session limited to the first ``num_packets`` packets per trace."""
        return CaptureSession(
            baseline=self.baseline.subset(num_packets),
            target=self.target.subset(num_packets),
            material_name=self.material_name,
            scene=self.scene,
        )


class DataCollector:
    """Runs paired baseline/target capture sessions in one deployment.

    Args:
        scene: The deployment layout (must include a target container).
        profile: Hardware impairment profile of the simulated NIC.
        rng: Seed or generator for everything random.
        offset_jitter: Half-width (metres) of the uniform repositioning of
            the beaker's lateral offset between sessions.  The material
            feature is size/position independent, so this exercises that
            invariance rather than hurting accuracy.
        precision: Working precision of each session's simulator compute
            pass (see :class:`CsiSimulator`); the RNG draw order is
            precision independent, so seeds line up across precisions.
    """

    def __init__(
        self,
        scene: SimulationScene,
        profile: HardwareProfile | None = None,
        rng: np.random.Generator | int | None = None,
        offset_jitter: float = 0.0015,
        precision: str = "float64",
    ):
        if scene.target is None:
            raise ValueError(
                "DataCollector needs a scene with a target container"
            )
        if offset_jitter < 0:
            raise ValueError(
                f"offset_jitter must be >= 0, got {offset_jitter}"
            )
        self.scene = scene
        self.profile = profile if profile is not None else HardwareProfile()
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self.offset_jitter = offset_jitter
        self.precision = precision
        # The deployment's multipath realisation: fixed for the lifetime of
        # this collector, drifted slightly per session.
        self.channel = scene.environment.build_channel(scene.geometry, self.rng)

    def _session_scene(self) -> SimulationScene:
        """Scene with the beaker repositioned for one session."""
        if self.offset_jitter == 0.0:
            return self.scene
        target = self.scene.target
        jitter = self.rng.uniform(-self.offset_jitter, self.offset_jitter)
        return replace(
            self.scene,
            target=replace(target, lateral_offset=target.lateral_offset + jitter),
        )

    def collect(
        self, material: Material, config: SessionConfig | None = None
    ) -> CaptureSession:
        """Capture one paired session for ``material``."""
        config = config if config is not None else SessionConfig()
        scene = self._session_scene()
        drifted = self.channel.with_phase_drift(
            self.rng, scene.environment.session_drift_rad
        )
        simulator = CsiSimulator(
            scene,
            self.profile,
            rng=self.rng,
            channel=drifted,
            precision=self.precision,
        )
        baseline = simulator.capture(
            config.baseline_material,
            config.num_packets,
            label=f"baseline/{config.baseline_material.name}",
        )
        target = simulator.capture(
            material,
            config.num_packets,
            label=f"target/{material.name}",
            motion_std_m=config.target_motion_std,
        )
        return CaptureSession(
            baseline=baseline,
            target=target,
            material_name=material.name,
            scene=scene,
        )

    def collect_many(
        self,
        material: Material,
        repetitions: int,
        config: SessionConfig | None = None,
    ) -> list[CaptureSession]:
        """Capture ``repetitions`` independent sessions (paper: 20 per
        material)."""
        if repetitions < 0:
            raise ValueError(f"repetitions must be >= 0, got {repetitions}")
        return [self.collect(material, config) for _ in range(repetitions)]
