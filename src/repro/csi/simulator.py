"""End-to-end CSI capture simulator.

This module replaces the paper's physical testbed (router + Intel 5300
laptop + beaker of liquid).  A :class:`SimulationScene` describes the
layout; :class:`CsiSimulator` turns it into packet streams:

1.  Build the multipath channel for the environment (LoS + reflections).
2.  When a target is present, multiply the LoS ray, per antenna and per
    subcarrier, with the penetration response of Eq. 2-4 (liquid column +
    container wall), blended with a diffracted leakage ray according to the
    beaker's size (paper Fig. 19: beakers narrower than the wavelength
    mostly diffract).
3.  Per packet, jitter the reflected rays (temporal fading), add the
    receiver noise floor, and run the hardware impairment stack (CFO/SFO/
    PBD, per-antenna noise, outliers, impulse noise, quantisation).

Bulk-gain normalisation
-----------------------
Several of the paper's liquids are so lossy at 5 GHz that a strictly
plane-wave LoS crossing ~13 cm of liquid would arrive ~150 dB down --
while the real experiments clearly kept a usable signal (surface and
creeping waves, coherent leakage, receiver AGC).  The simulator therefore
normalises the *common* (geometric-mean) gain of the penetrated LoS to
unity, applied equally to every antenna and subcarrier (toggled by
``normalize_bulk_gain``).  A factor common to all antennas and
subcarriers cancels exactly in the phase difference ``Delta-Theta`` and
the double amplitude ratio ``Delta-Psi`` (Eq. 18-19), so this
normalisation does not distort the material feature; it only keeps the
differential structure -- which is all WiMi measures -- above the noise
floor, as the real hardware evidently did.  This substitution is recorded
in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.channel.environment import Environment, make_environment
from repro.channel.geometry import CylinderTarget, LinkGeometry
from repro.channel.materials import Material
from repro.channel.multipath import MultipathChannel
from repro.channel.propagation import (
    penetration_response,
    penetration_response_array,
)
from repro.csi.impairments import HardwareProfile
from repro.csi.model import CsiTrace
from repro.csi.subcarriers import subcarrier_frequencies
from repro.dsp.precision import complex_dtype, real_dtype, validate_precision

#: Packet interval of the paper's receiver (one CSI sample every 10 ms).
PACKET_INTERVAL_S = 0.01


@dataclass(frozen=True)
class SimulationScene:
    """Everything static about one deployment.

    Attributes:
        geometry: Tx / Rx-array / target layout.
        environment: Multipath preset (hall / lab / library).
        target: The beaker, or None for a bare link.
        carrier_hz: Channel centre frequency.
        normalize_bulk_gain: Normalise the common penetrated-LoS gain to
            unity (see module docstring).  Disable only for physics unit
            tests that check raw attenuation.
        diffraction_leak_gain: Amplitude of the around-the-beaker diffracted
            ray relative to free-space LoS.
        diffraction_phase_jitter: Placement sensitivity of the creeping
            wave's phase (radians), scaled by the diffracted fraction
            ``1 - kappa``.  In the Mie regime (beaker ~ wavelength) the
            around-the-target path is hypersensitive to millimetre
            placement changes, which is what destroys identification for
            sub-wavelength beakers (paper Fig. 19).
    """

    geometry: LinkGeometry = field(default_factory=LinkGeometry)
    environment: Environment = field(default_factory=lambda: make_environment("lab"))
    target: CylinderTarget | None = None
    carrier_hz: float = 5.32e9
    normalize_bulk_gain: bool = True
    diffraction_leak_gain: float = 0.8
    diffraction_phase_jitter: float = 1.2

    def __post_init__(self) -> None:
        if self.carrier_hz <= 0:
            raise ValueError(f"carrier must be positive, got {self.carrier_hz}")
        if self.diffraction_leak_gain < 0:
            raise ValueError("diffraction_leak_gain must be >= 0")
        if self.diffraction_phase_jitter < 0:
            raise ValueError("diffraction_phase_jitter must be >= 0")


class CsiSimulator:
    """Generates CSI traces for one scene.

    One simulator instance holds one concrete multipath realisation, so
    baseline and target captures taken from the same instance see the same
    static environment -- exactly like the paper's paired measurements.

    ``precision`` is the working dtype of the vectorised compute pass
    (``WiMiConfig.compute_precision``): float32 runs the per-packet
    channel evaluation and impairment chain in complex64.  The RNG draw
    pass is always float64 in the legacy order, so a seed selects the
    same randomness at either precision, and the emitted trace is
    complex128 either way (:meth:`CsiTrace.from_matrix` coerces).
    """

    def __init__(
        self,
        scene: SimulationScene,
        profile: HardwareProfile | None = None,
        rng: np.random.Generator | int | None = None,
        channel: MultipathChannel | None = None,
        precision: str = "float64",
    ):
        validate_precision(precision)
        self.scene = scene
        self.precision = precision
        self._cdtype = complex_dtype(precision)
        self.profile = profile if profile is not None else HardwareProfile()
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        if channel is not None:
            self.channel = channel
        else:
            self.channel = scene.environment.build_channel(
                scene.geometry, self.rng
            )
        self.frequencies_hz = subcarrier_frequencies(scene.carrier_hz)

    # ------------------------------------------------------------------
    # Target physics
    # ------------------------------------------------------------------

    def target_multiplier(self, material: Material) -> np.ndarray:
        """Per-(subcarrier, antenna) complex LoS multiplier for the target.

        Combines liquid-column and container-wall penetration (Eq. 2-4),
        bulk-gain normalisation, and diffraction blending.
        """
        target = self.scene.target
        if target is None:
            raise ValueError("scene has no target; nothing to multiply")
        geometry = self.scene.geometry
        liquid_paths = geometry.liquid_path_lengths(target)
        wall_paths = geometry.wall_path_lengths(target)
        wall_material = target.wall_material

        num_ant = len(liquid_paths)
        grid = np.zeros((self.frequencies_hz.size, num_ant), dtype=complex)
        for a in range(num_ant):
            # All subcarriers of one antenna in a single array pass.
            grid[:, a] = penetration_response_array(
                material, liquid_paths[a], self.frequencies_hz
            ) * penetration_response_array(
                wall_material, wall_paths[a], self.frequencies_hz
            )

        grid = self._normalise_bulk_gain(grid)
        return self._blend_diffraction(grid, target)

    def _reference_target_multiplier(self, material: Material) -> np.ndarray:
        """Original per-(subcarrier, antenna) scalar loop (equivalence ref)."""
        target = self.scene.target
        if target is None:
            raise ValueError("scene has no target; nothing to multiply")
        geometry = self.scene.geometry
        liquid_paths = geometry.liquid_path_lengths(target)
        wall_paths = geometry.wall_path_lengths(target)
        wall_material = target.wall_material

        num_ant = len(liquid_paths)
        grid = np.zeros((self.frequencies_hz.size, num_ant), dtype=complex)
        for a in range(num_ant):
            for k, freq in enumerate(self.frequencies_hz):
                response = penetration_response(material, liquid_paths[a], freq)
                response *= penetration_response(
                    wall_material, wall_paths[a], freq
                )
                grid[k, a] = response

        grid = self._normalise_bulk_gain(grid)
        return self._blend_diffraction(grid, target)

    def _moving_target_multiplier(
        self, material: Material, motion_std_m: float
    ) -> np.ndarray:
        """One packet's multiplier with the liquid column displaced.

        Sloshing/flowing liquid shifts the effective column laterally by a
        random amount each packet; all chord lengths (and therefore both
        the differential phase and amplitude signatures) move with it.
        """
        from dataclasses import replace

        target = self.scene.target
        displaced = replace(
            target,
            lateral_offset=target.lateral_offset
            + self.rng.normal(0.0, motion_std_m),
        )
        original_scene = self.scene
        try:
            self.scene = replace(original_scene, target=displaced)
            return self.target_multiplier(material)
        finally:
            self.scene = original_scene

    def _normalise_bulk_gain(self, grid: np.ndarray) -> np.ndarray:
        """Scale the common attenuation to unit geometric mean.

        The common gain is the geometric mean of ``|grid|`` over all cells;
        rescaling it uniformly preserves every amplitude ratio and every
        phase, so the material feature is untouched (module docstring).
        """
        if not self.scene.normalize_bulk_gain:
            return grid
        mags = np.abs(grid)
        if np.any(mags == 0):
            return grid
        common = math.exp(float(np.mean(np.log(mags))))
        if common <= 0:
            return grid
        return grid / common

    def _blend_diffraction(
        self, grid: np.ndarray, target: CylinderTarget
    ) -> np.ndarray:
        """Mix penetrated and diffracted energy per the beaker size.

        A fraction ``kappa`` of the LoS energy penetrates (Eq. 2-4 applies);
        the rest creeps around the cylinder, arriving with a small extra
        free-space delay and no material signature.  For the paper's large
        beakers ``kappa ~ 1``; below one wavelength diffraction dominates
        and the feature washes out (Fig. 19).
        """
        wavelength = 299792458.0 / self.scene.carrier_hz
        kappa = target.diffraction_factor(wavelength)
        if kappa >= 0.999999:
            return grid
        geometry = self.scene.geometry
        center = geometry.target_center(target)
        tx = geometry.tx_position
        from repro.channel.geometry import chord_length

        # Placement-sensitive creeping-wave phase: per antenna, drawn once
        # per simulator instance (i.e. per placement of the beaker).
        sigma = self.scene.diffraction_phase_jitter * (1.0 - kappa)
        placement_phases = self.rng.normal(0.0, sigma, size=grid.shape[1])

        leak = np.zeros_like(grid)
        for a, rx in enumerate(geometry.rx_positions()):
            outer_chord = chord_length(tx, rx, center, target.outer_radius)
            # Detour of a creeping ray: arc instead of chord.
            extra = (math.pi / 2.0 - 1.0) * outer_chord
            phases = (
                -2.0 * math.pi * self.frequencies_hz * (extra / 299792458.0)
                + placement_phases[a]
            )
            leak[:, a] = self.scene.diffraction_leak_gain * np.exp(1j * phases)
        return kappa * grid + (1.0 - kappa) * leak

    # ------------------------------------------------------------------
    # Packet generation
    # ------------------------------------------------------------------

    def capture(
        self,
        material: Material | None,
        num_packets: int,
        label: str = "",
        motion_std_m: float = 0.0,
    ) -> CsiTrace:
        """Capture ``num_packets`` CSI packets.

        Args:
            material: Liquid in the beaker; ``None`` means no target on the
                LoS at all (bare link).  Passing :data:`repro.channel.AIR`
                with a target in the scene simulates the paper's baseline:
                the *empty* beaker standing on the LoS.
            num_packets: Number of packets (paper default: 20, Fig. 18).
            label: Trace label for bookkeeping.
            motion_std_m: Std-dev (metres) of per-packet lateral sloshing
                of the liquid column.  The paper's Discussion notes WiMi
                "can only identify the material type of a static liquid";
                this knob simulates a moving/flowing target so that
                limitation can be quantified (motion ablation bench).
                0 = the paper's static protocol.
        """
        if num_packets < 0:
            raise ValueError(f"num_packets must be >= 0, got {num_packets}")
        if motion_std_m < 0:
            raise ValueError(f"motion_std_m must be >= 0, got {motion_std_m}")
        if material is not None and self.scene.target is None:
            raise ValueError(
                "material given but the scene has no target container"
            )
        if material is not None and motion_std_m > 0:
            # The moving-target multiplier is inherently sequential (each
            # packet re-solves the displaced geometry); keep the scalar
            # per-packet path for it.
            return self._reference_capture(
                material, num_packets, label, motion_std_m
            )
        if material is None:
            multiplier: np.ndarray | complex = 1.0
        else:
            multiplier = self.target_multiplier(material)

        env = self.scene.environment
        num_paths = len(self.channel.paths)
        jitter_scales = np.array(
            [p.jitter_scale for p in self.channel.paths], dtype=float
        )
        num_ant = self.channel.num_antennas
        num_sc = self.frequencies_hz.size

        if num_packets == 0:
            return CsiTrace.from_matrix(
                np.zeros((0, num_sc, num_ant), dtype=complex),
                carrier_hz=self.scene.carrier_hz,
                packet_interval_s=PACKET_INTERVAL_S,
                label=label,
            )

        # Draw pass: consume the RNG stream packet by packet in *exactly*
        # the legacy order (jitter, gains, noise, impairments), so a seed
        # maps to the same trace as the original per-packet loop.  Every
        # draw count is data independent, which is what makes the split
        # between drawing and computing possible.
        phase_offsets = (
            np.zeros((num_packets, num_paths)) if num_paths else None
        )
        gain_factors = (
            np.zeros((num_packets, num_paths)) if num_paths else None
        )
        noise = (
            np.zeros((num_packets, num_sc, num_ant), dtype=complex)
            if env.noise_floor > 0
            else None
        )
        draws = []
        for m in range(num_packets):
            if num_paths:
                phase_offsets[m] = self.rng.normal(
                    0.0, env.temporal_jitter_rad, size=num_paths
                ) * jitter_scales
                gain_factors[m] = np.clip(
                    1.0 + self.rng.normal(0.0, env.gain_jitter, size=num_paths),
                    0.0,
                    None,
                )
            if env.noise_floor > 0:
                noise[m] = self.rng.standard_normal((num_sc, num_ant)) + 1j * (
                    self.rng.standard_normal((num_sc, num_ant))
                )
            draws.append(
                self.profile.draw_packet_impairments(num_sc, num_ant, self.rng)
            )

        # Compute pass: one broadcast evaluation over all packets, at the
        # simulator's working precision (the target physics above stays
        # float64; it is rounded once entering the channel).
        if num_paths:
            clean = self.channel.total_response_batch(
                self.frequencies_hz,
                los_multiplier=multiplier,
                phase_offsets=phase_offsets,
                gain_factors=gain_factors,
                dtype=real_dtype(self.precision),
            )
        else:
            static = self.channel.total_response(
                self.frequencies_hz, los_multiplier=multiplier
            ).astype(self._cdtype, copy=False)
            clean = np.broadcast_to(
                static[None, :, :], (num_packets, num_sc, num_ant)
            ).copy()
        if noise is not None:
            # Cast the (float64-drawn) noise once; the scalar factors are
            # weak, so a complex64 block stays complex64.
            noise = noise.astype(self._cdtype, copy=False)
            clean = clean + env.noise_floor * noise / math.sqrt(2.0)
        packets = self.profile.apply_to_packets(clean, draws)

        return CsiTrace.from_matrix(
            packets,
            carrier_hz=self.scene.carrier_hz,
            packet_interval_s=PACKET_INTERVAL_S,
            label=label,
        )

    def _reference_capture(
        self,
        material: Material | None,
        num_packets: int,
        label: str = "",
        motion_std_m: float = 0.0,
    ) -> CsiTrace:
        """Original per-packet capture loop.

        Still the implementation of record for moving targets, and the
        baseline the equivalence tests and perf-bench compare against.
        """
        if num_packets < 0:
            raise ValueError(f"num_packets must be >= 0, got {num_packets}")
        if motion_std_m < 0:
            raise ValueError(f"motion_std_m must be >= 0, got {motion_std_m}")
        if material is not None and self.scene.target is None:
            raise ValueError(
                "material given but the scene has no target container"
            )
        if material is None:
            multiplier: np.ndarray | complex = 1.0
        else:
            multiplier = self.target_multiplier(material)

        env = self.scene.environment
        num_paths = len(self.channel.paths)
        jitter_scales = np.array(
            [p.jitter_scale for p in self.channel.paths], dtype=float
        )
        num_ant = self.channel.num_antennas
        num_sc = self.frequencies_hz.size

        packets = np.zeros((num_packets, num_sc, num_ant), dtype=complex)
        for m in range(num_packets):
            if num_paths:
                phase_offsets = self.rng.normal(
                    0.0, env.temporal_jitter_rad, size=num_paths
                ) * jitter_scales
                gain_factors = np.clip(
                    1.0 + self.rng.normal(0.0, env.gain_jitter, size=num_paths),
                    0.0,
                    None,
                )
            else:
                phase_offsets = None
                gain_factors = None
            if material is not None and motion_std_m > 0:
                # Liquid in motion: the column's effective position moves
                # packet to packet, changing every chord length.
                multiplier = self._moving_target_multiplier(
                    material, motion_std_m
                )
            clean = self.channel.total_response(
                self.frequencies_hz,
                los_multiplier=multiplier,
                phase_offsets=phase_offsets,
                gain_factors=gain_factors,
            )
            if env.noise_floor > 0:
                noise = self.rng.standard_normal(clean.shape) + 1j * (
                    self.rng.standard_normal(clean.shape)
                )
                clean = clean + env.noise_floor * noise / math.sqrt(2.0)
            packets[m] = self.profile.apply_to_packet(clean, self.rng)

        return CsiTrace.from_matrix(
            packets,
            carrier_hz=self.scene.carrier_hz,
            packet_interval_s=PACKET_INTERVAL_S,
            label=label,
        )
