"""Hardware impairment models for the simulated Intel 5300 capture.

Each impairment here corresponds to a nuisance named in the paper
(Section II-C and III-B) and to the pre-processing step that defeats it:

========================  =========================================  =====================
Impairment                 Model                                      Defeated by
==========================  =======================================  =====================
CFO (carrier freq. offset)  random per-packet phase offset ``beta``   antenna phase
SFO + PBD                   random per-packet phase slope over        difference (common
                            subcarrier index ``k (lam_b + lam_s)``    across antennas)
Measurement noise ``Z``     per-antenna complex AWGN                  time-window averaging
Amplitude outliers          rare large multiplicative spikes          3-sigma rejection
Impulse noise               frequent additive spikes, independent     wavelet correlation
                            across subcarriers (uncorrelated across   denoiser
                            DWT scales)
Quantisation                int8 real/imag per packet (CSI Tool        --
                            report format)
==========================  =======================================  =====================

The crucial structural property (paper Eq. 5-6): the CFO/SFO/PBD phase
corruption is **identical on all antennas of one board** because they share
the sampling and oscillator clock -- that is the entire basis of the
phase-difference calibration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.dsp.precision import unit_phasor


@dataclass(frozen=True)
class IntelQuantizer:
    """Int8 real/imag quantisation of the CSI Tool report format.

    The CSI Tool stores each CSI entry as signed 8-bit real and imaginary
    parts with a per-packet automatic scale.  We reproduce that: scale the
    packet so its largest component magnitude hits ``max_level``, round,
    and scale back.
    """

    max_level: int = 127
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {self.max_level}")

    def apply(self, csi: np.ndarray) -> np.ndarray:
        """Quantise one packet's CSI matrix; returns a new array."""
        if not self.enabled:
            return np.array(csi, dtype=complex)
        csi = np.asarray(csi, dtype=complex)
        peak = max(np.abs(csi.real).max(initial=0.0),
                   np.abs(csi.imag).max(initial=0.0))
        if peak == 0.0:
            return csi.copy()
        scale = self.max_level / peak
        real = np.round(csi.real * scale) / scale
        imag = np.round(csi.imag * scale) / scale
        return real + 1j * imag

    def apply_batch(self, csi: np.ndarray) -> np.ndarray:
        """Quantise a packet block ``(M, K, A)`` with per-packet scales.

        Matches :meth:`apply` called per packet: each packet gets its own
        automatic scale from its own peak component.  Dtype-preserving
        for complex input (a complex64 block quantises in complex64);
        anything else is coerced to complex128 as before.
        """
        if not self.enabled:
            out = np.array(csi)
            if not np.issubdtype(out.dtype, np.complexfloating):
                out = out.astype(complex)
            return out
        csi = np.asarray(csi)
        if not np.issubdtype(csi.dtype, np.complexfloating):
            csi = csi.astype(complex)
        if csi.shape[0] == 0:
            return csi.copy()
        peak = np.maximum(
            np.abs(csi.real).max(axis=(1, 2), initial=0.0),
            np.abs(csi.imag).max(axis=(1, 2), initial=0.0),
        )
        safe = np.where(peak > 0.0, peak, 1.0)
        scale = (self.max_level / safe)[:, None, None]
        quantised = (
            np.round(csi.real * scale) / scale
            + 1j * (np.round(csi.imag * scale) / scale)
        )
        silent = peak == 0.0
        if silent.any():
            quantised[silent] = csi[silent]
        return quantised


@dataclass(frozen=True)
class HardwareProfile:
    """All impairment knobs for one simulated NIC.

    Attributes:
        sfo_pbd_slope_range: Per-packet phase slope across subcarrier index
            (radians per subcarrier step), uniform in ``[-a, a]``.  Bundles
            the SFO and packet-boundary-delay terms ``k (lam_b + lam_s)``.
        cfo_full_circle: If True the per-packet common phase offset
            ``beta`` is uniform over ``[0, 2 pi)`` -- what makes raw phase
            useless (paper Fig. 2).
        phase_noise_rad: Std-dev of the per-antenna phase measurement noise
            ``Z`` (radians).
        antenna_noise_factors: Per-antenna multipliers on measurement noise.
            Real boards have unequal RF chains; the default makes the third
            antenna noisiest, which is why the paper's antenna pair 1&2
            wins in Fig. 21.
        amplitude_noise: Std-dev of multiplicative amplitude noise.
        common_gain_jitter: Std-dev of the per-packet *common* gain
            fluctuation (AGC steps, transmit-power control).  It affects
            every antenna and subcarrier of a packet identically, which
            is precisely why the inter-antenna amplitude *ratio* is far
            more stable than either amplitude (paper Fig. 8).
        outlier_probability: Per-packet probability of an amplitude
            outlier -- a whole-packet gain excursion (beyond the 3-sigma
            band, paper Fig. 3).  Common across antennas (an AGC glitch
            rescales the entire report), so the ratio cancels it; the
            3-sigma rejection still matters for single-antenna uses.
        outlier_magnitude_range: Multiplicative outlier magnitude range.
        impulse_probability: Per-(packet, antenna) probability of an
            impulse event -- a short time-domain burst whose FFT adds
            noise comparable to the signal across all subcarriers of that
            packet (paper Fig. 3).
        impulse_magnitude: Impulse amplitude relative to the antenna's
            mean CSI magnitude.
        quantizer: Int8 report quantiser.
    """

    sfo_pbd_slope_range: float = 0.08
    cfo_full_circle: bool = True
    phase_noise_rad: float = 0.04
    antenna_noise_factors: tuple[float, ...] = (1.0, 1.05, 1.65)
    amplitude_noise: float = 0.012
    common_gain_jitter: float = 0.15
    outlier_probability: float = 0.03
    outlier_magnitude_range: tuple[float, float] = (1.6, 3.0)
    impulse_probability: float = 0.10
    impulse_magnitude: float = 0.35
    quantizer: IntelQuantizer = field(default_factory=IntelQuantizer)

    def __post_init__(self) -> None:
        if self.sfo_pbd_slope_range < 0:
            raise ValueError("sfo_pbd_slope_range must be >= 0")
        if (
            self.phase_noise_rad < 0
            or self.amplitude_noise < 0
            or self.common_gain_jitter < 0
        ):
            raise ValueError("noise std-devs must be >= 0")
        if not 0 <= self.outlier_probability <= 1:
            raise ValueError(
                f"outlier_probability must be in [0,1], got "
                f"{self.outlier_probability}"
            )
        if not 0 <= self.impulse_probability <= 1:
            raise ValueError(
                f"impulse_probability must be in [0,1], got "
                f"{self.impulse_probability}"
            )
        lo, hi = self.outlier_magnitude_range
        if not 1.0 <= lo <= hi:
            raise ValueError(
                f"invalid outlier magnitude range {self.outlier_magnitude_range}"
            )
        if any(f < 0 for f in self.antenna_noise_factors):
            raise ValueError("antenna noise factors must be >= 0")

    def noise_factor(self, antenna: int) -> float:
        """Noise multiplier for antenna index ``antenna`` (cycled)."""
        factors = self.antenna_noise_factors
        return factors[antenna % len(factors)]

    def with_overrides(self, **changes) -> "HardwareProfile":
        """A copy of this profile with some fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def clock_phase_error(
        self, num_subcarriers: int, rng: np.random.Generator
    ) -> np.ndarray:
        """One packet's common clock phase error, shape ``(K,)``.

        ``phi_err[k] = k * (lam_b + lam_s) + beta`` -- identical for every
        antenna on the board (shared clocks), random across packets.
        """
        slope = rng.uniform(-self.sfo_pbd_slope_range, self.sfo_pbd_slope_range)
        offset = rng.uniform(0.0, 2.0 * math.pi) if self.cfo_full_circle else 0.0
        k = np.arange(num_subcarriers, dtype=float)
        return k * slope + offset

    def apply_to_packet(
        self, clean_csi: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Corrupt one packet's clean channel matrix.

        Order matters and mirrors a real receive chain: clock phase error
        (baseband processing), per-antenna measurement noise, amplitude
        disturbances (outliers / impulses in the reported magnitudes),
        then report quantisation.
        """
        csi = np.asarray(clean_csi, dtype=complex)
        num_sc, num_ant = csi.shape

        # 1. Clock errors: common across antennas (paper Eq. 5).
        clock = self.clock_phase_error(num_sc, rng)
        csi = csi * np.exp(1j * clock)[:, None]

        # 2. Per-antenna measurement noise Z: phase jitter plus
        #    multiplicative amplitude noise, scaled per RF chain.
        factors = np.array(
            [self.noise_factor(a) for a in range(num_ant)], dtype=float
        )
        phase_z = rng.normal(0.0, self.phase_noise_rad, size=csi.shape)
        amp_z = rng.normal(0.0, self.amplitude_noise, size=csi.shape)
        csi = csi * (1.0 + amp_z * factors[None, :])
        csi = csi * np.exp(1j * phase_z * factors[None, :])

        # 3. Common-mode gain: per-packet AGC / Tx-power fluctuation plus
        #    rare whole-packet outlier excursions.  Identical across
        #    antennas, so the amplitude ratio cancels it (Fig. 8).
        if self.common_gain_jitter > 0:
            csi = csi * (1.0 + rng.normal(0.0, self.common_gain_jitter))
        if self.outlier_probability > 0 and rng.random() < self.outlier_probability:
            lo, hi = self.outlier_magnitude_range
            magnitude = rng.uniform(lo, hi)
            if rng.random() < 0.5:
                magnitude = 1.0 / magnitude
            csi = csi * magnitude

        # 4. Impulse noise: a short time-domain burst hitting one
        #    antenna's receive chain during one packet.  Its FFT spreads
        #    pseudo-randomly over all subcarriers ("weakly correlated at
        #    different frequencies", paper Sec. III-C), and in the
        #    per-subcarrier *time series* it is an isolated spike -- the
        #    case the wavelet correlation denoiser is built for.
        if self.impulse_probability > 0:
            for a in range(num_ant):
                if rng.random() >= self.impulse_probability:
                    continue
                level = float(np.mean(np.abs(csi[:, a])))
                if level == 0.0:
                    level = 1.0
                scale = self.impulse_magnitude * level
                burst = scale * (
                    rng.standard_normal(num_sc)
                    + 1j * rng.standard_normal(num_sc)
                ) / math.sqrt(2.0)
                csi[:, a] = csi[:, a] + burst

        # 5. Report quantisation.
        return self.quantizer.apply(csi)

    # ------------------------------------------------------------------
    # Batched application (vectorised capture path)
    # ------------------------------------------------------------------

    def draw_packet_impairments(
        self, num_subcarriers: int, num_antennas: int, rng: np.random.Generator
    ) -> "PacketImpairmentDraws":
        """Consume one packet's worth of impairment randomness.

        Draws from ``rng`` in *exactly* the order :meth:`apply_to_packet`
        does, without touching any CSI.  This lets the simulator separate
        the sequential RNG stream (which fixes the seed -> trace mapping)
        from the arithmetic, which can then run vectorised over all
        packets at once.
        """
        slope = rng.uniform(
            -self.sfo_pbd_slope_range, self.sfo_pbd_slope_range
        )
        offset = (
            rng.uniform(0.0, 2.0 * math.pi) if self.cfo_full_circle else 0.0
        )
        shape = (num_subcarriers, num_antennas)
        phase_z = rng.normal(0.0, self.phase_noise_rad, size=shape)
        amp_z = rng.normal(0.0, self.amplitude_noise, size=shape)
        common_gain = (
            1.0 + rng.normal(0.0, self.common_gain_jitter)
            if self.common_gain_jitter > 0
            else 1.0
        )
        outlier_mult = 1.0
        if self.outlier_probability > 0 and rng.random() < self.outlier_probability:
            lo, hi = self.outlier_magnitude_range
            magnitude = rng.uniform(lo, hi)
            if rng.random() < 0.5:
                magnitude = 1.0 / magnitude
            outlier_mult = magnitude
        impulses: list[tuple[int, np.ndarray]] = []
        if self.impulse_probability > 0:
            for a in range(num_antennas):
                if rng.random() >= self.impulse_probability:
                    continue
                burst = rng.standard_normal(num_subcarriers) + 1j * (
                    rng.standard_normal(num_subcarriers)
                )
                impulses.append((a, burst))
        return PacketImpairmentDraws(
            clock_slope=slope,
            clock_offset=offset,
            phase_z=phase_z,
            amp_z=amp_z,
            common_gain=common_gain,
            outlier_mult=outlier_mult,
            impulses=impulses,
        )

    def apply_to_packets(
        self, clean_csi: np.ndarray, draws: list["PacketImpairmentDraws"]
    ) -> np.ndarray:
        """Batched :meth:`apply_to_packet` over a block ``(M, K, A)``.

        ``draws`` must come from :meth:`draw_packet_impairments`, one entry
        per packet.  Identical maths to the scalar path, reassociated only
        where IEEE multiplication by exactly 1.0 is a no-op, so results
        match the per-packet path to floating-point rounding.

        Dtype-preserving: a complex64 block runs every broadcast
        multiply in complex64 (the draw records stay float64; each
        modifier is built in float64 and rounded once before it meets
        the CSI, so reduced precision never compounds through the
        chain).  complex128 input reproduces the historical arithmetic
        bit-for-bit.
        """
        csi = np.array(clean_csi)
        if not np.issubdtype(csi.dtype, np.complexfloating):
            csi = csi.astype(complex)
        work = np.float32 if csi.dtype == np.complex64 else np.float64
        num_packets, num_sc, num_ant = csi.shape
        if len(draws) != num_packets:
            raise ValueError(
                f"{len(draws)} draw records for {num_packets} packets"
            )
        if num_packets == 0:
            return csi

        # 1. Clock errors (common across antennas).
        k = np.arange(num_sc, dtype=float)
        slopes = np.array([d.clock_slope for d in draws])
        offsets = np.array([d.clock_offset for d in draws])
        clock = (k[None, :] * slopes[:, None] + offsets[:, None]).astype(
            work, copy=False
        )
        csi = csi * unit_phasor(clock)[:, :, None]

        # 2. Per-antenna measurement noise.
        factors = np.array(
            [self.noise_factor(a) for a in range(num_ant)], dtype=float
        )
        phase_z = np.stack([d.phase_z for d in draws])
        amp_z = np.stack([d.amp_z for d in draws])
        csi = csi * (1.0 + amp_z * factors[None, None, :]).astype(
            work, copy=False
        )
        csi = csi * unit_phasor(
            (phase_z * factors[None, None, :]).astype(work, copy=False)
        )

        # 3. Common-mode gain and outlier excursions (x * 1.0 is exact for
        #    untriggered packets, so one broadcast multiply suffices).
        common = np.array([d.common_gain for d in draws], dtype=work)
        csi = csi * common[:, None, None]
        outlier = np.array([d.outlier_mult for d in draws], dtype=work)
        csi = csi * outlier[:, None, None]

        # 4. Impulse bursts: rare, applied sparsely.  The burst level
        #    depends on the already-corrupted packet, exactly as in the
        #    scalar path.
        for m, d in enumerate(draws):
            for a, burst in d.impulses:
                level = float(np.mean(np.abs(csi[m, :, a])))
                if level == 0.0:
                    level = 1.0
                scale = self.impulse_magnitude * level
                csi[m, :, a] = csi[m, :, a] + scale * burst / math.sqrt(2.0)

        # 5. Report quantisation.
        return self.quantizer.apply_batch(csi)


@dataclass(frozen=True)
class PacketImpairmentDraws:
    """One packet's pre-drawn impairment randomness.

    Produced by :meth:`HardwareProfile.draw_packet_impairments`; the field
    order mirrors the draw order of :meth:`HardwareProfile.apply_to_packet`
    so the sequential RNG stream is preserved exactly.
    """

    clock_slope: float
    clock_offset: float
    phase_z: np.ndarray
    amp_z: np.ndarray
    common_gain: float
    outlier_mult: float
    impulses: list[tuple[int, np.ndarray]]


def clean_profile() -> HardwareProfile:
    """A profile with every impairment disabled -- for unit tests."""
    return HardwareProfile(
        sfo_pbd_slope_range=0.0,
        cfo_full_circle=False,
        phase_noise_rad=0.0,
        antenna_noise_factors=(0.0, 0.0, 0.0),
        amplitude_noise=0.0,
        common_gain_jitter=0.0,
        outlier_probability=0.0,
        impulse_probability=0.0,
        quantizer=IntelQuantizer(enabled=False),
    )
