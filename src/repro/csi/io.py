"""CSI trace serialisation.

A real WiMi deployment would log Intel 5300 CSI to disk and process it
offline; this module provides the equivalent for simulated traces and for
interoperating with external captures:

* a compact binary format (``.wimi``) closely modelled on the CSI Tool's
  log layout — per-packet records with a little-endian header and int16
  I/Q samples under a per-packet scale,
* NumPy ``.npz`` round-tripping for bulk storage of whole sessions.

The binary format is intentionally lossy in the same way the hardware is
(16-bit I/Q under automatic gain), so quantities computed from a reloaded
trace match the original to CSI-Tool-like precision.
"""

from __future__ import annotations

import math
import struct
from pathlib import Path

import numpy as np

from repro.csi.collector import CaptureSession
from repro.csi.model import CsiPacket, CsiTrace
from repro.csi.quality import CorruptTraceError

#: Magic bytes and version of the binary trace format.
_MAGIC = b"WIMI"
_VERSION = 1

#: Per-packet record header: timestamp (f64), sequence (u32),
#: num_subcarriers (u16), num_antennas (u16), scale (f64).
_PACKET_HEADER = struct.Struct("<dIHHd")

#: File header: magic, version (u16), packet count (u32), carrier (f64).
_FILE_HEADER = struct.Struct("<4sHId")


def save_trace(trace: CsiTrace, path: str | Path) -> None:
    """Write a trace to a ``.wimi`` binary log.

    I/Q components are stored as int16 under a per-packet scale chosen so
    the largest component uses the full range (the CSI Tool's automatic
    gain, at 16 instead of 8 bits).
    """
    path = Path(path)
    with path.open("wb") as f:
        f.write(
            _FILE_HEADER.pack(_MAGIC, _VERSION, len(trace), trace.carrier_hz)
        )
        for packet in trace:
            csi = packet.csi
            peak = max(
                float(np.abs(csi.real).max(initial=0.0)),
                float(np.abs(csi.imag).max(initial=0.0)),
            )
            scale = peak / 32767.0 if peak > 0 else 1.0
            f.write(
                _PACKET_HEADER.pack(
                    packet.timestamp_s,
                    packet.sequence,
                    packet.num_subcarriers,
                    packet.num_antennas,
                    scale,
                )
            )
            quantised = np.empty(
                (packet.num_subcarriers, packet.num_antennas, 2),
                dtype=np.int16,
            )
            quantised[:, :, 0] = np.round(csi.real / scale)
            quantised[:, :, 1] = np.round(csi.imag / scale)
            f.write(quantised.tobytes())


def load_trace(path: str | Path) -> CsiTrace:
    """Read a trace written by :func:`save_trace`.

    Validates the structure as it goes and raises
    :class:`~repro.csi.quality.CorruptTraceError` (a ``ValueError``)
    carrying the byte offset of the damage on truncated or bit-flipped
    files, rather than leaking ``struct.error`` or returning garbage.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _FILE_HEADER.size:
        raise CorruptTraceError(
            f"{path}: truncated file header "
            f"({len(data)} of {_FILE_HEADER.size} bytes)",
            byte_offset=len(data),
        )
    magic, version, count, carrier = _FILE_HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise CorruptTraceError(
            f"{path}: not a WiMi trace (bad magic {magic!r} at offset 0)",
            byte_offset=0,
        )
    if version != _VERSION:
        raise CorruptTraceError(
            f"{path}: unsupported format version {version} "
            f"(expected {_VERSION})",
            byte_offset=4,
        )
    if not math.isfinite(carrier) or carrier <= 0:
        raise CorruptTraceError(
            f"{path}: corrupt carrier frequency {carrier!r} in file header",
            byte_offset=10,
        )
    offset = _FILE_HEADER.size
    packets: list[CsiPacket] = []
    shape: tuple[int, int] | None = None
    for index in range(count):
        if offset + _PACKET_HEADER.size > len(data):
            raise CorruptTraceError(
                f"{path}: truncated packet header for packet {index} "
                f"at offset {offset} (file has {len(data)} bytes, "
                f"header promised {count} packets)",
                byte_offset=offset,
            )
        timestamp, sequence, num_sc, num_ant, scale = _PACKET_HEADER.unpack_from(
            data, offset
        )
        if num_sc == 0 or num_ant == 0:
            raise CorruptTraceError(
                f"{path}: corrupt packet {index} header at offset {offset}: "
                f"empty dimensions ({num_sc} subcarriers x {num_ant} antennas)",
                byte_offset=offset,
            )
        if shape is None:
            shape = (num_sc, num_ant)
        elif (num_sc, num_ant) != shape:
            raise CorruptTraceError(
                f"{path}: corrupt packet {index} header at offset {offset}: "
                f"dimensions ({num_sc}, {num_ant}) disagree with the "
                f"trace's {shape}",
                byte_offset=offset,
            )
        if not math.isfinite(scale) or scale <= 0:
            raise CorruptTraceError(
                f"{path}: corrupt packet {index} header at offset {offset}: "
                f"bad quantisation scale {scale!r}",
                byte_offset=offset,
            )
        if not math.isfinite(timestamp):
            raise CorruptTraceError(
                f"{path}: corrupt packet {index} header at offset {offset}: "
                f"non-finite timestamp {timestamp!r}",
                byte_offset=offset,
            )
        offset += _PACKET_HEADER.size
        body = num_sc * num_ant * 2 * 2  # int16 I/Q
        if offset + body > len(data):
            raise CorruptTraceError(
                f"{path}: truncated packet body for packet {index} at "
                f"offset {offset} (need {body} bytes, "
                f"{len(data) - offset} remain)",
                byte_offset=offset,
            )
        raw = np.frombuffer(
            data, dtype=np.int16, count=num_sc * num_ant * 2, offset=offset
        ).reshape(num_sc, num_ant, 2)
        offset += body
        csi = (raw[:, :, 0].astype(float) + 1j * raw[:, :, 1]) * scale
        packets.append(
            CsiPacket(csi=csi, timestamp_s=timestamp, sequence=sequence)
        )
    return CsiTrace(packets=packets, carrier_hz=carrier, label=path.stem)


def save_session(session: CaptureSession, path: str | Path) -> None:
    """Write a paired session (baseline + target) to a ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        baseline=session.baseline.matrix(),
        target=session.target.matrix(),
        baseline_timestamps=session.baseline.timestamps(),
        target_timestamps=session.target.timestamps(),
        carrier_hz=np.array([session.baseline.carrier_hz]),
        material_name=np.array([session.material_name]),
    )


def load_session(path: str | Path) -> CaptureSession:
    """Read a session written by :func:`save_session`.

    The scene metadata is not serialised (it describes the simulator, not
    the measurement); the loaded session carries a default scene.
    """
    from repro.csi.simulator import SimulationScene

    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        required = {"baseline", "target", "carrier_hz", "material_name"}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"{path}: missing arrays {sorted(missing)}")
        carrier = float(archive["carrier_hz"][0])
        baseline = CsiTrace.from_matrix(archive["baseline"], carrier_hz=carrier)
        target = CsiTrace.from_matrix(archive["target"], carrier_hz=carrier)
        material = str(archive["material_name"][0])
    return CaptureSession(
        baseline=baseline,
        target=target,
        material_name=material,
        scene=SimulationScene(),
    )
