"""Trace quality assessment and gating.

Commodity Intel 5300 captures routinely arrive degraded: dropped or
reordered packets, duplicated sequence numbers, AGC-saturated bursts,
dead antennas, zeroed or NaN subcarriers.  The paper's chain silently
assumes complete finite CSI; this module is the boundary where that
assumption is *checked* instead of hoped for.

* :func:`assess_trace` measures a :class:`TraceQualityReport` -- per
  antenna / per subcarrier finite and live fractions, packet-loss rate
  from sequence gaps, duplicate/reorder counts, AGC clipping rate.
* :func:`gate_trace` / :func:`gate_session` apply configurable
  :class:`QualityThresholds` under a policy: ``"raise"`` (any
  degradation is an error), ``"degrade"`` (hard failures raise, soft
  issues warn and the pipeline adapts), ``"skip"`` (no gating).
* The typed taxonomy -- :class:`CorruptTraceError` for input that must
  not be processed, :class:`DegradedTraceWarning` for input that can be
  processed with fallbacks -- is shared by :mod:`repro.csi.io` (file
  level), the pipeline (stage level) and the serving layer (request
  level, surfaced as ``faults.*`` counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.csi.model import CsiTrace

#: Amplitudes below this count as "not live" (a dead or zeroed channel).
_LIVE_EPS = 1e-12

#: A component within this relative distance of the packet's peak counts
#: as sitting on the ADC rail.
_RAIL_TOLERANCE = 0.995

#: Fraction of a packet's I/Q components on the rail that flags the
#: packet as AGC-clipped.  Unclipped captures put only the peak
#: component there; a saturated burst flattens a large share.
_CLIPPED_COMPONENT_FRACTION = 0.2

#: Recognised degradation policies (pipeline-wide).
POLICIES = ("raise", "degrade", "skip")


class CorruptTraceError(ValueError):
    """The input is too damaged to process (hard gate).

    Raised by :mod:`repro.csi.io` on structurally broken ``.wimi``
    files (with the byte offset of the damage) and by the quality gate
    on traces below the configured thresholds.
    """

    def __init__(self, message: str, byte_offset: int | None = None):
        super().__init__(message)
        #: Byte offset of the damage for file-level corruption, else None.
        self.byte_offset = byte_offset


class DegradedTraceWarning(UserWarning):
    """The input is damaged but still usable with fallbacks (soft gate)."""


@dataclass(frozen=True)
class QualityThresholds:
    """Gating thresholds of the quality boundary.

    Attributes:
        min_packets: Fewer packets than this is a hard failure (the
            variance statistics need a window).
        max_loss_rate: Hard ceiling on the sequence-gap loss rate.
        max_clipping_rate: Hard ceiling on the AGC-clipped packet share.
        min_finite_fraction: Hard floor on the whole-trace finite
            fraction.
        min_channel_live_fraction: An antenna or subcarrier whose live
            (finite and non-zero) sample fraction falls below this is
            disqualified -- excluded from selection, reported as
            dead/bad.
        min_live_antennas: Hard floor on qualified antennas (the
            phase-difference calibration needs a pair).
        min_live_subcarriers: Hard floor on qualified subcarriers.
    """

    min_packets: int = 2
    max_loss_rate: float = 0.6
    max_clipping_rate: float = 0.5
    min_finite_fraction: float = 0.5
    min_channel_live_fraction: float = 0.75
    min_live_antennas: int = 2
    min_live_subcarriers: int = 2

    def __post_init__(self) -> None:
        if self.min_packets < 1:
            raise ValueError(f"min_packets must be >= 1, got {self.min_packets}")
        for name in (
            "max_loss_rate",
            "max_clipping_rate",
            "min_finite_fraction",
            "min_channel_live_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.min_live_antennas < 1:
            raise ValueError(
                f"min_live_antennas must be >= 1, got {self.min_live_antennas}"
            )
        if self.min_live_subcarriers < 1:
            raise ValueError(
                f"min_live_subcarriers must be >= 1, got "
                f"{self.min_live_subcarriers}"
            )

    def with_overrides(self, **changes) -> "QualityThresholds":
        """A copy of these thresholds with some fields replaced."""
        return replace(self, **changes)


#: Default thresholds used wherever none are configured.
DEFAULT_THRESHOLDS = QualityThresholds()


@dataclass(frozen=True)
class TraceQualityReport:
    """Measured quality of one CSI trace, gated against thresholds.

    All fractions are in ``[0, 1]``.  "Finite" counts entries whose real
    and imaginary parts are finite; "live" additionally requires a
    non-negligible magnitude (a zeroed antenna is finite but dead).

    Attributes:
        num_packets: Packets in the trace.
        num_antennas: Antennas per packet.
        num_subcarriers: Subcarriers per packet.
        finite_fraction: Finite share of all CSI entries.
        antenna_finite_fraction: Per-antenna finite share, shape ``(A,)``.
        subcarrier_finite_fraction: Per-subcarrier finite share, ``(K,)``,
            measured over live antennas only (a dead chain must read as
            an antenna failure, not as a whole-band one).
        antenna_live_fraction: Per-antenna live share, shape ``(A,)``.
        subcarrier_live_fraction: Per-subcarrier live share, ``(K,)``,
            over live antennas only.
        loss_rate: Missing share of the sequence-number span.
        sequence_gaps: Count of missing sequence numbers.
        duplicate_packets: Packets re-using an already-seen sequence.
        reordered_packets: Adjacent sequence inversions.
        clipped_packets: Packets flagged as AGC-saturated.
        clipping_rate: ``clipped_packets / num_packets``.
        thresholds: The thresholds the report was gated against.
    """

    num_packets: int
    num_antennas: int
    num_subcarriers: int
    finite_fraction: float
    antenna_finite_fraction: np.ndarray
    subcarrier_finite_fraction: np.ndarray
    antenna_live_fraction: np.ndarray
    subcarrier_live_fraction: np.ndarray
    loss_rate: float
    sequence_gaps: int
    duplicate_packets: int
    reordered_packets: int
    clipped_packets: int
    clipping_rate: float
    thresholds: QualityThresholds = field(default_factory=QualityThresholds)

    # -- channel qualification -----------------------------------------

    @property
    def dead_antennas(self) -> tuple[int, ...]:
        """Antennas below the per-channel live-fraction threshold."""
        floor = self.thresholds.min_channel_live_fraction
        return tuple(
            int(a)
            for a in np.flatnonzero(self.antenna_live_fraction < floor)
        )

    @property
    def bad_subcarriers(self) -> tuple[int, ...]:
        """Subcarriers below the per-channel live-fraction threshold."""
        floor = self.thresholds.min_channel_live_fraction
        return tuple(
            int(k)
            for k in np.flatnonzero(self.subcarrier_live_fraction < floor)
        )

    @property
    def live_antennas(self) -> tuple[int, ...]:
        """Antennas that pass qualification."""
        dead = set(self.dead_antennas)
        return tuple(a for a in range(self.num_antennas) if a not in dead)

    @property
    def live_subcarriers(self) -> tuple[int, ...]:
        """Subcarriers that pass qualification."""
        bad = set(self.bad_subcarriers)
        return tuple(k for k in range(self.num_subcarriers) if k not in bad)

    # -- gating ---------------------------------------------------------

    @property
    def hard_failures(self) -> tuple[str, ...]:
        """Threshold violations that make the trace unprocessable."""
        t = self.thresholds
        issues = []
        if self.num_packets < t.min_packets:
            issues.append(
                f"only {self.num_packets} packets (need >= {t.min_packets})"
            )
        if self.loss_rate > t.max_loss_rate:
            issues.append(
                f"loss rate {self.loss_rate:.0%} above {t.max_loss_rate:.0%}"
            )
        if self.clipping_rate > t.max_clipping_rate:
            issues.append(
                f"AGC clipping rate {self.clipping_rate:.0%} above "
                f"{t.max_clipping_rate:.0%}"
            )
        if self.finite_fraction < t.min_finite_fraction:
            issues.append(
                f"finite fraction {self.finite_fraction:.0%} below "
                f"{t.min_finite_fraction:.0%}"
            )
        if len(self.live_antennas) < t.min_live_antennas:
            issues.append(
                f"only {len(self.live_antennas)} live antennas "
                f"(need >= {t.min_live_antennas})"
            )
        if len(self.live_subcarriers) < t.min_live_subcarriers:
            issues.append(
                f"only {len(self.live_subcarriers)} live subcarriers "
                f"(need >= {t.min_live_subcarriers})"
            )
        return tuple(issues)

    @property
    def degradations(self) -> tuple[str, ...]:
        """Soft issues a degradation-aware pipeline can work around."""
        issues = []
        if self.dead_antennas:
            issues.append(f"dead antenna(s) {list(self.dead_antennas)}")
        if self.bad_subcarriers:
            issues.append(f"bad subcarrier(s) {list(self.bad_subcarriers)}")
        if self.sequence_gaps:
            issues.append(
                f"{self.sequence_gaps} lost packet(s) "
                f"({self.loss_rate:.0%} loss)"
            )
        if self.duplicate_packets:
            issues.append(f"{self.duplicate_packets} duplicated packet(s)")
        if self.reordered_packets:
            issues.append(f"{self.reordered_packets} reordered packet(s)")
        if self.clipped_packets:
            issues.append(
                f"{self.clipped_packets} AGC-clipped packet(s) "
                f"({self.clipping_rate:.0%})"
            )
        if self.finite_fraction < 1.0:
            issues.append(
                f"non-finite CSI entries "
                f"({1.0 - self.finite_fraction:.1%} of the trace)"
            )
        return tuple(issues)

    @property
    def is_corrupt(self) -> bool:
        """Whether the trace fails a hard gate."""
        return bool(self.hard_failures)

    @property
    def is_degraded(self) -> bool:
        """Whether the trace carries soft issues (fallbacks needed)."""
        return bool(self.degradations)

    @property
    def is_clean(self) -> bool:
        """Whether the trace is pristine."""
        return not self.is_corrupt and not self.is_degraded

    def to_dict(self) -> dict:
        """Plain-data rendering for JSON artifacts and metric snapshots."""
        return {
            "num_packets": self.num_packets,
            "num_antennas": self.num_antennas,
            "num_subcarriers": self.num_subcarriers,
            "finite_fraction": round(self.finite_fraction, 6),
            "loss_rate": round(self.loss_rate, 6),
            "sequence_gaps": self.sequence_gaps,
            "duplicate_packets": self.duplicate_packets,
            "reordered_packets": self.reordered_packets,
            "clipping_rate": round(self.clipping_rate, 6),
            "dead_antennas": list(self.dead_antennas),
            "bad_subcarriers": list(self.bad_subcarriers),
            "is_corrupt": self.is_corrupt,
            "is_degraded": self.is_degraded,
            "hard_failures": list(self.hard_failures),
            "degradations": list(self.degradations),
        }


@dataclass(frozen=True)
class SessionQualityReport:
    """Quality of a paired capture session (baseline + target)."""

    baseline: TraceQualityReport
    target: TraceQualityReport

    @property
    def dead_antennas(self) -> tuple[int, ...]:
        """Union of both traces' dead antennas."""
        return tuple(
            sorted(
                set(self.baseline.dead_antennas)
                | set(self.target.dead_antennas)
            )
        )

    @property
    def bad_subcarriers(self) -> tuple[int, ...]:
        """Union of both traces' disqualified subcarriers."""
        return tuple(
            sorted(
                set(self.baseline.bad_subcarriers)
                | set(self.target.bad_subcarriers)
            )
        )

    @property
    def is_corrupt(self) -> bool:
        """Whether either trace fails a hard gate."""
        return self.baseline.is_corrupt or self.target.is_corrupt

    @property
    def is_degraded(self) -> bool:
        """Whether either trace carries soft issues."""
        return self.baseline.is_degraded or self.target.is_degraded

    @property
    def issues(self) -> tuple[str, ...]:
        """All issues of both traces, prefixed by the trace they afflict."""
        out = []
        for prefix, report in (("baseline", self.baseline),
                               ("target", self.target)):
            for issue in report.hard_failures + report.degradations:
                out.append(f"{prefix}: {issue}")
        return tuple(out)

    def to_dict(self) -> dict:
        """Plain-data rendering (JSON artifacts, metric snapshots)."""
        return {
            "baseline": self.baseline.to_dict(),
            "target": self.target.to_dict(),
            "dead_antennas": list(self.dead_antennas),
            "bad_subcarriers": list(self.bad_subcarriers),
            "is_corrupt": self.is_corrupt,
            "is_degraded": self.is_degraded,
        }


# ----------------------------------------------------------------------
# Assessment
# ----------------------------------------------------------------------


def _fraction(mask: np.ndarray, axis: tuple[int, ...]) -> np.ndarray:
    """Mean of a boolean mask along ``axis`` without empty-slice warnings."""
    total = 1
    for a in axis:
        total *= mask.shape[a]
    if total == 0:
        return np.zeros([s for i, s in enumerate(mask.shape) if i not in axis])
    return mask.sum(axis=axis) / float(total)


def _clipped_packet_count(matrix: np.ndarray) -> int:
    """Packets whose I/Q components pile up on the per-packet ADC rail."""
    if matrix.shape[0] == 0:
        return 0
    components = np.stack([np.abs(matrix.real), np.abs(matrix.imag)], axis=-1)
    components = np.where(np.isfinite(components), components, 0.0)
    rails = components.max(axis=(1, 2, 3))  # per-packet peak component
    clipped = 0
    for m, rail in enumerate(rails):
        if rail <= _LIVE_EPS:
            continue
        at_rail = components[m] >= _RAIL_TOLERANCE * rail
        if at_rail.mean() >= _CLIPPED_COMPONENT_FRACTION:
            clipped += 1
    return clipped


def assess_trace(
    trace: CsiTrace, thresholds: QualityThresholds | None = None
) -> TraceQualityReport:
    """Measure a :class:`TraceQualityReport` for one trace.

    Pure measurement -- never raises on degraded input (that is
    :func:`gate_trace`'s job).  Deterministic in the trace content.
    """
    thresholds = thresholds if thresholds is not None else DEFAULT_THRESHOLDS
    matrix = trace.matrix()
    num_packets, num_sc, num_ant = (
        matrix.shape if matrix.ndim == 3 else (0, 0, 0)
    )

    finite = np.isfinite(matrix.real) & np.isfinite(matrix.imag)
    with np.errstate(invalid="ignore"):
        live = finite & (np.abs(np.where(finite, matrix, 0.0)) > _LIVE_EPS)
    finite_fraction = float(finite.mean()) if finite.size else 0.0

    # Per-antenna fractions see all subcarriers; per-subcarrier fractions
    # see *live antennas only*.  Otherwise one dead chain of three drags
    # every subcarrier to a 2/3 live fraction and a single antenna
    # failure masquerades as a whole-band failure.
    antenna_live = _fraction(live, axis=(0, 1))
    alive = antenna_live >= thresholds.min_channel_live_fraction
    if alive.any() and not alive.all():
        sc_finite = _fraction(finite[:, :, alive], axis=(0, 2))
        sc_live = _fraction(live[:, :, alive], axis=(0, 2))
    else:
        sc_finite = _fraction(finite, axis=(0, 2))
        sc_live = _fraction(live, axis=(0, 2))

    sequences = [int(p.sequence) for p in trace]
    unique = len(set(sequences))
    duplicates = len(sequences) - unique
    span = (max(sequences) - min(sequences) + 1) if sequences else 0
    gaps = max(span - unique, 0)
    loss_rate = gaps / span if span > 0 else 0.0
    reordered = sum(
        1 for a, b in zip(sequences, sequences[1:]) if b < a
    )

    clipped = _clipped_packet_count(matrix)

    return TraceQualityReport(
        num_packets=num_packets,
        num_antennas=num_ant,
        num_subcarriers=num_sc,
        finite_fraction=finite_fraction,
        antenna_finite_fraction=_fraction(finite, axis=(0, 1)),
        subcarrier_finite_fraction=sc_finite,
        antenna_live_fraction=antenna_live,
        subcarrier_live_fraction=sc_live,
        loss_rate=float(loss_rate),
        sequence_gaps=int(gaps),
        duplicate_packets=int(duplicates),
        reordered_packets=int(reordered),
        clipped_packets=int(clipped),
        clipping_rate=clipped / num_packets if num_packets else 0.0,
        thresholds=thresholds,
    )


def validate_policy(policy: str) -> str:
    """Check a degradation policy name."""
    if policy not in POLICIES:
        raise ValueError(
            f"degradation policy must be one of {POLICIES}, got {policy!r}"
        )
    return policy


def gate_report(
    report: TraceQualityReport | SessionQualityReport,
    policy: str = "degrade",
    label: str = "trace",
) -> TraceQualityReport | SessionQualityReport:
    """Apply a degradation policy to an already-measured report.

    * ``"raise"``: any hard failure *or* degradation raises
      :class:`CorruptTraceError`.
    * ``"degrade"``: hard failures raise; degradations emit a
      :class:`DegradedTraceWarning` and the caller is expected to adapt.
    * ``"skip"``: no gating at all.

    Returns the report for chaining.
    """
    import warnings

    validate_policy(policy)
    if policy == "skip":
        return report
    if isinstance(report, SessionQualityReport):
        failures = (
            report.baseline.hard_failures + report.target.hard_failures
        )
        issues = report.issues
    else:
        failures = report.hard_failures
        issues = report.hard_failures + report.degradations
    if failures:
        raise CorruptTraceError(
            f"{label} rejected by quality gate: " + "; ".join(failures)
        )
    if report.is_degraded:
        if policy == "raise":
            raise CorruptTraceError(
                f"{label} degraded (policy 'raise'): " + "; ".join(issues)
            )
        warnings.warn(
            DegradedTraceWarning(
                f"{label} degraded, applying fallbacks: " + "; ".join(issues)
            ),
            stacklevel=3,
        )
    return report


def gate_trace(
    trace: CsiTrace,
    thresholds: QualityThresholds | None = None,
    policy: str = "degrade",
    label: str = "trace",
) -> TraceQualityReport:
    """Assess one trace and apply a degradation policy to the result."""
    report = assess_trace(trace, thresholds)
    gate_report(report, policy, label=label or trace.label or "trace")
    return report


def assess_session(
    session, thresholds: QualityThresholds | None = None
) -> SessionQualityReport:
    """Assess both traces of a paired capture session."""
    return SessionQualityReport(
        baseline=assess_trace(session.baseline, thresholds),
        target=assess_trace(session.target, thresholds),
    )


def gate_session(
    session,
    thresholds: QualityThresholds | None = None,
    policy: str = "degrade",
    label: str = "session",
) -> SessionQualityReport:
    """Assess a session and apply a degradation policy to the result."""
    report = assess_session(session, thresholds)
    gate_report(report, policy, label=label)
    return report
