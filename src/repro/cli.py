"""Command-line interface: regenerate any paper figure from the terminal.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig15                # ten-liquid confusion matrix
    python -m repro fig17 --seed 3       # distance sweep, another deployment
    python -m repro all --seed 1         # everything, in order
    python -m repro bench-cache          # stage-cache hit rates

Every figure command prints the same rows/series the paper's figure
plots, via :mod:`repro.experiments.reporting`.  ``bench-cache`` runs a
small identification workload through the stage-graph engine twice and
reports per-stage memoization hit rates.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figures as F
from repro.experiments import reporting as R


def _fig02(args) -> str:
    data = F.phase_calibration_microbenchmark(seed=args.seed)
    return R.format_scalar_table(
        "Fig. 2/12 -- angular fluctuation (degrees)",
        {
            "raw phase": data["raw_spread_deg"],
            "antenna difference": data["pair_difference_spread_deg"],
            "good subcarriers": data["selected_spread_deg"],
        },
        unit="deg",
    )


def _fig03(args) -> str:
    return R.format_scalar_table(
        "Fig. 3 -- raw amplitude statistics",
        F.raw_amplitude_microbenchmark(seed=args.seed),
    )


def _fig06(args) -> str:
    data = F.subcarrier_variance_profile(seed=args.seed)
    lines = ["Fig. 6 -- phase-difference variance per subcarrier"]
    for k, v in enumerate(data["variances"]):
        marker = "  <-- selected" if k in data["selected_subcarriers"] else ""
        lines.append(f"  subcarrier {k:2d}: {v:8.5f}{marker}")
    return "\n".join(lines)


def _fig07(args) -> str:
    return R.format_scalar_table(
        "Fig. 7 -- denoiser RMSE vs ground truth",
        F.denoise_filter_comparison(seed=args.seed),
    )


def _fig08(args) -> str:
    return R.format_scalar_table(
        "Fig. 8 -- normalised amplitude variance",
        F.amplitude_ratio_variance(seed=args.seed),
    )


def _fig09(args) -> str:
    return R.format_cluster_table(
        "Fig. 9 -- Omega-bar clusters",
        F.material_feature_clusters(seed=args.seed),
    )


def _fig10(args) -> str:
    return R.format_pair_variance(
        "Fig. 10 -- antenna-pair stability",
        F.antenna_combination_variance(seed=args.seed),
    )


def _fig13(args) -> str:
    return R.format_scalar_table(
        "Fig. 13 -- accuracy by subcarrier set",
        F.subcarrier_choice_accuracy(seed=args.seed),
    )


def _fig14(args) -> str:
    data = F.denoise_ablation_accuracy(seed=args.seed)
    return R.format_scalar_table(
        "Fig. 14 -- accuracy with/without denoising",
        {k: v["overall"] for k, v in data.items()},
    )


def _fig15(args) -> str:
    data = F.ten_liquid_confusion(seed=args.seed)
    return R.format_confusion("Fig. 15 -- ten liquids (lab)", data["confusion"])


def _fig16(args) -> str:
    data = F.concentration_confusion(seed=args.seed)
    return R.format_confusion(
        "Fig. 16 -- saltwater concentrations", data["confusion"]
    )


def _fig17(args) -> str:
    return R.format_environment_series(
        "Fig. 17 -- accuracy vs Tx-Rx distance",
        F.distance_sweep(seed=args.seed),
        "distance",
    )


def _fig18(args) -> str:
    return R.format_environment_series(
        "Fig. 18 -- accuracy vs packet count",
        F.packet_sweep(seed=args.seed),
        "packets",
    )


def _fig19(args) -> str:
    return R.format_scalar_table(
        "Fig. 19 -- accuracy vs container diameter",
        F.container_size_sweep(seed=args.seed),
    )


def _fig20(args) -> str:
    data = F.container_material_comparison(seed=args.seed)
    return R.format_scalar_table(
        "Fig. 20 -- accuracy by container material",
        {k: v["overall"] for k, v in data.items()},
    )


def _fig21(args) -> str:
    return R.format_scalar_table(
        "Fig. 21 -- accuracy by antenna pair",
        F.antenna_pair_accuracy(seed=args.seed),
    )


def _bench_cache(args) -> str:
    """``repro bench-cache``: report stage-graph memoization hit rates.

    Runs a small fit + identify workload, then identifies the same test
    sessions a second time, and prints per-stage executions vs cache
    hits.  The second pass must execute zero denoiser/calibrator stages.
    """
    from repro.channel.materials import default_catalog
    from repro.core.feature import theory_reference_omegas
    from repro.core.pipeline import WiMi
    from repro.engine import StageCounter
    from repro.experiments.datasets import (
        collect_dataset,
        split_dataset,
        standard_scene,
    )

    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=6,
        num_packets=10, seed=args.seed,
    )
    train, test = split_dataset(dataset)

    wimi = WiMi(theory_reference_omegas(materials))
    counter = StageCounter()
    wimi.engine.add_hook(counter)

    wimi.fit(train)
    first = wimi.identify_batch(test)
    pass1_denoise = counter.executions.get("amplitude_denoise", 0)
    counter.reset()
    second = wimi.identify_batch(test)
    pass2_denoise = counter.executions.get("amplitude_denoise", 0)

    lines = [
        f"bench-cache -- stage memoization over one deployment "
        f"(seed {args.seed}, {len(train)} train / {len(test)} test)",
        f"  {'stage':<22} {'executions':>10} {'hits':>8} {'hit rate':>9}",
    ]
    for stage, stats in sorted(wimi.cache.snapshot().items()):
        lines.append(
            f"  {stage:<22} {stats['misses']:>10d} {stats['hits']:>8d} "
            f"{stats['hit_rate']:>8.1%}"
        )
    lines.append(
        f"  denoiser stage executions: first identify pass "
        f"{pass1_denoise}, repeat pass {pass2_denoise}"
    )
    lines.append(
        "  repeat-pass predictions identical: "
        f"{'yes' if first == second else 'NO'}"
    )
    return "\n".join(lines)


#: Command registry: name -> (runner, description).
COMMANDS = {
    "fig02": (_fig02, "phase calibration microbenchmark (also Fig. 12)"),
    "fig03": (_fig03, "raw amplitude noise statistics"),
    "fig06": (_fig06, "per-subcarrier phase-difference variance"),
    "fig07": (_fig07, "denoising method comparison"),
    "fig08": (_fig08, "amplitude-ratio variance"),
    "fig09": (_fig09, "material feature clusters"),
    "fig10": (_fig10, "antenna-combination variance"),
    "fig13": (_fig13, "subcarrier choice vs accuracy"),
    "fig14": (_fig14, "denoising ablation"),
    "fig15": (_fig15, "ten-liquid confusion matrix"),
    "fig16": (_fig16, "saltwater concentrations"),
    "fig17": (_fig17, "distance sweep"),
    "fig18": (_fig18, "packet-count sweep"),
    "fig19": (_fig19, "container-size sweep"),
    "fig20": (_fig20, "container-material comparison"),
    "fig21": (_fig21, "antenna-pair accuracy"),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate WiMi (ICDCS 2019) evaluation figures.",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["list", "all", "bench-cache"],
        help=(
            "figure to regenerate, 'list' to enumerate, 'all' for every "
            "figure, 'bench-cache' for stage-cache hit rates"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="deployment seed (default 1)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in COMMANDS)
        for name in sorted(COMMANDS):
            print(f"{name:<{width}}  {COMMANDS[name][1]}")
        print(f"{'bench-cache':<{width}}  stage-graph memoization hit rates")
        return 0
    if args.command == "bench-cache":
        print(_bench_cache(args))
        return 0
    names = sorted(COMMANDS) if args.command == "all" else [args.command]
    for name in names:
        runner, _ = COMMANDS[name]
        print(runner(args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
