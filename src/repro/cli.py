"""Command-line interface: figures, cache and serving benchmarks.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig15                # ten-liquid confusion matrix
    python -m repro fig17 --seed 3       # distance sweep, another deployment
    python -m repro all --seed 1         # every figure, in order
    python -m repro bench-cache          # stage-cache hit rates
    python -m repro serve-bench          # online-service load benchmark
    python -m repro perf-bench --smoke   # perf-regression suite (CI size)
    python -m repro stream-bench         # streaming vs batch latency
    python -m repro robustness-bench     # accuracy-under-fault sweeps
    python -m repro --version

Every figure command prints the same rows/series the paper's figure
plots, via :mod:`repro.experiments.reporting`.  ``bench-cache`` runs a
small identification workload through the stage-graph engine twice and
reports per-stage memoization hit rates; ``serve-bench`` replays a
synthetic multi-material workload through the
:class:`repro.serve.IdentificationService` and prints the serving
dashboard (throughput, latency percentiles, batch sizes, cache hit
rates, rejections/retries).

All subcommands live in one :data:`COMMANDS` registry; ``list`` and the
help text are generated from it, and an unknown subcommand exits with a
non-zero status and a usable message.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, NamedTuple

from repro.experiments import figures as F
from repro.experiments import reporting as R


def _package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - metadata may be absent
        import repro

        return repro.__version__


def _fig02(args) -> str:
    data = F.phase_calibration_microbenchmark(seed=args.seed)
    return R.format_scalar_table(
        "Fig. 2/12 -- angular fluctuation (degrees)",
        {
            "raw phase": data["raw_spread_deg"],
            "antenna difference": data["pair_difference_spread_deg"],
            "good subcarriers": data["selected_spread_deg"],
        },
        unit="deg",
    )


def _fig03(args) -> str:
    return R.format_scalar_table(
        "Fig. 3 -- raw amplitude statistics",
        F.raw_amplitude_microbenchmark(seed=args.seed),
    )


def _fig06(args) -> str:
    data = F.subcarrier_variance_profile(seed=args.seed)
    lines = ["Fig. 6 -- phase-difference variance per subcarrier"]
    for k, v in enumerate(data["variances"]):
        marker = "  <-- selected" if k in data["selected_subcarriers"] else ""
        lines.append(f"  subcarrier {k:2d}: {v:8.5f}{marker}")
    return "\n".join(lines)


def _fig07(args) -> str:
    return R.format_scalar_table(
        "Fig. 7 -- denoiser RMSE vs ground truth",
        F.denoise_filter_comparison(seed=args.seed),
    )


def _fig08(args) -> str:
    return R.format_scalar_table(
        "Fig. 8 -- normalised amplitude variance",
        F.amplitude_ratio_variance(seed=args.seed),
    )


def _fig09(args) -> str:
    return R.format_cluster_table(
        "Fig. 9 -- Omega-bar clusters",
        F.material_feature_clusters(seed=args.seed),
    )


def _fig10(args) -> str:
    return R.format_pair_variance(
        "Fig. 10 -- antenna-pair stability",
        F.antenna_combination_variance(seed=args.seed),
    )


def _fig13(args) -> str:
    return R.format_scalar_table(
        "Fig. 13 -- accuracy by subcarrier set",
        F.subcarrier_choice_accuracy(seed=args.seed),
    )


def _fig14(args) -> str:
    data = F.denoise_ablation_accuracy(seed=args.seed)
    return R.format_scalar_table(
        "Fig. 14 -- accuracy with/without denoising",
        {k: v["overall"] for k, v in data.items()},
    )


def _fig15(args) -> str:
    data = F.ten_liquid_confusion(seed=args.seed)
    return R.format_confusion("Fig. 15 -- ten liquids (lab)", data["confusion"])


def _fig16(args) -> str:
    data = F.concentration_confusion(seed=args.seed)
    return R.format_confusion(
        "Fig. 16 -- saltwater concentrations", data["confusion"]
    )


def _fig17(args) -> str:
    return R.format_environment_series(
        "Fig. 17 -- accuracy vs Tx-Rx distance",
        F.distance_sweep(seed=args.seed),
        "distance",
    )


def _fig18(args) -> str:
    return R.format_environment_series(
        "Fig. 18 -- accuracy vs packet count",
        F.packet_sweep(seed=args.seed),
        "packets",
    )


def _fig19(args) -> str:
    return R.format_scalar_table(
        "Fig. 19 -- accuracy vs container diameter",
        F.container_size_sweep(seed=args.seed),
    )


def _fig20(args) -> str:
    data = F.container_material_comparison(seed=args.seed)
    return R.format_scalar_table(
        "Fig. 20 -- accuracy by container material",
        {k: v["overall"] for k, v in data.items()},
    )


def _fig21(args) -> str:
    return R.format_scalar_table(
        "Fig. 21 -- accuracy by antenna pair",
        F.antenna_pair_accuracy(seed=args.seed),
    )


def _bench_cache(args) -> str:
    """``repro bench-cache``: report stage-graph memoization hit rates.

    Runs a small fit + identify workload, then identifies the same test
    sessions a second time, and prints per-stage executions vs cache
    hits.  The second pass must execute zero denoiser/calibrator stages.
    """
    from repro.channel.materials import default_catalog
    from repro.core.feature import theory_reference_omegas
    from repro.core.pipeline import WiMi
    from repro.engine import StageCounter
    from repro.experiments.datasets import (
        collect_dataset,
        split_dataset,
        standard_scene,
    )

    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=6,
        num_packets=10, seed=args.seed,
    )
    train, test = split_dataset(dataset)

    wimi = WiMi(theory_reference_omegas(materials))
    counter = StageCounter()
    wimi.engine.add_hook(counter)

    wimi.fit(train)
    first = wimi.identify_batch(test)
    pass1_denoise = counter.executions.get("amplitude_denoise", 0)
    counter.reset()
    second = wimi.identify_batch(test)
    pass2_denoise = counter.executions.get("amplitude_denoise", 0)

    lines = [
        f"bench-cache -- stage memoization over one deployment "
        f"(seed {args.seed}, {len(train)} train / {len(test)} test)",
        f"  {'stage':<22} {'executions':>10} {'memory':>8} {'disk':>6} "
        f"{'hit rate':>9}",
    ]
    for stage, stats in sorted(wimi.cache.snapshot().items()):
        lines.append(
            f"  {stage:<22} {stats['misses']:>10d} "
            f"{stats['memory_hits']:>8d} {stats['disk_hits']:>6d} "
            f"{stats['hit_rate']:>8.1%}"
        )
    lines.append(
        f"  denoiser stage executions: first identify pass "
        f"{pass1_denoise}, repeat pass {pass2_denoise}"
    )
    lines.append(
        "  repeat-pass predictions identical: "
        f"{'yes' if first == second else 'NO'}"
    )
    return "\n".join(lines)


def _serve_bench(args) -> str:
    """``repro serve-bench``: load-test the online identification service.

    Builds one deployment, fits a WiMi, then replays a repeated
    multi-material workload two ways: sequentially with a cold artifact
    cache per request (the one-shot, no-service status quo) and through
    :class:`repro.serve.IdentificationService` (bounded queue ->
    micro-batcher -> worker pool over one shared stage cache).  Prints
    throughput, latency percentiles, the batch-size distribution,
    per-stage cache hit rates and the rejection/retry counters.
    """
    import time

    from repro.channel.materials import default_catalog
    from repro.core.feature import theory_reference_omegas
    from repro.core.pipeline import WiMi
    from repro.engine import StageCache
    from repro.experiments.datasets import (
        collect_dataset,
        split_dataset,
        standard_scene,
    )
    from repro.serve import IdentificationService, ServiceConfig

    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=6,
        num_packets=10, seed=args.seed,
    )
    train, test = split_dataset(dataset)
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)

    # Repeated-material workload: every test session arrives args.repeat
    # times, interleaved, like many deployed links re-measuring.
    workload = [s for _ in range(args.repeat) for s in test]

    t0 = time.perf_counter()
    sequential = [
        wimi.clone_view(cache=StageCache()).identify(s) for s in workload
    ]
    sequential_s = time.perf_counter() - t0

    service = IdentificationService(
        wimi,
        ServiceConfig(
            queue_capacity=args.queue_capacity,
            max_batch_size=args.batch_size,
            num_workers=args.workers,
        ),
    )
    t0 = time.perf_counter()
    with service:
        handles = [service.submit(s) for s in workload]
        served = [h.result(timeout=60.0) for h in handles]
    served_s = time.perf_counter() - t0

    snap = service.snapshot()
    latency = snap["histograms"]["latency_ms"]
    batches = snap["histograms"]["batch_size"]
    counters = snap["counters"]

    lines = [
        f"serve-bench -- {len(workload)} requests "
        f"({len(test)} distinct sessions x{args.repeat}, seed {args.seed}), "
        f"{args.workers} workers, batch<= {args.batch_size}, "
        f"queue {args.queue_capacity}",
        f"  sequential (cold cache/request): {sequential_s:.3f}s  "
        f"({len(workload) / sequential_s:7.1f} req/s)",
        f"  service (micro-batched):         {served_s:.3f}s  "
        f"({len(workload) / served_s:7.1f} req/s)",
        f"  speedup: {sequential_s / served_s:.1f}x"
        f"  predictions identical: {'yes' if served == sequential else 'NO'}",
        f"  latency ms: p50 {latency['p50']:.2f}  p95 {latency['p95']:.2f}  "
        f"p99 {latency['p99']:.2f}  max {latency['max']:.2f}",
        f"  batches: {batches['count']} dispatched, mean size "
        f"{batches['mean']:.2f}, size histogram {batches['buckets']}",
        f"  requests: {counters['requests.completed']} completed, "
        f"{counters['requests.failed']} failed, "
        f"{counters['requests.rejected']} rejected, "
        f"{counters['requests.retries']} retries, "
        f"{counters['requests.expired']} expired",
        f"  cache tiers: {counters['cache.memory_hits']} memory hits, "
        f"{counters['cache.disk_hits']} disk hits, "
        f"{counters['cache.misses']} misses",
        "  stage cache (shared across workers):",
    ]
    for stage, stats in sorted(snap["stage_cache"].items()):
        lines.append(
            f"    {stage:<22} {stats['misses']:>6d} exec "
            f"{stats['memory_hits']:>7d} mem {stats['disk_hits']:>5d} disk "
            f"{stats['hit_rate']:>8.1%}"
        )
    if "artifact_store" in snap:
        store = snap["artifact_store"]
        lines.append(
            f"  artifact store: {store['hits']} hits, {store['misses']} "
            f"misses, {store['writes']} writes, {store['corrupt']} corrupt"
        )
    if args.json_out:
        import json as json_module
        from pathlib import Path

        Path(args.json_out).write_text(
            json_module.dumps(
                {
                    "schema": 1,
                    "benchmark": "serve",
                    "requests": len(workload),
                    "workers": args.workers,
                    "sequential_s": sequential_s,
                    "served_s": served_s,
                    "predictions_identical": served == sequential,
                    "metrics": snap,
                },
                indent=2, sort_keys=True, default=str,
            ) + "\n"
        )
        lines.append(f"  metrics snapshot written to {args.json_out}")
    return "\n".join(lines)


def _perf_bench(args) -> str:
    """``repro perf-bench``: run the fixed performance suite.

    Times the vectorised hot paths against their in-tree scalar
    references, writes/merges the JSON report (``--output``), and
    compares against the committed baseline (``--baseline``), exiting
    non-zero when any benchmark regressed beyond ``--max-regression``.
    """
    from repro.experiments import perfbench

    mode = "smoke" if args.smoke else "full"
    baseline = perfbench.load_report(args.baseline)
    results = perfbench.run_suite(
        mode, progress=lambda name: print(f"  running {name}...", flush=True)
    )
    perfbench.write_report(args.output, mode, results)
    regressions = perfbench.compare_to_baseline(
        results, baseline, mode, args.max_regression
    )
    report = perfbench.render_report(mode, results, regressions)
    report += f"\n  report written to {args.output}"
    if regressions:
        raise SystemExit(report)
    return report


def _stream_bench(args) -> str:
    """``repro stream-bench``: streaming-vs-batch latency suite.

    Replays test sessions packet-by-packet through the streaming
    extractor, measuring time-to-first-estimate and the bounded
    per-packet step against the trace-proportional batch identify
    latency.  Writes/merges the JSON report (``--stream-output``) and
    compares the gated timings against the committed baseline
    (``--stream-baseline``), exiting non-zero when any regressed beyond
    ``--stream-max-regression``.
    """
    from repro.experiments import streambench

    mode = "smoke" if args.smoke else "full"
    baseline = streambench.load_report(args.stream_baseline)
    results = streambench.run_suite(
        mode, progress=lambda name: print(f"  running {name}...", flush=True)
    )
    streambench.write_report(args.stream_output, mode, results)
    regressions = streambench.compare_to_baseline(
        results, baseline, mode, args.stream_max_regression
    )
    report = streambench.render_report(mode, results, regressions)
    report += f"\n  report written to {args.stream_output}"
    if regressions:
        raise SystemExit(report)
    return report


def _precision_bench(args) -> str:
    """``repro precision-bench``: float32-vs-float64 compute-path suite.

    Times the reduced-precision kernels (denoiser, simulator compute
    pass, shared Gram) against the default float64 paths, runs the
    paper identification scenario end to end at both precisions, and
    measures the ring-buffer window-assembly allocation peak against
    the list-of-arrays scheme.  Writes/merges the JSON report
    (``--precision-output``), compares timings against the committed
    baseline (``--precision-baseline``), and exits non-zero on any gate
    failure: float32 accuracy below float64, assembly allocating more
    than the old scheme, a full-suite kernel speedup under the floor,
    or a timing regression beyond ``--precision-max-regression``.
    """
    from repro.experiments import precisionbench

    mode = "smoke" if args.smoke else "full"
    baseline = precisionbench.load_report(args.precision_baseline)
    results = precisionbench.run_suite(
        mode, progress=lambda name: print(f"  running {name}...", flush=True)
    )
    precisionbench.write_report(args.precision_output, mode, results)
    regressions = precisionbench.compare_to_baseline(
        results, baseline, mode, args.precision_max_regression
    )
    failures = precisionbench.check_results(results, mode)
    report = precisionbench.render_report(mode, results, regressions, failures)
    report += f"\n  report written to {args.precision_output}"
    if regressions or failures:
        raise SystemExit(report)
    return report


def _bench_compare(args) -> str:
    """``repro bench-compare``: diff two benchmark JSON reports.

    Compares per-suite timings and speedups between two reports sharing
    the ``{"suites": {mode: {benchmark: ...}}}`` layout (e.g. a
    committed ``BENCH_PR9.json`` against a freshly written one),
    highlighting benchmarks whose timing moved beyond
    ``--compare-threshold`` in either direction.  Exits non-zero when
    any benchmark regressed.
    """
    from repro.experiments import perfbench

    old = perfbench.load_report(args.compare_old)
    new = perfbench.load_report(args.compare_new)
    missing = [
        path
        for path, report in (
            (args.compare_old, old),
            (args.compare_new, new),
        )
        if report is None
    ]
    if missing:
        raise SystemExit(
            "bench-compare: not a readable benchmark report: "
            + ", ".join(missing)
        )
    diff = perfbench.diff_reports(old, new, args.compare_threshold)
    report = perfbench.render_diff(diff, args.compare_old, args.compare_new)
    regressed = any(
        entry.get("status") == "regressed"
        for suite in diff["suites"].values()
        for entry in suite["benchmarks"].values()
    )
    if regressed:
        raise SystemExit(report)
    return report


def _robustness_bench(args) -> str:
    """``repro robustness-bench``: accuracy-under-fault sweeps.

    Runs the packet-loss and antenna-dropout sweeps (clean training,
    fault-injected test captures) and writes the JSON artifact
    (``--robustness-output``) committed alongside ``BENCH_PR4.json``.
    """
    from repro.experiments import robustness

    results = robustness.run_suite(
        workers=args.workers,
        seed=args.seed,
        progress=lambda name: print(f"  sweeping {name}...", flush=True),
    )
    robustness.write_report(args.robustness_output, results)
    report = robustness.render_report(results)
    report += f"\n  report written to {args.robustness_output}"
    return report


def _store(args) -> str:
    """``repro store``: inspect (and optionally gc) the artifact store.

    Prints total and per-stage entry counts, byte sizes, and stored
    array dtypes of the content-addressed store at ``--store-path``;
    ``--gc`` additionally prunes stale temp files and entries that
    fail integrity verification.
    """
    from repro.persist.store import ArtifactStore

    store = ArtifactStore(args.store_path)
    stats = store.stats()
    lines = [
        f"artifact store at {stats['root']}",
        f"  {stats['entries']} entries, {stats['bytes']} bytes",
    ]
    if stats["quarantine"]["entries"]:
        lines.append(
            f"  quarantine: {stats['quarantine']['entries']} entr(ies), "
            f"{stats['quarantine']['bytes']} bytes"
        )
    if stats["stages"]:
        width = max(len(s) for s in stats["stages"])
        for stage, info in stats["stages"].items():
            dtypes = ", ".join(
                f"{dtype} x{count}"
                for dtype, count in info.get("dtypes", {}).items()
            )
            lines.append(
                f"  {stage:<{width}}  {info['entries']:>6d} entries  "
                f"{info['bytes']:>10d} bytes"
                + (f"  [{dtypes}]" if dtypes else "")
            )
    else:
        lines.append("  (empty)")
    if args.gc:
        removed = store.gc()
        lines.append(
            f"  gc: removed {removed['tmp_removed']} temp file(s), "
            f"{removed['corrupt_removed']} corrupt entr(ies), "
            f"{removed['quarantine_removed']} quarantined entr(ies)"
        )
    return "\n".join(lines)


def _warm_bench(args) -> str:
    """``repro warm-bench``: cold train-and-serve vs registry warm start.

    Populates the artifact store and model registry under
    ``--store-path``, restores a second pipeline the way a restarted
    process would, verifies bit-identical predictions with zero warm
    stage executions, and writes the committed JSON artifact
    (``--warm-output``).
    """
    from repro.experiments import warmbench

    root = args.store_path
    results = warmbench.run_warm_bench(
        store_path=f"{root}/store",
        registry_path=f"{root}/registry",
        seed=args.seed,
        progress=lambda name: print(f"  {name}...", flush=True),
    )
    warmbench.write_report(args.warm_output, results)
    report = warmbench.render_report(results)
    report += f"\n  report written to {args.warm_output}"
    return report


def _cluster_bench(args) -> str:
    """``repro cluster-bench``: sharded worker processes vs the thread
    service, plus the SIGKILL-a-worker survival check.

    Runs the wide re-measurement workload through both serving stacks,
    kills one worker process mid-load, and writes the committed JSON
    artifact (``--cluster-output``).  ``--smoke`` shrinks the workload
    to CI size (correctness and survival only; the throughput regime is
    recorded in the report).
    """
    from repro.experiments import clusterbench

    repetitions = (
        clusterbench.SMOKE_REPETITIONS if args.smoke
        else clusterbench.DEFAULT_REPETITIONS
    )
    results = clusterbench.run_cluster_bench(
        seed=args.seed,
        repetitions=repetitions,
        workers=args.workers,
        progress=lambda name: print(f"  {name}...", flush=True),
    )
    clusterbench.write_report(args.cluster_output, results)
    report = clusterbench.render_report(results)
    report += f"\n  report written to {args.cluster_output}"
    return report


def _soak_bench(args) -> str:
    """``repro soak-bench``: chaos soak of the failure-control plane.

    Drives one sharded cluster through the scripted chaos schedule
    (kills, store bit-flips, load spikes, deadline abuse, hedging) and
    writes the committed JSON artifact (``--soak-output``).  Exits
    non-zero unless every gate holds: zero lost requests, fault-free
    predictions, and every resilience mechanism observed firing.
    ``--smoke`` shrinks the workload to CI size.
    """
    from repro.experiments import soakbench

    repetitions = (
        soakbench.SMOKE_REPETITIONS if args.smoke
        else soakbench.DEFAULT_REPETITIONS
    )
    results = soakbench.run_soak_bench(
        seed=args.seed,
        repetitions=repetitions,
        workers=args.workers,
        progress=lambda name: print(f"  {name}...", flush=True),
    )
    soakbench.write_report(args.soak_output, results)
    report = soakbench.render_report(results)
    report += f"\n  report written to {args.soak_output}"
    if not results["gates_passed"]:
        raise SystemExit(report)
    return report


class Command(NamedTuple):
    """One registered subcommand."""

    runner: Callable[[argparse.Namespace], str]
    description: str
    #: Whether ``repro all`` includes it (figures yes, benchmarks no).
    in_all: bool = True


#: The single subcommand registry: help listing and dispatch both come
#: from this table.
COMMANDS: dict[str, Command] = {
    "fig02": Command(_fig02, "phase calibration microbenchmark (also Fig. 12)"),
    "fig03": Command(_fig03, "raw amplitude noise statistics"),
    "fig06": Command(_fig06, "per-subcarrier phase-difference variance"),
    "fig07": Command(_fig07, "denoising method comparison"),
    "fig08": Command(_fig08, "amplitude-ratio variance"),
    "fig09": Command(_fig09, "material feature clusters"),
    "fig10": Command(_fig10, "antenna-combination variance"),
    "fig13": Command(_fig13, "subcarrier choice vs accuracy"),
    "fig14": Command(_fig14, "denoising ablation"),
    "fig15": Command(_fig15, "ten-liquid confusion matrix"),
    "fig16": Command(_fig16, "saltwater concentrations"),
    "fig17": Command(_fig17, "distance sweep"),
    "fig18": Command(_fig18, "packet-count sweep"),
    "fig19": Command(_fig19, "container-size sweep"),
    "fig20": Command(_fig20, "container-material comparison"),
    "fig21": Command(_fig21, "antenna-pair accuracy"),
    "bench-cache": Command(
        _bench_cache, "stage-graph memoization hit rates", in_all=False
    ),
    "serve-bench": Command(
        _serve_bench, "online identification service load benchmark",
        in_all=False,
    ),
    "cluster-bench": Command(
        _cluster_bench, "multi-process cluster vs single-process service",
        in_all=False,
    ),
    "perf-bench": Command(
        _perf_bench, "vectorised-kernel performance regression suite",
        in_all=False,
    ),
    "stream-bench": Command(
        _stream_bench, "streaming time-to-first-estimate vs batch latency",
        in_all=False,
    ),
    "precision-bench": Command(
        _precision_bench, "float32 compute paths vs float64 baselines",
        in_all=False,
    ),
    "bench-compare": Command(
        _bench_compare, "diff two benchmark JSON reports", in_all=False
    ),
    "robustness-bench": Command(
        _robustness_bench, "accuracy-under-fault sweeps (loss, dead antenna)",
        in_all=False,
    ),
    "store": Command(
        _store, "inspect/gc the persistent artifact store", in_all=False
    ),
    "warm-bench": Command(
        _warm_bench, "cold train-and-serve vs registry warm start",
        in_all=False,
    ),
    "soak-bench": Command(
        _soak_bench, "chaos soak of the failure-control plane",
        in_all=False,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate WiMi (ICDCS 2019) evaluation figures and run the "
            "engine/serving benchmarks."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["list", "all"],
        help=(
            "subcommand to run, 'list' to enumerate all of them, "
            "'all' for every figure"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="deployment seed (default 1)"
    )
    serve = parser.add_argument_group("serve-bench options")
    serve.add_argument(
        "--workers", type=int, default=2,
        help="service worker threads (default 2)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=8,
        help="micro-batch size limit (default 8)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64,
        help="bounded request queue depth (default 64)",
    )
    serve.add_argument(
        "--repeat", type=int, default=4,
        help="times each distinct session re-arrives (default 4)",
    )
    serve.add_argument(
        "--json-out", default=None,
        help="also write the full metrics snapshot as JSON to this path",
    )
    cluster = parser.add_argument_group("cluster-bench options")
    cluster.add_argument(
        "--cluster-output", default="BENCH_PR7.json",
        help="cluster-bench JSON artifact to write (default BENCH_PR7.json)",
    )
    soak = parser.add_argument_group("soak-bench options")
    soak.add_argument(
        "--soak-output", default="SOAK_PR10.json",
        help="soak-bench JSON artifact to write (default SOAK_PR10.json)",
    )
    perf = parser.add_argument_group("perf-bench options")
    perf.add_argument(
        "--smoke", action="store_true",
        help="run the small CI-sized suite instead of the full one",
    )
    perf.add_argument(
        "--output", default="BENCH_PR4.json",
        help="JSON report to write/merge (default BENCH_PR4.json)",
    )
    perf.add_argument(
        "--baseline", default="BENCH_PR4.json",
        help="committed report to compare against (default BENCH_PR4.json)",
    )
    perf.add_argument(
        "--max-regression", type=float, default=2.0,
        help="fail when new_s exceeds this multiple of the baseline's "
        "(default 2.0; <= 0 disables the gate)",
    )
    stream = parser.add_argument_group("stream-bench options")
    stream.add_argument(
        "--stream-output", default="BENCH_PR8.json",
        help="JSON report to write/merge (default BENCH_PR8.json)",
    )
    stream.add_argument(
        "--stream-baseline", default="BENCH_PR8.json",
        help="committed report to compare against (default BENCH_PR8.json)",
    )
    stream.add_argument(
        "--stream-max-regression", type=float, default=3.0,
        help="fail when a gated streaming timing exceeds this multiple of "
        "the baseline's (default 3.0; <= 0 disables the gate)",
    )
    precision = parser.add_argument_group("precision-bench options")
    precision.add_argument(
        "--precision-output", default="BENCH_PR9.json",
        help="JSON report to write/merge (default BENCH_PR9.json)",
    )
    precision.add_argument(
        "--precision-baseline", default="BENCH_PR9.json",
        help="committed report to compare against (default BENCH_PR9.json)",
    )
    precision.add_argument(
        "--precision-max-regression", type=float, default=2.0,
        help="fail when new_s exceeds this multiple of the baseline's "
        "(default 2.0; <= 0 disables the gate)",
    )
    compare = parser.add_argument_group("bench-compare options")
    compare.add_argument(
        "--compare-old", default="BENCH_PR4.json",
        help="older/committed report (default BENCH_PR4.json)",
    )
    compare.add_argument(
        "--compare-new", default="BENCH_PR9.json",
        help="newer report to diff against it (default BENCH_PR9.json)",
    )
    compare.add_argument(
        "--compare-threshold", type=float, default=1.25,
        help="flag benchmarks whose timing moved beyond this factor "
        "(default 1.25; <= 0 reports deltas without flagging)",
    )
    robust = parser.add_argument_group("robustness-bench options")
    robust.add_argument(
        "--robustness-output", default="ROBUSTNESS_PR5.json",
        help="JSON sweep artifact to write (default ROBUSTNESS_PR5.json)",
    )
    persist = parser.add_argument_group("store / warm-bench options")
    persist.add_argument(
        "--store-path", default=".wimi-store",
        help="artifact store / registry root directory "
        "(default .wimi-store)",
    )
    persist.add_argument(
        "--gc", action="store_true",
        help="store: also prune stale temp files and corrupt entries",
    )
    persist.add_argument(
        "--warm-output", default="BENCH_PR6.json",
        help="warm-bench JSON artifact to write (default BENCH_PR6.json)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Unknown subcommands exit non-zero (argparse status 2) with the
    valid choices spelled out on stderr.
    """
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in COMMANDS)
        for name in sorted(COMMANDS):
            print(f"{name:<{width}}  {COMMANDS[name].description}")
        return 0
    if args.command == "all":
        names = sorted(n for n, c in COMMANDS.items() if c.in_all)
    else:
        names = [args.command]
    for name in names:
        print(COMMANDS[name].runner(args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
