"""Standard scenes and dataset collection for the evaluation.

The paper's testbed (Section IV): router and laptop 2 m apart, beaker on
the LoS, three environments, 10 liquids, 20 repetitions per liquid, 20
packets per measurement.  These helpers reproduce that protocol with the
simulator and are shared by every figure's experiment and benchmark.
"""

from __future__ import annotations

from repro.channel.environment import make_environment
from repro.channel.geometry import CylinderTarget, LinkGeometry
from repro.channel.materials import Material, MaterialCatalog, default_catalog
from repro.channel.materials import PAPER_LIQUID_ORDER
from repro.csi.collector import DataCollector, SessionConfig
from repro.csi.impairments import HardwareProfile
from repro.csi.simulator import SimulationScene

#: The beaker never sits *exactly* on the LoS axis in a real deployment;
#: a couple of centimetres of lateral offset is what gives the receive
#: antennas their different path lengths ``D_i`` through the liquid
#: (Eq. 14-19 need ``D1 != D2``).
DEFAULT_LATERAL_OFFSET = 0.020

#: Paper defaults (Section IV / V).
DEFAULT_REPETITIONS = 20
DEFAULT_PACKETS = 20
DEFAULT_DISTANCE_M = 2.0


def paper_liquids(catalog: MaterialCatalog | None = None) -> list[Material]:
    """The ten Fig. 15 liquids, in the paper's A..J order."""
    catalog = catalog if catalog is not None else default_catalog()
    return [catalog.get(name) for name in PAPER_LIQUID_ORDER]


def standard_target(
    diameter: float = 0.143,
    wall_material: str = "plastic",
    lateral_offset: float = DEFAULT_LATERAL_OFFSET,
) -> CylinderTarget:
    """The paper's default beaker: 14.3 cm plastic, 23 cm tall."""
    return CylinderTarget(
        diameter=diameter,
        height=0.23,
        wall_material_name=wall_material,
        lateral_offset=lateral_offset,
    )


def standard_scene(
    environment: str = "lab",
    distance_m: float = DEFAULT_DISTANCE_M,
    target: CylinderTarget | None = None,
) -> SimulationScene:
    """A deployment scene with the paper's defaults."""
    return SimulationScene(
        geometry=LinkGeometry(distance=distance_m),
        environment=make_environment(environment),
        target=target if target is not None else standard_target(),
    )


def collect_dataset(
    materials: list[Material],
    scene: SimulationScene | None = None,
    repetitions: int = DEFAULT_REPETITIONS,
    num_packets: int = DEFAULT_PACKETS,
    seed: int = 0,
    profile: HardwareProfile | None = None,
) -> dict[str, list]:
    """Collect ``repetitions`` paired sessions per material.

    One call = one deployment: all sessions share a multipath realisation
    (the paper's static-room protocol).  Returns
    ``{material_name: [CaptureSession, ...]}``.
    """
    if not materials:
        raise ValueError("need at least one material")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    scene = scene if scene is not None else standard_scene()
    collector = DataCollector(scene, profile=profile, rng=seed)
    config = SessionConfig(num_packets=num_packets)
    return {
        material.name: collector.collect_many(material, repetitions, config)
        for material in materials
    }


def split_dataset(
    dataset: dict[str, list],
    train_fraction: float = 0.6,
) -> tuple[list, list]:
    """Per-material train/test split (first sessions train).

    Sessions within a material are exchangeable (same deployment), so a
    deterministic prefix split is an unbiased choice and keeps every
    experiment reproducible.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    train, test = [], []
    for sessions in dataset.values():
        if len(sessions) < 2:
            raise ValueError(
                "need at least 2 sessions per material to split"
            )
        cut = max(1, min(len(sessions) - 1, round(len(sessions) * train_fraction)))
        train.extend(sessions[:cut])
        test.extend(sessions[cut:])
    return train, test
