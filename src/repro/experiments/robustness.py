"""Accuracy-under-fault sweeps: how gracefully does WiMi degrade?

The paper's evaluation assumes clean captures; a deployed sniffer does
not get that luxury.  This module measures identification accuracy when
the *test* sessions are damaged by the :mod:`repro.csi.faults`
injectors while training stays clean -- the realistic asymmetry, since
the feature database is built once under supervision but identification
runs unattended.

Two sweeps, mirroring the acceptance scenarios of the robustness PR:

* :func:`packet_loss_sweep` -- accuracy vs. dropped-packet rate.
* :func:`antenna_dropout_sweep` -- accuracy with one RX chain dead
  (NaN or zeroed), per antenna, exercising the fallback-pair path.

A session the quality gate rejects (:class:`CorruptTraceError`) counts
as *wrong*: a deployment that refuses to answer has not identified the
target.  Rejections and degraded-but-answered sessions are reported
separately so the sweep distinguishes "still accurate", "accurate via
fallbacks" and "refused".

Scenarios are self-contained picklable payloads run through
:func:`repro.experiments.runner.parallel_map`, so ``workers > 1``
spreads a sweep across processes bit-identically to the serial path.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.channel.materials import default_catalog
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.faults import AntennaDropout, PacketLoss, TraceFault
from repro.csi.faults import inject_session
from repro.csi.quality import CorruptTraceError, DegradedTraceWarning
from repro.experiments.datasets import collect_dataset, split_dataset
from repro.experiments.runner import parallel_map

#: Committed artifact, sibling of ``BENCH_PR4.json``.
DEFAULT_OUTPUT = "ROBUSTNESS_PR5.json"

#: A small, well-separated material set keeps the sweep fast while the
#: clean-capture point still sits at or near 100% accuracy, so any drop
#: is attributable to the injected fault rather than task difficulty.
DEFAULT_MATERIALS = ("pure_water", "pepsi", "vinegar")

DEFAULT_LOSS_RATES = (0.0, 0.1, 0.2, 0.3)
DEFAULT_REPETITIONS = 8
DEFAULT_PACKETS = 16
DEFAULT_TRAIN_FRACTION = 0.5


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one fault scenario over one deployment's test split.

    Attributes:
        sweep: Which sweep produced this point.
        scenario: Human-readable fault description (e.g. ``loss=0.2``).
        parameter: The swept value (loss rate, or ``antenna:mode``).
        total: Test sessions evaluated.
        correct: Sessions identified as their true material.
        rejected: Sessions the quality gate refused
            (:class:`CorruptTraceError`); counted as wrong.
        degraded: Sessions answered *through* the degradation path
            (fallback pair / subcarrier exclusion engaged).
    """

    sweep: str
    scenario: str
    parameter: float | str
    total: int
    correct: int
    rejected: int
    degraded: int

    @property
    def accuracy(self) -> float:
        """Fraction of test sessions answered correctly (rejects count)."""
        return self.correct / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "sweep": self.sweep,
            "scenario": self.scenario,
            "parameter": self.parameter,
            "total": self.total,
            "correct": self.correct,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "accuracy": round(self.accuracy, 4),
        }


def _scenario_task(payload: tuple) -> ScenarioResult:
    """Picklable worker: one fault scenario, end to end.

    Collects its own deployment (deterministic in ``seed``), fits on the
    clean train split, injects ``faults`` into every test session under
    a per-session seed, and scores.  Fully self-contained so
    :func:`parallel_map` can ship it to a spawn-context process.
    """
    (sweep, scenario, parameter, material_names, faults, seed,
     repetitions, num_packets, train_fraction) = payload
    catalog = default_catalog()
    materials = [catalog.get(name) for name in material_names]
    dataset = collect_dataset(
        materials,
        repetitions=repetitions,
        num_packets=num_packets,
        seed=seed,
    )
    train, test = split_dataset(dataset, train_fraction)
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)

    correct = rejected = degraded = 0
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedTraceWarning)
        for index, session in enumerate(test):
            faulty = (
                inject_session(session, faults, seed=1000 * seed + index)
                if faults
                else session
            )
            try:
                features = wimi.extract(faulty)
            except CorruptTraceError:
                rejected += 1
                continue
            quality = features.quality
            if quality is not None and quality.is_degraded:
                degraded += 1
            if wimi.identify_measurement(features) == session.material_name:
                correct += 1
    return ScenarioResult(
        sweep=sweep,
        scenario=scenario,
        parameter=parameter,
        total=len(test),
        correct=correct,
        rejected=rejected,
        degraded=degraded,
    )


def _payload(
    sweep: str,
    scenario: str,
    parameter: float | str,
    faults: tuple[TraceFault, ...],
    materials: Sequence[str],
    seed: int,
    repetitions: int,
    num_packets: int,
    train_fraction: float,
) -> tuple:
    return (
        sweep, scenario, parameter, tuple(materials), faults, seed,
        repetitions, num_packets, train_fraction,
    )


def packet_loss_sweep(
    rates: Sequence[float] = DEFAULT_LOSS_RATES,
    materials: Sequence[str] = DEFAULT_MATERIALS,
    seed: int = 0,
    repetitions: int = DEFAULT_REPETITIONS,
    num_packets: int = DEFAULT_PACKETS,
    train_fraction: float = DEFAULT_TRAIN_FRACTION,
    workers: int = 1,
) -> list[ScenarioResult]:
    """Accuracy vs. dropped-packet rate on the test sessions."""
    payloads = [
        _payload(
            "packet_loss",
            f"loss={rate:g}",
            float(rate),
            (PacketLoss(rate),) if rate > 0 else (),
            materials, seed, repetitions, num_packets, train_fraction,
        )
        for rate in rates
    ]
    return parallel_map(_scenario_task, payloads, workers=workers)


def antenna_dropout_sweep(
    materials: Sequence[str] = DEFAULT_MATERIALS,
    modes: Sequence[str] = ("nan", "zero"),
    seed: int = 0,
    repetitions: int = DEFAULT_REPETITIONS,
    num_packets: int = DEFAULT_PACKETS,
    train_fraction: float = DEFAULT_TRAIN_FRACTION,
    workers: int = 1,
) -> list[ScenarioResult]:
    """Accuracy with one RX chain dead, per antenna and failure mode.

    The ``none`` scenario anchors the sweep; each other point kills one
    specific antenna on every test session (same chain on baseline and
    target, as a broken RX cable would), forcing identification through
    the fallback antenna-pair path.
    """
    payloads = [
        _payload(
            "antenna_dropout", "none", "none", (),
            materials, seed, repetitions, num_packets, train_fraction,
        )
    ]
    for mode in modes:
        for antenna in range(3):
            payloads.append(
                _payload(
                    "antenna_dropout",
                    f"antenna={antenna},mode={mode}",
                    f"{antenna}:{mode}",
                    (AntennaDropout(antenna=antenna, mode=mode),),
                    materials, seed, repetitions, num_packets,
                    train_fraction,
                )
            )
    return parallel_map(_scenario_task, payloads, workers=workers)


def run_suite(
    workers: int = 1,
    seed: int = 0,
    repetitions: int = DEFAULT_REPETITIONS,
    num_packets: int = DEFAULT_PACKETS,
    progress=None,
) -> dict:
    """Both sweeps; returns ``{sweep_name: [point dict, ...]}``."""
    suite = {}
    for name, sweep in (
        ("packet_loss", packet_loss_sweep),
        ("antenna_dropout", antenna_dropout_sweep),
    ):
        if progress is not None:
            progress(name)
        results = sweep(
            seed=seed,
            repetitions=repetitions,
            num_packets=num_packets,
            workers=workers,
        )
        suite[name] = [point.to_dict() for point in results]
    return suite


def write_report(path: str | Path, results: dict) -> dict:
    """Write the sweep artifact (sibling of ``BENCH_PR4.json``)."""
    report = {
        "schema": 1,
        "materials": list(DEFAULT_MATERIALS),
        "sweeps": results,
    }
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def render_report(results: dict) -> str:
    """Human-readable sweep table for the CLI."""
    lines = ["robustness sweeps (clean training, faulty test captures):"]
    for sweep, points in results.items():
        lines.append(f"  {sweep}:")
        for point in points:
            lines.append(
                f"    {point['scenario']:<22} accuracy "
                f"{point['accuracy']:>6.1%}  ({point['correct']}/"
                f"{point['total']} correct, {point['rejected']} rejected, "
                f"{point['degraded']} degraded)"
            )
    return "\n".join(lines)
