"""Evaluation harness: one function per paper figure.

:mod:`repro.experiments.datasets` builds the standard scenes and collects
paired capture sessions; :mod:`repro.experiments.runner` runs the
train/identify loop and scores it; :mod:`repro.experiments.figures` has
one entry point per evaluation figure of the paper (Fig. 2-21);
:mod:`repro.experiments.reporting` renders the same rows/series the paper
reports as text.
"""

from repro.experiments.datasets import (
    DEFAULT_LATERAL_OFFSET,
    collect_dataset,
    paper_liquids,
    split_dataset,
    standard_scene,
    standard_target,
)
from repro.experiments.runner import ExperimentResult, run_identification

__all__ = [
    "DEFAULT_LATERAL_OFFSET",
    "ExperimentResult",
    "collect_dataset",
    "paper_liquids",
    "run_identification",
    "split_dataset",
    "standard_scene",
    "standard_target",
]
