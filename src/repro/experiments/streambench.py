"""Streaming-vs-batch latency harness behind ``repro stream-bench``.

The batch pipeline cannot produce *anything* before the full trace is
captured and denoised, so its identify latency is proportional to the
trace length.  The streaming path
(:class:`repro.core.streaming.StreamingExtractor`) emits its first
Omega-bar estimate after one denoise window (``stream_window_size``
packets) and pays a bounded per-packet cost after that, so what this
bench measures per trace length is:

* ``time_to_first_estimate_s`` -- compute from the first *target*
  packet until ``estimate()`` first reports a finite Omega-bar.  The
  baseline trace is captured (empty beaker) before the target session
  starts, so the streaming path has digested it off the critical path
  by then; its ingest cost is reported separately as
  ``baseline_ingest_s``.  The batch number it is compared against is
  likewise the compute after all packets are present;
* ``last_window_ms`` -- the worst single-packet step (push + poll),
  i.e. the bounded incremental latency;
* ``finalize_s`` -- tail window + quality gate + classify at the end;
* ``batch_identify_s`` -- the cold full-trace ``identify`` the
  streaming path replaces.

Every run also verifies the acceptance contract: the finalized
streaming prediction equals the batch prediction on the same session.

Report format follows :mod:`repro.experiments.perfbench`: suites are
stored side by side in :data:`DEFAULT_OUTPUT` (committed at the repo
root) and a later run -- e.g. the CI ``perf-smoke`` job running
``repro stream-bench --smoke`` -- fails when a gated timing exceeds
``max_regression`` times the committed value.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.channel.materials import default_catalog
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.collector import DataCollector, SessionConfig
from repro.engine.cache import StageCache
from repro.experiments.datasets import (
    collect_dataset,
    split_dataset,
    standard_scene,
)

#: Report written by ``repro stream-bench`` and committed as the baseline.
DEFAULT_OUTPUT = "BENCH_PR8.json"

#: Default regression gate: fail when a gated timing exceeds this
#: multiple of the committed baseline's.  Looser than perf-bench's 2.0
#: because the gated quantities are millisecond-scale.
DEFAULT_MAX_REGRESSION = 3.0

#: Timings the regression gate checks (per trace length).
GATED_FIELDS = ("time_to_first_estimate_s", "finalize_s")

#: Per-suite workload sizes.  Smoke is sized for CI; full is the
#: committed reference workload sweeping trace lengths so the
#: trace-proportional batch latency is visible against the bounded
#: streaming one.
_SIZES = {
    "smoke": {
        "train_repetitions": 4,
        "train_packets": 8,
        "trace_lengths": (48,),
        "repeats": 3,
    },
    "full": {
        "train_repetitions": 6,
        "train_packets": 10,
        "trace_lengths": (60, 120, 200),
        "repeats": 3,
    },
}


def _workload(sizes: dict):
    """A fitted pipeline plus a collector for test traces of any length."""
    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]
    scene = standard_scene("lab")
    dataset = collect_dataset(
        materials,
        scene=scene,
        repetitions=sizes["train_repetitions"],
        num_packets=sizes["train_packets"],
        seed=0,
    )
    train, _ = split_dataset(dataset)
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)
    collector = DataCollector(scene, rng=1)
    return wimi, collector, catalog.get("pepsi")


def _stream_once(wimi: WiMi, session) -> dict:
    """One cold streaming replay; returns its timing breakdown."""
    view = wimi.clone_view(cache=StageCache())
    stream = view.streaming_extractor(
        scene=session.scene, material_name=session.material_name
    )
    t_base = time.perf_counter()
    stream.push_baseline(session.baseline)
    baseline_ingest_s = time.perf_counter() - t_base
    t0 = time.perf_counter()
    first_s = None
    first_packets = 0
    worst_step_s = 0.0
    for index, packet in enumerate(session.target.packets):
        t_step = time.perf_counter()
        stream.push_target(packet)
        estimate = stream.estimate()
        worst_step_s = max(worst_step_s, time.perf_counter() - t_step)
        if first_s is None and estimate.ready:
            first_s = time.perf_counter() - t0
            first_packets = index + 1
    t_fin = time.perf_counter()
    result = stream.finalize()
    finalize_s = time.perf_counter() - t_fin
    return {
        "baseline_ingest_s": baseline_ingest_s,
        "time_to_first_estimate_s": (
            first_s if first_s is not None else float("inf")
        ),
        "first_estimate_packets": first_packets,
        "last_window_ms": worst_step_s * 1000.0,
        "finalize_s": finalize_s,
        "stream_total_s": time.perf_counter() - t0,
        "label": result.label,
        "confidence": result.estimate.confidence,
    }


def bench_length(wimi: WiMi, collector, material, length: int,
                 repeats: int) -> dict:
    """Streaming vs batch on one trace length (best-of ``repeats``)."""
    session = collector.collect(
        material, SessionConfig(num_packets=length)
    )

    def run_batch() -> str:
        return wimi.clone_view(cache=StageCache()).identify(session)

    batch_label = run_batch()
    batch_s = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run_batch()
        batch_s = min(batch_s, time.perf_counter() - t0)

    best: dict | None = None
    for _ in range(max(1, repeats)):
        attempt = _stream_once(wimi, session)
        if (
            best is None
            or attempt["time_to_first_estimate_s"]
            < best["time_to_first_estimate_s"]
        ):
            best = attempt
    assert best is not None
    first = best["time_to_first_estimate_s"]
    return {
        "packets": length,
        "batch_identify_s": batch_s,
        "baseline_ingest_s": best["baseline_ingest_s"],
        "time_to_first_estimate_s": first,
        "first_estimate_packets": best["first_estimate_packets"],
        "last_window_ms": best["last_window_ms"],
        "finalize_s": best["finalize_s"],
        "stream_total_s": best["stream_total_s"],
        "speedup_first_estimate": (
            batch_s / first if first > 0 else float("inf")
        ),
        "predictions_identical": best["label"] == batch_label,
        "label": best["label"],
    }


# ----------------------------------------------------------------------
# Suite driver, report I/O and baseline comparison
# ----------------------------------------------------------------------


def run_suite(mode: str = "full", progress=None) -> dict:
    """Run the streaming bench at ``mode`` ("smoke" or "full") sizes."""
    if mode not in _SIZES:
        raise ValueError(f"mode must be one of {sorted(_SIZES)}, got {mode!r}")
    sizes = _SIZES[mode]
    wimi, collector, material = _workload(sizes)
    results = {}
    for length in sizes["trace_lengths"]:
        name = f"stream_len{length}"
        if progress is not None:
            progress(name)
        results[name] = bench_length(
            wimi, collector, material, length, sizes["repeats"]
        )
    return results


def load_report(path: str | Path) -> dict | None:
    """The committed report at ``path``, or None when absent/unreadable."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return report if isinstance(report.get("suites"), dict) else None


def write_report(path: str | Path, mode: str, results: dict) -> dict:
    """Write/merge the report at ``path`` and return it.

    Suites are stored side by side so a smoke-only run does not clobber
    the committed full-suite timings.
    """
    report = load_report(path) or {"schema": 1, "suites": {}}
    report["suites"][mode] = results
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def compare_to_baseline(
    results: dict,
    baseline: dict | None,
    mode: str,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[tuple[str, float]]:
    """Gated timings that regressed beyond ``max_regression``.

    Returns ``("bench.field", ratio)`` pairs; empty when there is no
    committed baseline for ``mode`` (first run) or nothing regressed.
    """
    if baseline is None or max_regression <= 0:
        return []
    committed = baseline.get("suites", {}).get(mode, {})
    regressions = []
    for name, current in results.items():
        reference = committed.get(name)
        if not reference:
            continue
        for field in GATED_FIELDS:
            committed_s = reference.get(field, 0)
            if not committed_s or committed_s <= 0:
                continue
            ratio = current[field] / committed_s
            if ratio > max_regression:
                regressions.append((f"{name}.{field}", ratio))
    return regressions


def render_report(
    mode: str, results: dict, regressions: list[tuple[str, float]]
) -> str:
    """Human-readable summary of one suite run."""
    lines = [
        f"stream-bench -- {mode} suite",
        f"  {'benchmark':<16} {'batch':>9} {'1st est':>9} "
        f"{'finalize':>9} {'step max':>9} {'match':>6}",
    ]
    for name, data in results.items():
        match = "yes" if data["predictions_identical"] else "NO"
        lines.append(
            f"  {name:<16} {data['batch_identify_s']:>8.3f}s "
            f"{data['time_to_first_estimate_s']:>8.3f}s "
            f"{data['finalize_s']:>8.3f}s "
            f"{data['last_window_ms']:>7.2f}ms {match:>6}"
        )
        lines.append(
            f"    first estimate after {data['first_estimate_packets']} "
            f"packets, {data['speedup_first_estimate']:.1f}x ahead of "
            "batch"
        )
    if regressions:
        for name, ratio in regressions:
            lines.append(
                f"  REGRESSION: {name} is {ratio:.2f}x slower than the "
                "committed baseline"
            )
    else:
        lines.append("  no regressions vs committed baseline")
    return "\n".join(lines)
