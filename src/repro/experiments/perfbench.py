"""Performance-regression harness behind ``repro perf-bench``.

Runs a fixed suite of benchmarks over the hot paths this codebase
vectorised -- batched wavelet denoising, the CSI simulator, batched
feature extraction, SMO training, the end-to-end identification sweep
and the online serving layer -- and writes the timings to a JSON report
(:data:`DEFAULT_OUTPUT`, committed at the repo root).

Each benchmark times the *current* implementation against its in-tree
scalar reference (``_reference_*``), so the report carries both absolute
timings and the speedup the vectorised kernels deliver, and it verifies
on every run that the two implementations still agree numerically.

The committed report doubles as the regression baseline: a later run
(e.g. the CI ``perf-smoke`` job) compares its own ``new_s`` timings
against the committed ones and fails when any benchmark got more than
``max_regression`` times slower.  Timings for the ``smoke`` and ``full``
suites are stored separately so a smoke run is only ever compared
against committed smoke numbers.

Latency percentiles for the serving benchmark come from the same
:class:`repro.serve.metrics.Histogram` instruments the service exports
at runtime -- the benchmark reads the service snapshot rather than
keeping its own sample buffers.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.channel.materials import default_catalog
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.simulator import CsiSimulator
from repro.dsp.wavelet_denoise import SpatiallySelectiveDenoiser
from repro.engine.cache import StageCache
from repro.experiments.datasets import (
    collect_dataset,
    split_dataset,
    standard_scene,
)
from repro.experiments.runner import mean_accuracy_over_seeds
from repro.ml.svm import BinarySVC

#: Report written by ``repro perf-bench`` and committed as the baseline.
DEFAULT_OUTPUT = "BENCH_PR4.json"

#: Default regression gate: fail when a benchmark's ``new_s`` exceeds
#: this multiple of the committed baseline's.
DEFAULT_MAX_REGRESSION = 2.0

#: Per-suite workload sizes.  Smoke is sized for CI (seconds overall but
#: still >= tens of milliseconds per benchmark, so a 2x gate is not
#: dominated by timer noise); full is the committed reference workload.
_SIZES = {
    "smoke": {
        "denoise_len": 128,
        "sim_packets": 60,
        "extract_repetitions": 4,
        "extract_packets": 8,
        "train_samples": 60,
        "identify_seeds": (0,),
        "identify_repetitions": 4,
        "identify_packets": 6,
        "serve_repeat": 2,
        "repeats": 1,
    },
    "full": {
        "denoise_len": 200,
        "sim_packets": 300,
        "extract_repetitions": 6,
        "extract_packets": 10,
        "train_samples": 140,
        "identify_seeds": (0, 1),
        "identify_repetitions": 6,
        "identify_packets": 10,
        "serve_repeat": 4,
        "repeats": 3,
    },
}


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@contextmanager
def _scalar_reference_kernels():
    """Swap the vectorised hot paths for their scalar references.

    Used to emulate the pre-vectorisation pipeline for the end-to-end
    benchmarks: the simulator falls back to its per-packet loop and the
    denoiser to per-column 1-D processing.
    """
    orig_capture = CsiSimulator.capture
    orig_denoise = SpatiallySelectiveDenoiser.denoise

    def column_denoise(self, x):
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            return self._reference_denoise(x)
        out = np.empty_like(x)
        for k in range(x.shape[1]):
            out[:, k] = self._reference_denoise(x[:, k])
        return out

    CsiSimulator.capture = CsiSimulator._reference_capture
    SpatiallySelectiveDenoiser.denoise = column_denoise
    try:
        yield
    finally:
        CsiSimulator.capture = orig_capture
        SpatiallySelectiveDenoiser.denoise = orig_denoise


# ----------------------------------------------------------------------
# Individual benchmarks
# ----------------------------------------------------------------------


def bench_denoise(sizes: dict) -> dict:
    """Batched 2-D denoiser vs the scalar per-column reference.

    Sized like a real trace: 90 channels (30 subcarriers x 3 antennas)
    over the packet counts the paper's sessions actually have -- the
    regime where per-column Python overhead dominates the scalar path.
    """
    rng = np.random.default_rng(0)
    num_samples, num_channels = sizes["denoise_len"], 90
    t = np.arange(num_samples)[:, None]
    x = 1.0 + 0.05 * np.sin(2 * np.pi * t / 64.0 + np.arange(num_channels))
    x += 0.01 * rng.standard_normal(x.shape)
    spikes = rng.random(x.shape) < 0.02
    x[spikes] += rng.standard_normal(int(spikes.sum())) * 5.0

    denoiser = SpatiallySelectiveDenoiser()
    batched = denoiser.denoise(x)
    reference = np.column_stack(
        [denoiser._reference_denoise(x[:, k]) for k in range(num_channels)]
    )
    new_s = _best_of(lambda: denoiser.denoise(x), sizes["repeats"])
    baseline_s = _best_of(
        lambda: [
            denoiser._reference_denoise(x[:, k]) for k in range(num_channels)
        ],
        sizes["repeats"],
    )
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "max_abs_diff": float(np.max(np.abs(batched - reference))),
        "shape": [num_samples, num_channels],
    }


def bench_simulate(sizes: dict) -> dict:
    """Vectorised simulator capture vs the per-packet reference loop."""
    catalog = default_catalog()
    water = catalog.get("pure_water")
    scene = standard_scene("lab")
    packets = sizes["sim_packets"]

    def run_new():
        return CsiSimulator(scene, rng=0).capture(water, packets)

    def run_reference():
        return CsiSimulator(scene, rng=0)._reference_capture(water, packets)

    new_csi = run_new().matrix()
    ref_csi = run_reference().matrix()
    scale = float(np.max(np.abs(ref_csi)))
    new_s = _best_of(run_new, sizes["repeats"])
    baseline_s = _best_of(run_reference, sizes["repeats"])
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "max_rel_diff": float(np.max(np.abs(new_csi - ref_csi)) / scale),
        "packets": packets,
    }


def _extract_workload(sizes: dict):
    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]
    dataset = collect_dataset(
        materials,
        scene=standard_scene("lab"),
        repetitions=sizes["extract_repetitions"],
        num_packets=sizes["extract_packets"],
        seed=0,
    )
    train, test = split_dataset(dataset)
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)
    return wimi, test


def bench_extract_batch(sizes: dict) -> dict:
    """Batched extraction vs per-session extraction on scalar kernels."""
    wimi, test = _extract_workload(sizes)

    def run_new():
        return wimi.clone_view(cache=StageCache()).extract_batch(test)

    def run_reference():
        view = wimi.clone_view(cache=StageCache())
        with _scalar_reference_kernels():
            return [view.extract(s) for s in test]

    new_features = run_new()
    ref_features = run_reference()
    max_diff = max(
        abs(a.omega_mean - b.omega_mean)
        for a, b in zip(new_features, ref_features)
    )
    new_s = _best_of(run_new, sizes["repeats"])
    baseline_s = _best_of(run_reference, sizes["repeats"])
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "max_omega_diff": float(max_diff),
        "sessions": len(test),
    }


def bench_train(sizes: dict) -> dict:
    """SMO with Gram cache + vectorised errors vs the reference loop."""
    rng = np.random.default_rng(0)
    n = sizes["train_samples"]
    half = n // 2
    x = np.vstack(
        [
            rng.normal(0.0, 1.0, size=(half, 4)),
            rng.normal(3.0, 1.0, size=(n - half, 4)),
        ]
    )
    y = np.concatenate([-np.ones(half), np.ones(n - half)])

    new_svc = BinarySVC().fit(x, y)
    ref_svc = BinarySVC()._reference_fit(x, y)
    agreement = float(np.mean(new_svc.predict(x) == ref_svc.predict(x)))
    new_s = _best_of(lambda: BinarySVC().fit(x, y), sizes["repeats"])
    baseline_s = _best_of(
        lambda: BinarySVC()._reference_fit(x, y), sizes["repeats"]
    )
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "train_agreement": agreement,
        "samples": n,
    }


def bench_identify(sizes: dict) -> dict:
    """End-to-end identification sweep, vectorised vs scalar kernels.

    The new path is the shipped one (vectorised simulator + batched
    denoiser + one shared stage cache across seeds); the baseline runs
    the same sweep on the scalar reference kernels without cache
    sharing, emulating the pre-vectorisation pipeline.
    """
    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "vinegar")]
    seeds = list(sizes["identify_seeds"])
    kwargs = dict(
        repetitions=sizes["identify_repetitions"],
        num_packets=sizes["identify_packets"],
    )

    def run_new():
        return mean_accuracy_over_seeds(materials, seeds, **kwargs)

    def run_reference():
        with _scalar_reference_kernels():
            return [
                mean_accuracy_over_seeds(
                    materials, [s], cache=StageCache(), **kwargs
                )[0]
                for s in seeds
            ]

    new_mean, new_accs = run_new()
    run_reference()
    new_s = _best_of(run_new, sizes["repeats"])
    baseline_s = _best_of(run_reference, sizes["repeats"])
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "mean_accuracy": new_mean,
        "seeds": len(seeds),
    }


def bench_serve(sizes: dict) -> dict:
    """Online service throughput vs sequential cold-cache requests.

    Latency percentiles are read from the service's own
    :class:`~repro.serve.metrics.Histogram` snapshot.
    """
    from repro.serve import IdentificationService, ServiceConfig

    wimi, test = _extract_workload(sizes)
    workload = [s for _ in range(sizes["serve_repeat"]) for s in test]

    t0 = time.perf_counter()
    sequential = [
        wimi.clone_view(cache=StageCache()).identify(s) for s in workload
    ]
    baseline_s = time.perf_counter() - t0

    service = IdentificationService(
        wimi, ServiceConfig(num_workers=2, max_batch_size=8)
    )
    t0 = time.perf_counter()
    with service:
        handles = [service.submit(s) for s in workload]
        served = [h.result(timeout=60.0) for h in handles]
    new_s = time.perf_counter() - t0

    latency = service.snapshot()["histograms"]["latency_ms"]
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "throughput_rps": len(workload) / new_s,
        "latency_ms": {
            k: latency[k] for k in ("p50", "p95", "p99", "max")
        },
        "predictions_identical": served == sequential,
        "requests": len(workload),
    }


_BENCHMARKS = (
    ("denoise", bench_denoise),
    ("simulate", bench_simulate),
    ("extract_batch", bench_extract_batch),
    ("train", bench_train),
    ("identify", bench_identify),
    ("serve", bench_serve),
)


# ----------------------------------------------------------------------
# Suite driver, report I/O and baseline comparison
# ----------------------------------------------------------------------


def run_suite(mode: str = "full", progress=None) -> dict:
    """Run every benchmark at ``mode`` ("smoke" or "full") sizes."""
    if mode not in _SIZES:
        raise ValueError(f"mode must be one of {sorted(_SIZES)}, got {mode!r}")
    sizes = _SIZES[mode]
    results = {}
    for name, bench in _BENCHMARKS:
        if progress is not None:
            progress(name)
        results[name] = bench(sizes)
    return results


def load_report(path: str | Path) -> dict | None:
    """The committed report at ``path``, or None when absent/unreadable."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return report if isinstance(report.get("suites"), dict) else None


def write_report(path: str | Path, mode: str, results: dict) -> dict:
    """Write/merge the report at ``path`` and return it.

    Suites are stored side by side so a smoke-only run does not clobber
    the committed full-suite timings.
    """
    report = load_report(path) or {"schema": 1, "suites": {}}
    report["suites"][mode] = results
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def compare_to_baseline(
    results: dict,
    baseline: dict | None,
    mode: str,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[tuple[str, float]]:
    """Benchmarks whose ``new_s`` regressed beyond ``max_regression``.

    Returns ``(name, ratio)`` pairs; empty when there is no committed
    baseline for ``mode`` (first run) or nothing regressed.
    """
    if baseline is None or max_regression <= 0:
        return []
    committed = baseline.get("suites", {}).get(mode, {})
    regressions = []
    for name, current in results.items():
        reference = committed.get(name)
        if not reference or reference.get("new_s", 0) <= 0:
            continue
        ratio = current["new_s"] / reference["new_s"]
        if ratio > max_regression:
            regressions.append((name, ratio))
    return regressions


#: ``bench-compare`` default: flag a benchmark whose ``new_s`` grew (or
#: shrank) by more than this factor between the two reports.
DEFAULT_DIFF_THRESHOLD = 1.25


def diff_reports(
    old: dict, new: dict, threshold: float = DEFAULT_DIFF_THRESHOLD
) -> dict:
    """Structured diff of two benchmark reports (``repro bench-compare``).

    Works on any report using the shared ``{"schema": 1, "suites":
    {mode: {benchmark: {...}}}}`` layout (``BENCH_PR4.json``,
    ``BENCH_PR9.json``, ...).  For every suite and benchmark present in
    both reports the diff carries the ``new_s`` ratio (new report over
    old) and the ``speedup`` delta when the entries record them;
    benchmarks and suites on one side only are labelled
    ``added``/``removed``.  A benchmark is ``regressed`` when its
    timing ratio exceeds ``threshold``, ``improved`` below
    ``1/threshold``, otherwise ``ok``.
    """
    suites: dict[str, dict] = {}
    old_suites = old.get("suites", {})
    new_suites = new.get("suites", {})
    for mode in sorted(set(old_suites) | set(new_suites)):
        a, b = old_suites.get(mode), new_suites.get(mode)
        if a is None or b is None:
            suites[mode] = {
                "status": "removed" if b is None else "added",
                "benchmarks": {},
            }
            continue
        benches: dict[str, dict] = {}
        for name in sorted(set(a) | set(b)):
            ea, eb = a.get(name), b.get(name)
            if ea is None or eb is None:
                benches[name] = {
                    "status": "removed" if eb is None else "added"
                }
                continue
            entry: dict = {"status": "ok"}
            old_t, new_t = ea.get("new_s"), eb.get("new_s")
            if (
                isinstance(old_t, (int, float))
                and isinstance(new_t, (int, float))
                and old_t > 0
            ):
                ratio = new_t / old_t
                entry.update(
                    {"old_s": old_t, "new_s": new_t, "time_ratio": ratio}
                )
                if threshold > 0 and ratio > threshold:
                    entry["status"] = "regressed"
                elif threshold > 0 and ratio < 1.0 / threshold:
                    entry["status"] = "improved"
            old_sp, new_sp = ea.get("speedup"), eb.get("speedup")
            if isinstance(old_sp, (int, float)) and isinstance(
                new_sp, (int, float)
            ):
                entry.update(
                    {
                        "old_speedup": old_sp,
                        "new_speedup": new_sp,
                        "speedup_delta": new_sp - old_sp,
                    }
                )
            benches[name] = entry
        suites[mode] = {"status": "both", "benchmarks": benches}
    return {"threshold": threshold, "suites": suites}


def render_diff(diff: dict, old_path: str, new_path: str) -> str:
    """Human-readable rendering of a :func:`diff_reports` result."""
    lines = [f"bench-compare -- {old_path} vs {new_path}"]
    regressed = 0
    for mode, suite in diff["suites"].items():
        if suite["status"] != "both":
            lines.append(
                f"  {mode}: suite only in "
                f"{new_path if suite['status'] == 'added' else old_path}"
            )
            continue
        lines.append(f"  {mode} suite:")
        lines.append(
            f"    {'benchmark':<18} {'old':>9} {'new':>9} {'ratio':>7} "
            f"{'speedup':>15}"
        )
        for name, entry in suite["benchmarks"].items():
            if entry["status"] in ("added", "removed"):
                lines.append(
                    f"    {name:<18} ({entry['status']} in {new_path})"
                    if entry["status"] == "added"
                    else f"    {name:<18} (removed in {new_path})"
                )
                continue
            if "time_ratio" not in entry:
                lines.append(f"    {name:<18} (no comparable timings)")
                continue
            speedups = (
                f"{entry['old_speedup']:>6.2f}x->{entry['new_speedup']:.2f}x"
                if "old_speedup" in entry
                else ""
            )
            flag = ""
            if entry["status"] == "regressed":
                flag = "  <-- REGRESSED"
                regressed += 1
            elif entry["status"] == "improved":
                flag = "  (improved)"
            lines.append(
                f"    {name:<18} {entry['old_s']:>8.3f}s "
                f"{entry['new_s']:>8.3f}s {entry['time_ratio']:>6.2f}x "
                f"{speedups:>15}{flag}"
            )
    lines.append(
        f"  {regressed} regression(s) beyond {diff['threshold']:.2f}x"
        if regressed
        else f"  no regressions beyond {diff['threshold']:.2f}x"
    )
    return "\n".join(lines)


def render_report(
    mode: str, results: dict, regressions: list[tuple[str, float]]
) -> str:
    """Human-readable summary of one suite run."""
    lines = [
        f"perf-bench -- {mode} suite",
        f"  {'benchmark':<14} {'new':>9} {'baseline':>9} {'speedup':>8}",
    ]
    for name, data in results.items():
        lines.append(
            f"  {name:<14} {data['new_s']:>8.3f}s {data['baseline_s']:>8.3f}s "
            f"{data['speedup']:>7.2f}x"
        )
    serve = results.get("serve")
    if serve:
        latency = serve["latency_ms"]
        lines.append(
            f"  serve: {serve['throughput_rps']:.1f} req/s, latency ms "
            f"p50 {latency['p50']:.2f} p95 {latency['p95']:.2f} "
            f"p99 {latency['p99']:.2f}"
        )
    if regressions:
        for name, ratio in regressions:
            lines.append(
                f"  REGRESSION: {name} is {ratio:.2f}x slower than the "
                "committed baseline"
            )
    else:
        lines.append("  no regressions vs committed baseline")
    return "\n".join(lines)
