"""Text rendering of experiment outputs.

Each helper turns one figure-function's dict into the rows/series the
paper reports, as plain text suitable for benchmark logs and
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.ml.validation import ConfusionMatrix


def format_scalar_table(title: str, rows: dict, unit: str = "") -> str:
    """Render ``{label: number}`` as an aligned two-column table."""
    if not rows:
        raise ValueError("no rows to format")
    width = max(len(str(k)) for k in rows)
    lines = [title]
    for key, value in rows.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {str(key):<{width}}  {value:8.3f}{suffix}")
    return "\n".join(lines)


def format_series(title: str, series: list[tuple], x_label: str, y_label: str) -> str:
    """Render ``[(x, y), ...]`` as an aligned series table."""
    lines = [title, f"  {x_label:>10}  {y_label:>10}"]
    for x, y in series:
        lines.append(f"  {x:>10.3g}  {y:>10.3f}")
    return "\n".join(lines)


def format_confusion(title: str, confusion: ConfusionMatrix) -> str:
    """Render a confusion matrix like the paper's Fig. 15/16."""
    return f"{title}\n{confusion.render()}\n  overall accuracy: {confusion.accuracy:.3f}"


def format_cluster_table(title: str, clusters: dict) -> str:
    """Render Fig. 9 style per-material feature clusters."""
    lines = [title, f"  {'material':<16} {'measured':>10} {'std':>8} {'theory':>8}"]
    for name, stats in clusters.items():
        lines.append(
            f"  {name:<16} {stats['mean']:>10.4f} {stats['std']:>8.4f} "
            f"{stats['theory']:>8.4f}"
        )
    return "\n".join(lines)


def format_environment_series(title: str, data: dict, x_label: str) -> str:
    """Render Fig. 17/18 style per-environment accuracy series."""
    lines = [title]
    for env, series in data.items():
        lines.append(f"  [{env}]")
        for x, acc in series:
            lines.append(f"    {x_label}={x:<6g} accuracy={acc:.3f}")
    return "\n".join(lines)


def format_pair_variance(title: str, data: dict) -> str:
    """Render Fig. 10 per-antenna-combination variances."""
    lines = [title, f"  {'pair':<8} {'phase var':>12} {'ratio var':>12}"]
    for pair, stats in data.items():
        label = f"{pair[0] + 1}&{pair[1] + 1}"
        lines.append(
            f"  {label:<8} {stats['phase_variance']:>12.5f} "
            f"{stats['ratio_variance']:>12.5f}"
        )
    return "\n".join(lines)
