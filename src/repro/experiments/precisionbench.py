"""Precision suite behind ``repro precision-bench``.

Times the float32 compute paths against the default float64 ones over
the hot kernels -- the batched wavelet denoiser, the simulator compute
pass and the shared RBF Gram -- and runs the paper's identification
scenario end to end at both precisions on the *same* captured dataset
to verify that dropping to float32 costs no accuracy.  A fifth
benchmark measures the allocation footprint of ring-buffer window
assembly against the list-of-arrays scheme it replaced, via
``tracemalloc``.

The committed report (:data:`DEFAULT_OUTPUT`) is both the performance
record required of the low-precision work (full-suite kernel speedups
of at least :data:`MIN_KERNEL_SPEEDUP`) and the CI gate: the
``perf-smoke`` job re-runs the smoke suite, compares timings against
the committed baseline via :func:`compare_to_baseline`, and fails on
any :func:`check_results` violation -- float32 end-to-end accuracy
below float64, ring-buffer assembly allocating more than the list
path, or (full mode only) a kernel speedup under the floor.

Numerical tolerances and their rationale (quantiser boundary flips,
float32 rounding, where float64 accumulation is retained) are
documented in DESIGN.md §14.

Report layout follows :mod:`repro.experiments.perfbench` -- in fact
the report I/O helpers are re-exported from there so both artifacts
share one schema -- but timings here compare *precisions* of one
implementation, not implementations: ``baseline_s`` is the float64
(or list-of-arrays) path and ``new_s`` the float32 (or ring-buffer)
path.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro.channel.materials import default_catalog
from repro.core.config import WiMiConfig
from repro.csi.simulator import CsiSimulator
from repro.dsp.ringbuffer import RowRingBuffer
from repro.dsp.wavelet_denoise import SpatiallySelectiveDenoiser
from repro.experiments.datasets import (
    collect_dataset,
    split_dataset,
    standard_scene,
)
from repro.experiments.perfbench import (
    _best_of,
    compare_to_baseline,
    load_report,
    write_report,
)
from repro.experiments.runner import fit_and_score
from repro.ml.kernels import pairwise_sq_dists, rbf_from_sq_dists

__all__ = [
    "DEFAULT_OUTPUT",
    "DEFAULT_MAX_REGRESSION",
    "MIN_KERNEL_SPEEDUP",
    "run_suite",
    "check_results",
    "compare_to_baseline",
    "load_report",
    "write_report",
    "render_report",
]

#: Report written by ``repro precision-bench`` and committed as baseline.
DEFAULT_OUTPUT = "BENCH_PR9.json"

#: Default timing-regression gate (vs the committed baseline's new_s).
DEFAULT_MAX_REGRESSION = 2.0

#: Required full-suite float32 speedup on the three compute kernels.
#: Sized from the measured wins at the paper-realistic workloads; the
#: smoke suite is too small for stable ratios and is not held to it.
MIN_KERNEL_SPEEDUP = 1.3

#: Benchmarks whose full-suite speedup must clear the floor.
_KERNEL_BENCHMARKS = ("denoise", "simulate", "gram")

#: Per-suite workload sizes.  The full sizes are the ones the committed
#: speedups were measured at: the denoiser at the paper's 200-packet
#: session shape (larger traces fall into the double-only FFT path and
#: the win shrinks), the simulator at a realistic capture burst, the
#: Gram at a training-set scale where sgemm dominates.
_SIZES = {
    "smoke": {
        "denoise_len": 128,
        "sim_packets": 60,
        "gram_samples": 200,
        "gram_features": 16,
        "identify_repetitions": 6,
        "identify_packets": 8,
        "ring_rows": 512,
        "ring_channels": 90,
        "ring_window": 16,
        "repeats": 1,
    },
    "full": {
        "denoise_len": 200,
        "sim_packets": 300,
        "gram_samples": 800,
        "gram_features": 64,
        "identify_repetitions": 8,
        "identify_packets": 10,
        "ring_rows": 2048,
        "ring_channels": 90,
        "ring_window": 16,
        "repeats": 3,
    },
}


# ----------------------------------------------------------------------
# Individual benchmarks
# ----------------------------------------------------------------------


def bench_denoise(sizes: dict) -> dict:
    """Batched denoiser: float32 working precision vs float64.

    Same trace-shaped workload as the perf-bench denoiser benchmark
    (packets x 90 channels); the float32 run feeds float32 input so no
    hidden upcast re-widens the intermediates.
    """
    rng = np.random.default_rng(0)
    num_samples, num_channels = sizes["denoise_len"], 90
    t = np.arange(num_samples)[:, None]
    x = 1.0 + 0.05 * np.sin(2 * np.pi * t / 64.0 + np.arange(num_channels))
    x += 0.01 * rng.standard_normal(x.shape)
    x32 = x.astype(np.float32)

    d64 = SpatiallySelectiveDenoiser(precision="float64")
    d32 = SpatiallySelectiveDenoiser(precision="float32")
    out64 = d64.denoise(x)
    out32 = d32.denoise(x32)
    scale = float(np.max(np.abs(out64)))
    baseline_s = _best_of(lambda: d64.denoise(x), sizes["repeats"])
    new_s = _best_of(lambda: d32.denoise(x32), sizes["repeats"])
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "output_dtype": str(out32.dtype),
        "max_rel_diff": float(np.max(np.abs(out32 - out64)) / scale),
        "shape": [num_samples, num_channels],
    }


def bench_simulate(sizes: dict) -> dict:
    """Simulator compute pass: float32 vs float64 working precision.

    The RNG draw pass is float64 at either precision (same seed, same
    randomness), so the diff below is pure compute-pass rounding plus
    int8 quantiser boundary flips -- see DESIGN.md §14.
    """
    catalog = default_catalog()
    water = catalog.get("pure_water")
    scene = standard_scene("lab")
    packets = sizes["sim_packets"]

    def run(precision):
        return CsiSimulator(scene, rng=0, precision=precision).capture(
            water, packets
        )

    csi64 = run("float64").matrix()
    csi32 = run("float32").matrix()
    scale = float(np.max(np.abs(csi64)))
    baseline_s = _best_of(lambda: run("float64"), sizes["repeats"])
    new_s = _best_of(lambda: run("float32"), sizes["repeats"])
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "max_rel_diff": float(np.max(np.abs(csi32 - csi64)) / scale),
        "packets": packets,
    }


def bench_gram(sizes: dict) -> dict:
    """Shared RBF Gram: float32 sgemm expansion vs float64 dgemm.

    This is the matrix :class:`repro.ml.multiclass._SharedGram` hands
    to the SMO solver (which always re-accumulates in float64); the
    benchmark times the expansion itself.
    """
    rng = np.random.default_rng(0)
    n, d = sizes["gram_samples"], sizes["gram_features"]
    x = rng.normal(size=(n, d))
    gamma = 1.0 / d

    def run(dtype):
        return rbf_from_sq_dists(pairwise_sq_dists(x, x, dtype=dtype), gamma)

    g64 = run(None)
    g32 = run(np.float32)
    baseline_s = _best_of(lambda: run(None), sizes["repeats"])
    new_s = _best_of(lambda: run(np.float32), sizes["repeats"])
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "max_abs_diff": float(np.max(np.abs(g32.astype(float) - g64))),
        "shape": [n, d],
    }


def bench_identify_accuracy(sizes: dict) -> dict:
    """Paper scenario end to end at both precisions, same dataset.

    One dataset is collected once (capture is part of the benchmark
    harness, not the system under test here), then trained and scored
    twice -- ``compute_precision="float64"`` and ``"float32"`` -- so
    the only difference is the pipeline's working precision.  The CI
    gate requires float32 accuracy to be no lower than float64's.
    """
    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]
    labels = [m.name for m in materials]
    dataset = collect_dataset(
        materials,
        scene=standard_scene("lab"),
        repetitions=sizes["identify_repetitions"],
        num_packets=sizes["identify_packets"],
        seed=0,
    )
    train, test = split_dataset(dataset)

    def run(precision):
        config = WiMiConfig(compute_precision=precision)
        return fit_and_score(train, test, labels, materials, config=config)

    t0 = time.perf_counter()
    result64 = run("float64")
    baseline_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    result32 = run("float32")
    new_s = time.perf_counter() - t0
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "accuracy_float64": result64.accuracy,
        "accuracy_float32": result32.accuracy,
        "accuracy_ok": result32.accuracy >= result64.accuracy,
        "sessions": len(train) + len(test),
    }


def _emit_list(kept: list, window: int, hop: int) -> float:
    """List-of-arrays emission: ``np.stack`` a fresh block per window."""
    total = 0.0
    for start in range(0, len(kept) - window + 1, hop):
        block = np.stack(kept[start : start + window])
        total += float(block[0, 0])
    return total


def _emit_ring(buffer: RowRingBuffer, window: int, hop: int) -> float:
    """Ring-buffer emission: every window is a zero-copy arena view."""
    total = 0.0
    for start in range(0, len(buffer) - window + 1, hop):
        block = buffer.window(start, start + window)
        total += float(block[0, 0])
    return total


def bench_ring_buffer(sizes: dict) -> dict:
    """Allocation peak of window *assembly*: arena views vs np.stack.

    Ingest is identical work in both schemes (each retains every raw
    row) and is done before tracing starts; what the streaming refactor
    changed is how a denoise window is materialised per emission.  The
    old scheme stacks ``window`` rows into a fresh block for every
    overlapping window (hop < window, as the streaming extractor runs);
    the ring buffer hands out a contiguous read-only view of its arena.
    ``tracemalloc`` therefore sees the old scheme peak at one stacked
    block per emission while the ring scheme allocates essentially
    nothing -- the "zero" in zero-copy, as a number.
    """
    rng = np.random.default_rng(0)
    rows = rng.normal(size=(sizes["ring_rows"], sizes["ring_channels"]))
    window, hop = sizes["ring_window"], max(1, sizes["ring_window"] // 4)

    kept = [np.array(row) for row in rows]
    buffer = RowRingBuffer(rows.shape[1], dtype=rows.dtype)
    for row in rows:
        buffer.append(row)

    def traced(fn, state):
        tracemalloc.start()
        t0 = time.perf_counter()
        fn(state, window, hop)
        elapsed = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return elapsed, peak

    baseline_s, list_peak = traced(_emit_list, kept)
    new_s, ring_peak = traced(_emit_ring, buffer)
    return {
        "new_s": new_s,
        "baseline_s": baseline_s,
        "speedup": baseline_s / new_s,
        "ring_peak_bytes": int(ring_peak),
        "list_peak_bytes": int(list_peak),
        "peak_ratio": ring_peak / list_peak,
        "peak_ok": ring_peak < list_peak,
        "rows": int(rows.shape[0]),
        "windows": int((rows.shape[0] - window) // hop + 1),
    }


_BENCHMARKS = (
    ("denoise", bench_denoise),
    ("simulate", bench_simulate),
    ("gram", bench_gram),
    ("identify_accuracy", bench_identify_accuracy),
    ("ring_buffer", bench_ring_buffer),
)


# ----------------------------------------------------------------------
# Suite driver and gates
# ----------------------------------------------------------------------


def run_suite(mode: str = "full", progress=None) -> dict:
    """Run every precision benchmark at ``mode`` ("smoke"/"full") sizes."""
    if mode not in _SIZES:
        raise ValueError(f"mode must be one of {sorted(_SIZES)}, got {mode!r}")
    sizes = _SIZES[mode]
    results = {}
    for name, bench in _BENCHMARKS:
        if progress is not None:
            progress(name)
        results[name] = bench(sizes)
    return results


def check_results(results: dict, mode: str) -> list[str]:
    """Hard-gate violations in a suite run (empty list = all good).

    Always enforced: float32 end-to-end accuracy must not fall below
    float64 on the paper scenario, and ring-buffer assembly must peak
    below the list-of-arrays scheme.  Full mode additionally holds the
    three compute kernels to :data:`MIN_KERNEL_SPEEDUP`.
    """
    failures = []
    accuracy = results.get("identify_accuracy")
    if accuracy and not accuracy["accuracy_ok"]:
        failures.append(
            "float32 end-to-end accuracy "
            f"{accuracy['accuracy_float32']:.3f} fell below float64 "
            f"{accuracy['accuracy_float64']:.3f}"
        )
    ring = results.get("ring_buffer")
    if ring and not ring["peak_ok"]:
        failures.append(
            f"ring-buffer allocation peak {ring['ring_peak_bytes']} B is "
            f"not below the list-of-arrays peak {ring['list_peak_bytes']} B"
        )
    if mode == "full":
        for name in _KERNEL_BENCHMARKS:
            data = results.get(name)
            if data and data["speedup"] < MIN_KERNEL_SPEEDUP:
                failures.append(
                    f"{name} float32 speedup {data['speedup']:.2f}x is "
                    f"below the {MIN_KERNEL_SPEEDUP:.1f}x floor"
                )
    return failures


def render_report(
    mode: str,
    results: dict,
    regressions: list[tuple[str, float]],
    failures: list[str],
) -> str:
    """Human-readable summary of one precision-suite run."""
    lines = [
        f"precision-bench -- {mode} suite (float32 vs float64)",
        f"  {'benchmark':<18} {'f32':>9} {'f64':>9} {'speedup':>8}",
    ]
    for name, data in results.items():
        lines.append(
            f"  {name:<18} {data['new_s']:>8.3f}s {data['baseline_s']:>8.3f}s "
            f"{data['speedup']:>7.2f}x"
        )
    accuracy = results.get("identify_accuracy")
    if accuracy:
        lines.append(
            f"  accuracy: float64 {accuracy['accuracy_float64']:.3f}, "
            f"float32 {accuracy['accuracy_float32']:.3f}"
        )
    ring = results.get("ring_buffer")
    if ring:
        lines.append(
            f"  alloc peak: ring {ring['ring_peak_bytes']} B vs list "
            f"{ring['list_peak_bytes']} B "
            f"({ring['peak_ratio']:.2f}x)"
        )
    for failure in failures:
        lines.append(f"  GATE FAILED: {failure}")
    for name, ratio in regressions:
        lines.append(
            f"  REGRESSION: {name} is {ratio:.2f}x slower than the "
            "committed baseline"
        )
    if not failures and not regressions:
        lines.append("  all gates passed, no regressions vs baseline")
    return "\n".join(lines)
