"""Warm-start benchmark: cold train-and-serve vs registry restore.

The PR 6 persistence layer claims a fresh process can answer its first
identify request without retraining, by mounting the artifact store and
loading the trained bundle from the model registry.  This benchmark
measures that claim on one deployment:

* **cold** -- a new pipeline calibrates + trains on the training
  sessions (populating the store and registry as it goes), then answers
  its first identify request.  This is the pre-PR-6 process-start cost.
* **warm** -- a second pipeline, built with a *fresh memory cache* the
  way a restarted process would be, restores everything from the
  registry and answers the same request from persisted artifacts.

Both paths must produce bit-identical predictions, and the warm path
must execute **zero** pipeline stages (every resolution is a disk hit)
for a request the cold process already served.  The JSON artifact is
committed as ``BENCH_PR6.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.channel.materials import default_catalog
from repro.core.config import WiMiConfig
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.engine import StageCounter
from repro.experiments.datasets import (
    collect_dataset,
    split_dataset,
    standard_scene,
)
from repro.persist.store import ArtifactStore

#: Materials of the benchmark deployment (mirrors serve-bench).
DEFAULT_MATERIALS = ("pure_water", "pepsi", "oil")

#: Paper-protocol capture sizes, kept small enough for CI.
DEFAULT_REPETITIONS = 6
DEFAULT_PACKETS = 10


def run_warm_bench(
    store_path: str | Path,
    registry_path: str | Path,
    seed: int = 1,
    repetitions: int = DEFAULT_REPETITIONS,
    num_packets: int = DEFAULT_PACKETS,
    progress=None,
) -> dict:
    """Run the cold vs warm comparison; returns the result dict.

    ``store_path``/``registry_path`` should be empty or absent for a
    true cold start (existing content makes the "cold" half warmer than
    a real first boot, understating the speedup, never overstating it).
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    catalog = default_catalog()
    materials = [catalog.get(name) for name in DEFAULT_MATERIALS]
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        num_packets=num_packets, seed=seed,
    )
    train, test = split_dataset(dataset)
    refs = theory_reference_omegas(materials)
    config = WiMiConfig(
        artifact_store_path=str(store_path),
        model_registry_path=str(registry_path),
    )

    # ------------------------------------------------------------- cold
    note("cold start: fit + first identify")
    t0 = time.perf_counter()
    cold = WiMi(refs, config)
    cold.fit(train)
    fit_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold_first = cold.identify(test[0])
    cold_first_s = time.perf_counter() - t0
    cold_rest = cold.identify_batch(test[1:])
    cold.save_to_registry(metrics={"train_sessions": len(train)})

    # ------------------------------------------------------------- warm
    # A fresh memory cache over the now-populated store is exactly the
    # state a restarted process boots into.
    note("warm start: registry load + first identify")
    t0 = time.perf_counter()
    warm = WiMi.from_registry(str(registry_path))
    load_s = time.perf_counter() - t0
    counter = StageCounter()
    warm.engine.add_hook(counter)
    t0 = time.perf_counter()
    warm_first = warm.identify(test[0])
    warm_first_s = time.perf_counter() - t0
    warm_rest = warm.identify_batch(test[1:])

    cold_total_s = fit_s + cold_first_s
    warm_total_s = load_s + warm_first_s
    store_stats = ArtifactStore(store_path).stats()
    return {
        "seed": seed,
        "materials": list(DEFAULT_MATERIALS),
        "train_sessions": len(train),
        "test_sessions": len(test),
        "cold": {
            "fit_s": fit_s,
            "first_identify_s": cold_first_s,
            "total_s": cold_total_s,
        },
        "warm": {
            "load_s": load_s,
            "first_identify_s": warm_first_s,
            "total_s": warm_total_s,
        },
        "speedup": cold_total_s / warm_total_s if warm_total_s else 0.0,
        "predictions_identical": (
            [cold_first] + cold_rest == [warm_first] + warm_rest
        ),
        "warm_first_stage_executions": dict(counter.executions),
        "warm_disk_hits": dict(counter.disk_hits),
        "store": {
            "entries": store_stats["entries"],
            "bytes": store_stats["bytes"],
        },
    }


def write_report(path: str | Path, results: dict) -> dict:
    """Write the committed artifact (sibling of ``BENCH_PR4.json``)."""
    report = {"schema": 1, "benchmark": "warm-start", **results}
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def render_report(results: dict) -> str:
    """Human-readable cold-vs-warm summary for the CLI."""
    cold = results["cold"]
    warm = results["warm"]
    executions = sum(results["warm_first_stage_executions"].values())
    lines = [
        f"warm-bench -- cold train-and-serve vs registry warm start "
        f"(seed {results['seed']}, {results['train_sessions']} train / "
        f"{results['test_sessions']} test)",
        f"  cold: fit {cold['fit_s']:.3f}s + first identify "
        f"{cold['first_identify_s']:.3f}s = {cold['total_s']:.3f}s",
        f"  warm: load {warm['load_s']:.3f}s + first identify "
        f"{warm['first_identify_s']:.3f}s = {warm['total_s']:.3f}s",
        f"  speedup: {results['speedup']:.1f}x",
        f"  predictions identical: "
        f"{'yes' if results['predictions_identical'] else 'NO'}",
        f"  warm first-identify stage executions: {executions} "
        f"(disk hits {sum(results['warm_disk_hits'].values())})",
        f"  store: {results['store']['entries']} entries, "
        f"{results['store']['bytes']} bytes",
    ]
    return "\n".join(lines)
