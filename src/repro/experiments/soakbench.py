"""Chaos soak harness: the failure-control plane under sustained abuse.

``repro soak-bench`` drives one sharded cluster through a scripted
chaos schedule and commits the evidence as ``SOAK_PR10.json``.  Each
phase targets one mechanism of the failure-control plane:

1. **baseline** -- a clean wave; every label must match a fault-free
   ``identify_batch`` run and the per-shard artifact stores warm up.
2. **shed spike** -- a best-effort (priority -1) flood past the
   shedder's depth threshold; the excess is refused with a typed
   :class:`repro.serve.OverloadError` at admission, never queued.
3. **kill + redelivery** -- SIGKILL one worker mid-load; the
   orchestrator restarts it and re-publishes the lost envelopes
   through the jittered redelivery backoff.  Zero lost requests.
4. **store corruption + quarantine** -- bit-flip warm artifact-store
   entries on both shards, then SIGKILL both workers (second kill of
   shard 0 trips its circuit breaker open).  The restarted workers'
   cold memory tiers fall through to the corrupt disk entries, which
   are quarantined and healed by recompute; replies from the restarted
   shard close its breaker.
5. **deadlines** -- three drop points, counted separately: timeout 0
   is abandoned at admission (never published); a burst with a tiny
   timeout expires while queued (dequeue check); fresh sessions whose
   timeout covers the queue wait but not the throttled service time
   expire mid-pipeline at a stage boundary.
6. **capture fault** -- a structurally hopeless capture travels the
   full path and comes back as a typed ``CorruptTraceError`` reply (a
   resolution, not a loss).
7. **hedge** -- a wave wide enough that stragglers age past the hedge
   threshold and are speculatively re-enqueued on the sibling shard;
   first-reply-wins dedup absorbs the duplicates.

The run **fails loudly** (``gates_passed`` false in the report, and
the CLI exits non-zero) unless every admitted request resolves, every
clean prediction matches the fault-free run, and every mechanism
actually fired: expired-deadline drops at all three points, breaker
opens *and* re-closes, sheds, hedges, redeliveries, restarts and
quarantines all non-zero.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

from repro.channel.materials import default_catalog
from repro.cluster import ClusterClient, ClusterConfig
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.faults import (
    AntennaDropout,
    SubcarrierErasure,
    flip_bits,
    inject_session,
)
from repro.experiments.datasets import collect_dataset, standard_scene
from repro.serve import OverloadError, QueueFullError

DEFAULT_MATERIALS = ("pure_water", "pepsi", "oil")

#: Per-request service-time floor: keeps work in flight long enough
#: for kills, hedges and stage-deadline expiries to land mid-load.
THROTTLE_S = 0.03

DEFAULT_REPETITIONS = 24
SMOKE_REPETITIONS = 6


def _flatten(dataset: dict) -> list:
    return [s for sessions in dataset.values() for s in sessions]


def _wait_all(handles, collect=None) -> tuple[int, int]:
    """Resolve every handle; returns (completed, typed_failures).

    A handle that raises a *typed* error is a resolution -- the
    control plane answered -- only a hang or an unexpected exception
    type would escape and fail the bench.
    """
    completed = failed = 0
    for handle in handles:
        try:
            label = handle.result(timeout=600.0)
        except Exception:  # noqa: BLE001 - typed failures recorded below
            failed += 1
        else:
            completed += 1
            if collect is not None:
                collect.append(label)
    return completed, failed


def run_soak_bench(
    seed: int = 1,
    repetitions: int = DEFAULT_REPETITIONS,
    num_packets: int = 6,
    workers: int = 2,
    store_root: str | Path | None = None,
    progress=None,
) -> dict:
    """Run the full chaos schedule; returns the result dict."""

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    import tempfile

    catalog = default_catalog()
    materials = [catalog.get(name) for name in DEFAULT_MATERIALS]
    note("collecting deployment")
    train = _flatten(collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=4,
        num_packets=num_packets, seed=seed,
    ))
    bench = _flatten(collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        num_packets=num_packets, seed=seed + 6,
    ))
    # Never-seen sessions for the stage-deadline phase: their artifacts
    # are cold everywhere, so the engine must actually execute stages
    # (a warm memory tier would short-circuit the deadline checks).
    fresh = _flatten(collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=3,
        num_packets=num_packets, seed=seed + 17,
    ))
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)
    expected = [str(x) for x in wimi.identify_batch(bench)]

    root = Path(store_root) if store_root else Path(tempfile.mkdtemp())
    registry = root / "registry"
    wimi.save_to_registry(registry, name="wimi")

    capacity = 32
    config = ClusterConfig(
        num_workers=workers,
        queue_capacity=capacity,
        max_batch_size=4,
        boot_timeout_s=120.0,
        max_restarts=5,
        throttle_s=THROTTLE_S,
        breaker_failure_threshold=2,
        breaker_open_duration_s=0.5,
        hedge_after_s=0.35,
        redelivery_backoff_base_s=0.02,
        redelivery_backoff_max_s=0.10,
    )
    client = ClusterClient(registry, config=config, store_root=root / "stores")
    client.start()
    phases: dict[str, dict] = {}
    lost = 0
    try:
        # ------------------------------------------------ 1. baseline
        note(f"baseline: {len(bench)} clean requests")
        labels: list[str] = []
        for start in range(0, len(bench), capacity // 2):
            chunk = bench[start:start + capacity // 2]
            completed, failed = _wait_all(
                client.submit_many(chunk, timeout=None), collect=labels
            )
            lost += failed
        phases["baseline"] = {
            "requests": len(bench),
            "predictions_identical": labels == expected,
        }

        # ---------------------------------------------- 2. shed spike
        note("shed spike: best-effort flood past the depth threshold")
        admitted, shed = [], 0
        for session in bench * 3:
            try:
                admitted.append(
                    client.submit(session, timeout=None, priority=-1)
                )
            except (OverloadError, QueueFullError):
                shed += 1
        completed, failed = _wait_all(admitted)
        lost += failed
        phases["shed_spike"] = {
            "offered": len(bench) * 3,
            "admitted": len(admitted),
            "shed": shed,
        }

        # ----------------------------------------- 3. kill/redeliver
        note("kill phase: SIGKILL shard 0 mid-load")
        handles = client.submit_many(bench[:capacity // 2], timeout=None)
        time.sleep(THROTTLE_S * 4)
        os.kill(client.orchestrator._slots[0].process.pid, signal.SIGKILL)
        kill_labels: list[str] = []
        completed, failed = _wait_all(handles, collect=kill_labels)
        lost += failed
        phases["kill_redeliver"] = {
            "requests": len(handles),
            "predictions_identical": (
                kill_labels == expected[:len(handles)]
            ),
        }

        # --------------------------------- 4. corruption + quarantine
        note("quarantine phase: bit-flip stores, SIGKILL both shards")
        flipped = 0
        for shard in range(workers):
            objects = root / "stores" / f"shard-{shard}" / "objects"
            for index, entry in enumerate(sorted(objects.rglob("*.art"))):
                flip_bits(entry, num_flips=8, seed=seed + index)
                flipped += 1
        def _kill_and_await_restart(shards) -> None:
            """SIGKILL the shards' workers, wait for the replacements.

            "Replacement arrived" means the slot holds a *new* pid and
            beats ready again -- checking ``ready`` alone races the
            monitor's staleness detection and can observe the dead
            incarnation's flag.
            """
            old_pids = {
                shard: client.orchestrator._slots[shard].process.pid
                for shard in shards
            }
            for shard, pid in old_pids.items():
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                slots = client.orchestrator._slots
                if all(
                    slots[shard].process.pid != old_pids[shard]
                    and slots[shard].ready and not slots[shard].failed
                    for shard in shards
                ):
                    return
                time.sleep(0.05)
            raise RuntimeError(f"shards {list(shards)} never restarted")

        _kill_and_await_restart(range(workers))
        # Kill shard 0 again before it serves a single reply: two
        # consecutive failures with no success in between trip its
        # circuit breaker open (replies are the only thing that resets
        # the consecutive-failure count -- a restart alone never does).
        _kill_and_await_restart([0])
        # Re-serve the warm set through the now-corrupt disk tier:
        # the restarted workers' cold memory misses fall through to
        # disk, every read quarantines and recompute heals; replies
        # from shard 0 close its breaker again.
        heal_labels: list[str] = []
        for start in range(0, len(bench), capacity // 2):
            chunk = bench[start:start + capacity // 2]
            completed, failed = _wait_all(
                client.submit_many(chunk, timeout=None), collect=heal_labels
            )
            lost += failed
        phases["quarantine"] = {
            "entries_corrupted": flipped,
            "predictions_identical": heal_labels == expected,
        }

        # ------------------------------------------------ 5. deadlines
        note("deadline phase: admission, dequeue and stage drop points")
        admission = client.submit_many(bench[:4], timeout=0.0)
        burst = client.submit_many(
            bench[:capacity // 2], timeout=THROTTLE_S * 2
        )
        _wait_all(admission)
        _wait_all(burst)
        # Queue is idle again: a fresh-session wave whose deadline
        # covers the dequeue check but not the throttled batch run
        # expires *inside* the pipeline, at a stage boundary.
        stage = client.submit_many(fresh, timeout=THROTTLE_S * 1.5)
        _wait_all(stage)
        phases["deadlines"] = {
            "admission_offered": len(admission),
            "dequeue_offered": len(burst),
            "stage_offered": len(stage),
        }

        # -------------------------------------------- 6. capture fault
        note("capture-fault phase: hopeless session fails typed")
        hopeless = inject_session(
            bench[0],
            (
                AntennaDropout(antenna=0, mode="nan"),
                AntennaDropout(antenna=1, mode="nan"),
                SubcarrierErasure(0.9, scope="column"),
            ),
            seed=seed,
        )
        fault_handle = client.submit(hopeless, timeout=None)
        try:
            fault_handle.result(timeout=600.0)
            fault_typed = False
        except Exception as error:  # noqa: BLE001 - typed check below
            fault_typed = "CorruptTraceError" in type(error).__name__ or (
                "quality gate" in str(error)
            )
        phases["capture_fault"] = {"typed_failure": fault_typed}

        # ------------------------------------------------ 7. hedge
        note("hedge phase: wide wave, stragglers re-enqueued on sibling")
        hedge_labels: list[str] = []
        handles = client.submit_many(bench[:capacity - 2], timeout=None)
        completed, failed = _wait_all(handles, collect=hedge_labels)
        lost += failed
        phases["hedge"] = {
            "requests": len(handles),
            "predictions_identical": (
                hedge_labels == expected[:len(handles)]
            ),
        }

        snap = client.snapshot()
    finally:
        client.stop()

    cc = snap["cluster"]["counters"]
    merged = snap["merged"]["counters"]
    gauges = snap["merged"].get("gauges", {})
    quarantined = gauges.get("store.quarantined", 0)
    gates = {
        "zero_lost": lost == 0,
        "predictions_identical": all(
            phase.get("predictions_identical", True)
            for phase in phases.values()
        ),
        "expired_admission": cc["deadline.expired_admission"] > 0,
        "expired_dequeue": merged.get("deadline.expired_dequeue", 0) > 0,
        "expired_stage": merged.get("deadline.expired_stage", 0) > 0,
        "breaker_opened": cc["breaker.opened"] > 0,
        "breaker_closed": cc["breaker.closed"] > 0,
        "shed": cc["requests.shed"] > 0,
        "hedged": cc["cluster.hedges"] > 0,
        "redelivered": cc["cluster.redeliveries"] > 0,
        "restarted": cc["cluster.restarts"] > 0,
        "quarantined": quarantined > 0,
        "capture_fault_typed": phases["capture_fault"]["typed_failure"],
    }
    return {
        "seed": seed,
        "materials": list(DEFAULT_MATERIALS),
        "workers": workers,
        "distinct_sessions": len(bench),
        "phases": phases,
        "counters": {
            "cluster": {k: v for k, v in sorted(cc.items())},
            "worker_merged": {k: v for k, v in sorted(merged.items())},
            "store_quarantined": quarantined,
        },
        "gates": gates,
        "gates_passed": all(gates.values()),
    }


def write_report(path: str | Path, results: dict) -> dict:
    """Write the committed artifact (sibling of ``BENCH_PR7.json``)."""
    report = {"schema": 1, "benchmark": "chaos-soak", **results}
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def render_report(results: dict) -> str:
    """Human-readable summary of one run."""
    gates = results["gates"]
    cc = results["counters"]["cluster"]
    lines = [
        f"soak-bench -- {results['distinct_sessions']} distinct sessions, "
        f"{results['workers']} workers, seed {results['seed']}",
        f"  sheds {cc['requests.shed']}, hedges {cc['cluster.hedges']}, "
        f"redeliveries {cc['cluster.redeliveries']}, "
        f"restarts {cc['cluster.restarts']}",
        f"  breaker opened {cc['breaker.opened']} / closed "
        f"{cc['breaker.closed']} / diverted {cc['breaker.diverted']}",
        f"  expired: admission {cc['deadline.expired_admission']}, "
        "dequeue "
        f"{results['counters']['worker_merged'].get('deadline.expired_dequeue', 0)}, "
        "stage "
        f"{results['counters']['worker_merged'].get('deadline.expired_stage', 0)}",
        f"  store entries quarantined: "
        f"{results['counters']['store_quarantined']:.0f}",
    ]
    failed = sorted(name for name, passed in gates.items() if not passed)
    if failed:
        lines.append(f"  GATES FAILED: {', '.join(failed)}")
    else:
        lines.append("  all gates passed (zero lost requests)")
    return "\n".join(lines)
