"""Train / identify / score loop shared by the accuracy experiments."""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.channel.materials import Material
from repro.core.config import WiMiConfig
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.impairments import HardwareProfile
from repro.csi.simulator import SimulationScene
from repro.engine.cache import StageCache
from repro.experiments.datasets import collect_dataset, split_dataset
from repro.ml.validation import ConfusionMatrix, confusion_matrix


@dataclass
class ExperimentResult:
    """Outcome of one identification experiment.

    Attributes:
        confusion: Full confusion matrix over the tested materials.
        extras: Free-form experiment-specific diagnostics.
    """

    confusion: ConfusionMatrix
    extras: dict = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Overall identification accuracy."""
        return self.confusion.accuracy

    def per_class_accuracy(self) -> dict:
        """Per-material accuracy (confusion diagonal)."""
        return self.confusion.per_class_accuracy()


def run_identification(
    materials: list[Material],
    scene: SimulationScene | None = None,
    config: WiMiConfig | None = None,
    repetitions: int = 20,
    num_packets: int = 20,
    train_fraction: float = 0.6,
    seed: int = 0,
    profile: HardwareProfile | None = None,
    reference_materials: list[Material] | None = None,
    cache: StageCache | None = None,
) -> ExperimentResult:
    """One full WiMi experiment: collect, train, identify, score.

    Args:
        materials: The liquids under test (the classifier's classes).
        scene: Deployment scene (defaults to the paper's lab at 2 m).
        config: WiMi configuration.
        repetitions: Sessions per material (paper: 20).
        num_packets: Packets per trace (paper: 20).
        train_fraction: Share of sessions used for the feature database.
        seed: Deployment seed (multipath realisation + all noise).
        profile: Hardware impairment profile.
        reference_materials: Materials whose theory features seed the
            gamma-resolution dictionary; defaults to ``materials``.
        cache: Optional shared :class:`repro.engine.StageCache`.  Stage
            keys embed the trace content, so sharing one cache across the
            experiments of a sweep is always safe: artifacts common to
            several runs (e.g. the baseline captures a seed sweep re-uses)
            are computed once instead of per run.
    """
    if len(materials) < 2:
        raise ValueError("need at least two materials to identify")
    refs_src = reference_materials if reference_materials else materials
    refs = theory_reference_omegas(refs_src)

    dataset = collect_dataset(
        materials,
        scene=scene,
        repetitions=repetitions,
        num_packets=num_packets,
        seed=seed,
        profile=profile,
    )
    train, test = split_dataset(dataset, train_fraction)

    wimi = WiMi(refs, config, cache=cache)
    wimi.fit(train)

    y_true = np.array([s.material_name for s in test])
    y_pred = np.array(wimi.identify_batch(test))
    labels = [m.name for m in materials]
    cm = confusion_matrix(y_true, y_pred, labels=labels)
    return ExperimentResult(
        confusion=cm,
        extras={
            "selected_subcarriers": wimi.calibrated_subcarriers,
            "antenna_pair": wimi.calibrated_pair,
            "coarse_pair": wimi.calibrated_coarse_pair,
            "num_train": len(train),
            "num_test": len(test),
        },
    )


def fit_and_score(
    train: list,
    test: list,
    labels: list[str],
    reference_materials: list[Material],
    config: WiMiConfig | None = None,
    cache: StageCache | None = None,
) -> ExperimentResult:
    """Train on pre-collected sessions and score on held-out ones.

    Lower-level sibling of :func:`run_identification` for experiments that
    reuse one dataset under several configurations (e.g. the Fig. 18
    packet sweep truncates the same sessions to different lengths).

    Args:
        cache: Optional shared :class:`repro.engine.StageCache`.  Pass
            the same instance across a configuration sweep over one
            dataset and every stage unaffected by the config change
            (calibration, denoising, subcarrier scoring) is served from
            cache instead of recomputed -- stage keys embed the
            stage-relevant config fields, so sharing is always safe.
    """
    if not train or not test:
        raise ValueError("need non-empty train and test session lists")
    refs = theory_reference_omegas(reference_materials)
    wimi = WiMi(refs, config, cache=cache)
    wimi.fit(train)
    y_true = np.array([s.material_name for s in test])
    y_pred = np.array(wimi.identify_batch(test))
    cm = confusion_matrix(y_true, y_pred, labels=labels)
    return ExperimentResult(
        confusion=cm,
        extras={
            "selected_subcarriers": wimi.calibrated_subcarriers,
            "antenna_pair": wimi.calibrated_pair,
        },
    )


def parallel_map(
    fn: Callable, items: Iterable, workers: int = 1
) -> list:
    """Order-preserving map over ``items``, optionally across processes.

    With ``workers <= 1`` this is a plain serial comprehension (no pool,
    no pickling requirements).  With more workers, items are dispatched to
    a ``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor`
    -- ``fn`` and every item must then be picklable, which in this module
    means module-level functions over dataclass payloads.  ``spawn`` is
    used even where ``fork`` is available: it is the only start method
    that is safe on every platform and that cannot inherit a copied BLAS
    or RNG state mid-operation.

    Results come back in input order regardless of completion order, so a
    parallel sweep is bit-identical to its serial counterpart whenever
    ``fn`` itself is deterministic.
    """
    items = list(items)
    workers = max(1, int(workers))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(workers, len(items)), mp_context=ctx
    ) as pool:
        return list(pool.map(fn, items))


def _seed_accuracy_task(args: tuple) -> float:
    """Picklable worker for :func:`mean_accuracy_over_seeds`."""
    materials, seed, kwargs = args
    return run_identification(materials, seed=seed, **kwargs).accuracy


def mean_accuracy_over_seeds(
    materials: list[Material],
    seeds: Sequence[int],
    workers: int = 1,
    **kwargs,
) -> tuple[float, list[float]]:
    """Average :func:`run_identification` accuracy over deployments.

    With ``workers > 1`` the seeds run in parallel processes; results are
    identical to the serial path (each seed is fully self-contained and
    deterministic).  The serial path shares one :class:`StageCache`
    across seeds so any artifact common to several deployments -- the
    free-space baselines a sweep re-derives, identical traces after
    truncation -- is computed once.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    cache = kwargs.pop("cache", None)
    if workers > 1:
        # A cross-process cache cannot be shared; each worker builds its
        # own per-run cache inside run_identification.
        tasks = [(materials, int(s), kwargs) for s in seeds]
        accs = parallel_map(_seed_accuracy_task, tasks, workers=workers)
    else:
        if cache is None:
            cache = StageCache()
        accs = [
            run_identification(
                materials, seed=s, cache=cache, **kwargs
            ).accuracy
            for s in seeds
        ]
    return float(np.mean(accs)), accs
