"""One entry point per evaluation figure of the paper.

Every function regenerates the data behind one figure (Fig. 2-21 of the
paper) and returns a plain dict of the rows/series the paper plots, ready
for :mod:`repro.experiments.reporting`.  Default sizes are chosen so each
experiment runs in seconds-to-a-minute; pass larger ``repetitions`` /
``seeds`` for tighter statistics.

Shape targets (from the paper's text) are noted per function; see
EXPERIMENTS.md for the measured outcomes.
"""

from __future__ import annotations

import numpy as np

from repro.channel.materials import default_catalog, saltwater
from repro.core.amplitude import AmplitudeProcessor
from repro.core.antenna import AntennaPairSelector
from repro.core.config import WiMiConfig
from repro.core.feature import theory_reference_omegas
from repro.core.phase import PhaseCalibrator
from repro.core.pipeline import WiMi
from repro.core.subcarrier import SubcarrierSelector
from repro.csi.collector import DataCollector, SessionConfig
from repro.csi.impairments import HardwareProfile
from repro.dsp.filters import (
    butterworth_filter,
    median_filter,
    sliding_mean_filter,
)
from repro.dsp.stats import angular_spread_deg
from repro.dsp.wavelet_denoise import SpatiallySelectiveDenoiser
from repro.engine.cache import StageCache
from repro.experiments.datasets import (
    collect_dataset,
    paper_liquids,
    split_dataset,
    standard_scene,
    standard_target,
)
from repro.experiments.runner import (
    fit_and_score,
    parallel_map,
    run_identification,
)

_CATALOG = default_catalog()

#: The five liquids of the Fig. 9 benchmark (Sec. III-E).
FIVE_LIQUIDS = ("saltwater_2.7g", "vinegar", "pepsi", "milk", "pure_water")
#: The five liquids of the Fig. 14 ablation.
FIG14_LIQUIDS = ("pepsi", "oil", "vinegar", "soy", "milk")
#: The mutually-adjacent water-family liquids -- the hardest subset; used
#: where an experiment needs headroom to show a *difference* (Fig. 13/14).
HARD_LIQUIDS = ("pure_water", "sweet_water", "pepsi", "coke", "milk")
THREE_LIQUIDS = ("pure_water", "pepsi", "vinegar")


def _materials(names) -> list:
    return [_CATALOG.get(n) for n in names]


# ----------------------------------------------------------------------
# Fig. 2 + Fig. 12 -- phase calibration microbenchmark
# ----------------------------------------------------------------------


def phase_calibration_microbenchmark(
    environment: str = "library",
    num_packets: int = 50,
    seed: int = 0,
) -> dict:
    """Fig. 2 / Fig. 12: raw phase vs antenna difference vs good subcarriers.

    Shape target: raw per-antenna phase is uniform over the circle
    (spread saturates at 180 deg); the inter-antenna phase difference
    concentrates to tens of degrees ("around 18 degrees"); selecting good
    subcarriers tightens it further ("around 5 degrees").
    """
    scene = standard_scene(environment)
    collector = DataCollector(scene, rng=seed)
    session = collector.collect(
        _CATALOG.get("milk"), SessionConfig(num_packets=num_packets)
    )
    calibrator = PhaseCalibrator()
    selector = SubcarrierSelector(calibrator)
    pair = (0, 1)
    trace = session.baseline

    raw = calibrator.angular_fluctuation_deg(trace, antenna=0)
    per_subcarrier = [
        angular_spread_deg(calibrator.phase_difference(trace, pair)[:, k])
        for k in range(trace.num_subcarriers)
    ]
    selected = selector.select(session.baseline, session.target, pair, 4)
    return {
        "raw_spread_deg": raw,
        "pair_difference_spread_deg": float(np.median(per_subcarrier)),
        "selected_spread_deg": float(
            np.mean([per_subcarrier[k] for k in selected])
        ),
        "selected_subcarriers": selected,
    }


# ----------------------------------------------------------------------
# Fig. 3 -- raw amplitude noise
# ----------------------------------------------------------------------


def raw_amplitude_microbenchmark(
    num_packets: int = 200, seed: int = 0
) -> dict:
    """Fig. 3: raw CSI amplitude has outliers and impulse noise.

    Shape target: a visible fraction of samples outside the 3-sigma band
    and heavy tails (positive excess kurtosis) versus a clean capture.
    """
    scene = standard_scene("lab")
    collector = DataCollector(scene, rng=seed)
    session = collector.collect(
        _CATALOG.get("milk"), SessionConfig(num_packets=num_packets)
    )
    amps = session.baseline.amplitudes()[:, 15, 0]
    mu, sigma = float(np.mean(amps)), float(np.std(amps))
    outlier_fraction = float(np.mean(np.abs(amps - mu) > 3 * sigma))
    centred = (amps - mu) / sigma if sigma > 0 else amps - mu
    kurtosis = float(np.mean(centred**4) - 3.0)
    return {
        "mean_amplitude": mu,
        "std_amplitude": sigma,
        "outlier_fraction": outlier_fraction,
        "excess_kurtosis": kurtosis,
    }


# ----------------------------------------------------------------------
# Fig. 6 -- per-subcarrier phase-difference variance
# ----------------------------------------------------------------------


def subcarrier_variance_profile(
    environment: str = "lab", num_packets: int = 50, seed: int = 0
) -> dict:
    """Fig. 6: Eq. 7 variance per subcarrier, and the P=4 good ones.

    Shape target: the variance profile is frequency selective (some
    subcarriers are much quieter) and the selected subcarriers sit at its
    minima.
    """
    scene = standard_scene(environment)
    collector = DataCollector(scene, rng=seed)
    session = collector.collect(
        _CATALOG.get("milk"), SessionConfig(num_packets=num_packets)
    )
    selector = SubcarrierSelector()
    pair = (0, 1)
    variances = selector.combined_variances(
        session.baseline, session.target, pair
    )
    selected = selector.select(session.baseline, session.target, pair, 4)
    return {
        "variances": variances,
        "selected_subcarriers": selected,
        "min_variance": float(np.min(variances)),
        "median_variance": float(np.median(variances)),
    }


# ----------------------------------------------------------------------
# Fig. 7 -- denoising method comparison
# ----------------------------------------------------------------------


def denoise_filter_comparison(
    num_samples: int = 128, trials: int = 10, seed: int = 0
) -> dict:
    """Fig. 7: median / slide / Butterworth vs the proposed denoiser.

    A known slowly-varying amplitude is corrupted with the hardware
    profile's outlier + impulse statistics; each method's RMSE against the
    ground truth is reported.  Shape target: the proposed spatially-
    selective wavelet denoiser has the lowest error.
    """
    rng = np.random.default_rng(seed)
    profile = HardwareProfile()
    denoiser = SpatiallySelectiveDenoiser()
    errors = {"median": [], "slide": [], "butterworth": [], "proposed": []}
    for _ in range(trials):
        t = np.arange(num_samples)
        truth = 1.0 + 0.05 * np.sin(2 * np.pi * t / num_samples)
        noisy = truth * (1.0 + rng.normal(0, profile.amplitude_noise, num_samples))
        # Impulse noise: additive spikes comparable to the signal.
        mask = rng.random(num_samples) < profile.impulse_probability
        noisy[mask] += rng.standard_normal(mask.sum()) * (
            profile.impulse_magnitude * truth[mask]
        )
        # Outliers: rare multiplicative excursions.
        mask = rng.random(num_samples) < profile.outlier_probability
        lo, hi = profile.outlier_magnitude_range
        noisy[mask] *= rng.uniform(lo, hi, mask.sum())

        candidates = {
            "median": median_filter(noisy, 5),
            "slide": sliding_mean_filter(noisy, 5),
            "butterworth": butterworth_filter(noisy, 0.2, 3),
            "proposed": denoiser.denoise(noisy),
        }
        for name, out in candidates.items():
            errors[name].append(float(np.sqrt(np.mean((out - truth) ** 2))))
    return {name: float(np.mean(errs)) for name, errs in errors.items()}


# ----------------------------------------------------------------------
# Fig. 8 -- amplitude-ratio variance
# ----------------------------------------------------------------------


def amplitude_ratio_variance(
    num_packets: int = 100, seed: int = 0
) -> dict:
    """Fig. 8: per-antenna amplitude variance vs antenna-ratio variance.

    Shape target: the ratio's normalised variance is well below each
    individual antenna's.
    """
    scene = standard_scene("lab")
    collector = DataCollector(scene, rng=seed)
    session = collector.collect(
        _CATALOG.get("milk"), SessionConfig(num_packets=num_packets)
    )
    amp = AmplitudeProcessor(denoise=False)
    trace = session.baseline
    return {
        "antenna0_variance": float(
            np.mean(amp.amplitude_variance_per_subcarrier(trace, 0))
        ),
        "antenna1_variance": float(
            np.mean(amp.amplitude_variance_per_subcarrier(trace, 1))
        ),
        "ratio_variance": float(
            np.mean(amp.ratio_variance_per_subcarrier(trace, (0, 1)))
        ),
    }


# ----------------------------------------------------------------------
# Fig. 9 -- material feature clusters
# ----------------------------------------------------------------------


def material_feature_clusters(
    repetitions: int = 8, seed: int = 0
) -> dict:
    """Fig. 9: Omega-bar clusters for five liquids in the office.

    Shape target: the five liquids form distinct clusters ordered like
    their theory features; cluster spread is small versus the gaps.
    """
    materials = _materials(FIVE_LIQUIDS)
    refs = theory_reference_omegas(materials)
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        seed=seed,
    )
    sessions = [s for group in dataset.values() for s in group]
    wimi = WiMi(refs)
    wimi.calibrate(sessions)
    clusters = {}
    for name, group in dataset.items():
        values = [wimi.extract_labelled(s).omega_mean for s in group]
        clusters[name] = {
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "theory": refs[name],
        }
    return clusters


# ----------------------------------------------------------------------
# Fig. 10 -- per-antenna-combination variance
# ----------------------------------------------------------------------


def antenna_combination_variance(
    num_packets: int = 50, seed: int = 0
) -> dict:
    """Fig. 10: phase-difference / amplitude-ratio variance per pair.

    Shape target: the three antenna combinations have clearly different
    stability (the basis for pair selection).
    """
    scene = standard_scene("lab")
    collector = DataCollector(scene, rng=seed)
    session = collector.collect(
        _CATALOG.get("milk"), SessionConfig(num_packets=num_packets)
    )
    selector = AntennaPairSelector()
    out = {}
    for stat in selector.rank(session):
        out[stat.pair] = {
            "phase_variance": stat.phase_variance,
            "ratio_variance": stat.ratio_variance,
        }
    return out


# ----------------------------------------------------------------------
# Fig. 13 -- subcarrier choice vs accuracy
# ----------------------------------------------------------------------


def subcarrier_choice_accuracy(
    repetitions: int = 10, seed: int = 0, num_packets: int = 10
) -> dict:
    """Fig. 13: subcarrier choice vs identification accuracy.

    Uses the adjacent water-family liquids in the paper's single-pair
    mode.  Compares the worst-variance subcarriers (standing in for the
    paper's blind picks 2/7/12), the best ("good") ones, and combinations.
    Shape target: good subcarriers do at least as well as bad ones, and
    combining subcarriers beats single ones.  Note (EXPERIMENTS.md): the
    paper reports a large gap; in the simulator the gap is mild, because
    after packet averaging the dominant residual noise is only weakly
    frequency selective.
    """
    materials = _materials(HARD_LIQUIDS)
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        num_packets=num_packets, seed=seed,
    )
    train, test = split_dataset(dataset)
    labels = [m.name for m in materials]

    # One stage cache across the whole sweep: every configuration reuses
    # the calibration/denoising artifacts of the shared dataset.
    shared_cache = StageCache()
    probe = WiMi(
        theory_reference_omegas(materials),
        WiMiConfig(num_feature_pairs=1),
        cache=shared_cache,
    )
    probe.calibrate(train)
    ranking = probe.subcarrier_selector.rank_pooled(
        train, probe.calibrated_pair
    )
    good = [int(k) for k in ranking[:4]]
    bad = [int(k) for k in ranking[-3:]]

    results = {}
    for label, subcarriers in (
        (f"worst_{bad[0]}", (bad[0],)),
        (f"worst_{bad[1]}", (bad[1],)),
        (f"worst_{bad[2]}", (bad[2],)),
        (f"good_{good[0]}", (good[0],)),
        (f"good_{good[1]}", (good[1],)),
        (f"good_{good[0]}_and_{good[1]}", (good[0], good[1])),
        ("good_top4", tuple(good)),
    ):
        config = WiMiConfig(
            subcarrier_override=tuple(subcarriers),
            num_feature_pairs=1,
        )
        result = fit_and_score(
            train, test, labels, materials, config, cache=shared_cache
        )
        results[label] = result.accuracy
    return results


# ----------------------------------------------------------------------
# Fig. 14 -- amplitude denoising vs accuracy
# ----------------------------------------------------------------------


def denoise_ablation_accuracy(
    repetitions: int = 10, seed: int = 0
) -> dict:
    """Fig. 14: identification accuracy with and without denoising.

    Shape target: denoising is consistently at least as good, with a
    visible gain for some liquids.
    """
    materials = _materials(FIG14_LIQUIDS + ("coke", "sweet_water"))
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        num_packets=10, seed=seed,
    )
    train, test = split_dataset(dataset)
    labels = [m.name for m in materials]
    out = {}
    # Shared cache: the denoise flag flips the amplitude stage's key, but
    # phase calibration and subcarrier scoring are reused across the two
    # arms of the ablation.
    shared_cache = StageCache()
    for label, flag in (("without_denoising", False), ("with_denoising", True)):
        result = fit_and_score(
            train, test, labels, materials,
            WiMiConfig(denoise_amplitude=flag, num_feature_pairs=1),
            cache=shared_cache,
        )
        out[label] = {
            "overall": result.accuracy,
            "per_class": result.per_class_accuracy(),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 15 -- ten liquids
# ----------------------------------------------------------------------


def ten_liquid_confusion(
    repetitions: int = 20, seed: int = 0
) -> dict:
    """Fig. 15: confusion matrix over the ten liquids in the lab.

    Shape target: average accuracy around 96%; Pepsi and Coke are the
    most confusable pair but still above 90%.
    """
    materials = paper_liquids(_CATALOG)
    result = run_identification(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        seed=seed,
    )
    return {
        "accuracy": result.accuracy,
        "per_class": result.per_class_accuracy(),
        "confusion": result.confusion,
    }


# ----------------------------------------------------------------------
# Fig. 16 -- saltwater concentrations
# ----------------------------------------------------------------------


def concentration_confusion(
    repetitions: int = 12, seed: int = 0
) -> dict:
    """Fig. 16: pure water vs 1.2 / 2.7 / 5.9 g per 100 ml saltwater.

    Shape target: higher than 95% accuracy; confusion only between
    neighbouring concentrations.
    """
    materials = [
        _CATALOG.get("pure_water"),
        saltwater(1.2),
        saltwater(2.7),
        saltwater(5.9),
    ]
    result = run_identification(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        seed=seed,
    )
    return {
        "accuracy": result.accuracy,
        "per_class": result.per_class_accuracy(),
        "confusion": result.confusion,
    }


# ----------------------------------------------------------------------
# Fig. 17 -- Tx-Rx distance sweep
# ----------------------------------------------------------------------


def _distance_task(args: tuple) -> float:
    """Picklable worker for :func:`distance_sweep` (one env x distance)."""
    material_names, env, distance, repetitions, seed = args
    return run_identification(
        _materials(material_names),
        scene=standard_scene(env, distance_m=distance),
        repetitions=repetitions,
        seed=seed,
    ).accuracy


def distance_sweep(
    distances_m=(1.0, 1.5, 2.0, 2.5, 3.0),
    environments=("hall", "lab", "library"),
    repetitions: int = 8,
    seed: int = 0,
    material_names=HARD_LIQUIDS,
    workers: int = 1,
) -> dict:
    """Fig. 17: accuracy vs Tx-Rx distance, per environment.

    Shape target: accuracy decreases with distance (98% -> ~87% in the
    paper) and richer-multipath environments sit lower.

    With ``workers > 1`` the (environment, distance) grid points run in
    parallel processes; each point is self-contained and deterministic,
    so the result is identical to the serial sweep.
    """
    material_names = tuple(material_names)
    grid = [
        (material_names, env, distance, repetitions, seed)
        for env in environments
        for distance in distances_m
    ]
    accuracies = parallel_map(_distance_task, grid, workers=workers)
    out = {}
    for (_, env, distance, _, _), accuracy in zip(grid, accuracies):
        out.setdefault(env, []).append((distance, accuracy))
    return out


# ----------------------------------------------------------------------
# Fig. 18 -- packet-count sweep
# ----------------------------------------------------------------------


def _packet_env_task(args: tuple) -> list:
    """Picklable worker for :func:`packet_sweep` (one environment)."""
    material_names, env, packet_counts, repetitions, seed = args
    materials = _materials(material_names)
    labels = [m.name for m in materials]
    dataset = collect_dataset(
        materials,
        scene=standard_scene(env),
        repetitions=repetitions,
        num_packets=max(packet_counts),
        seed=seed,
    )
    # Artifacts are keyed by trace *content*, so the full-length
    # truncation (count == max_packets) hits the artifacts already
    # computed for the untruncated dataset despite being new objects.
    env_cache = StageCache()
    series = []
    for count in packet_counts:
        truncated = {
            name: [s.truncated(count) for s in group]
            for name, group in dataset.items()
        }
        train, test = split_dataset(truncated)
        result = fit_and_score(
            train, test, labels, materials, cache=env_cache
        )
        series.append((count, result.accuracy))
    return series


def packet_sweep(
    packet_counts=(3, 5, 10, 20, 30),
    environments=("hall", "lab", "library"),
    repetitions: int = 8,
    seed: int = 0,
    material_names=HARD_LIQUIDS,
    workers: int = 1,
) -> dict:
    """Fig. 18: accuracy vs number of packets per measurement.

    Shape target: accuracy rises with packets and saturates around 20
    (the paper's operating point).

    With ``workers > 1`` the environments run in parallel processes --
    each environment is self-contained (own dataset, own stage cache), so
    the result is identical to the serial sweep.
    """
    material_names = tuple(material_names)
    packet_counts = tuple(packet_counts)
    tasks = [
        (material_names, env, packet_counts, repetitions, seed)
        for env in environments
    ]
    series_per_env = parallel_map(_packet_env_task, tasks, workers=workers)
    return dict(zip(environments, series_per_env))


# ----------------------------------------------------------------------
# Fig. 19 -- container size sweep
# ----------------------------------------------------------------------

#: Paper beaker diameters (Size 1..5), metres.
CONTAINER_DIAMETERS_M = (0.143, 0.110, 0.089, 0.061, 0.032)


def container_size_sweep(
    repetitions: int = 10,
    seed: int = 0,
    material_names=THREE_LIQUIDS,
) -> dict:
    """Fig. 19: accuracy vs beaker diameter.

    Shape target: mild degradation down to ~8.9 cm, then a clear drop
    once the diameter falls below the ~6 cm wavelength (diffraction).
    """
    materials = _materials(material_names)
    out = {}
    for index, diameter in enumerate(CONTAINER_DIAMETERS_M, start=1):
        # The beaker is repositioned closer to the axis when it is small.
        offset = min(0.020, diameter / 4.0)
        target = standard_target(diameter=diameter, lateral_offset=offset)
        result = run_identification(
            materials,
            scene=standard_scene("lab", target=target),
            repetitions=repetitions,
            seed=seed,
        )
        out[f"size{index}_{diameter * 100:.1f}cm"] = result.accuracy
    return out


# ----------------------------------------------------------------------
# Fig. 20 -- container material
# ----------------------------------------------------------------------


def container_material_comparison(
    repetitions: int = 10,
    seed: int = 0,
    material_names=THREE_LIQUIDS,
) -> dict:
    """Fig. 20: plastic vs glass beaker.

    Shape target: nearly identical accuracy -- the empty-container
    baseline cancels the wall.
    """
    materials = _materials(material_names)
    out = {}
    for wall in ("plastic", "glass"):
        target = standard_target(wall_material=wall)
        result = run_identification(
            materials,
            scene=standard_scene("lab", target=target),
            repetitions=repetitions,
            seed=seed,
        )
        out[wall] = {
            "overall": result.accuracy,
            "per_class": result.per_class_accuracy(),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 21 -- antenna combinations vs accuracy
# ----------------------------------------------------------------------


def antenna_pair_accuracy(
    repetitions: int = 10,
    seed: int = 0,
    material_names=HARD_LIQUIDS,
) -> dict:
    """Fig. 21: identification accuracy per antenna combination.

    Shape target: combinations differ; pairs avoiding the noisiest RF
    chain (antenna 3) do best.
    """
    materials = _materials(material_names)
    labels = [m.name for m in materials]
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        seed=seed,
    )
    train, test = split_dataset(dataset)
    out = {}
    # Shared cache: the three configurations differ only in which pair is
    # the main one, so every trace's denoised cube and every pair's
    # observables are computed once for the whole figure.
    shared_cache = StageCache()
    for pair in ((0, 1), (0, 2), (1, 2)):
        config = WiMiConfig(
            antenna_pair=pair, num_feature_pairs=1, use_coarse_pair=True
        )
        result = fit_and_score(
            train, test, labels, materials, config, cache=shared_cache
        )
        out[f"antennas_{pair[0] + 1}&{pair[1] + 1}"] = result.accuracy
    return out


# ----------------------------------------------------------------------
# Extensions beyond the paper's figures
# ----------------------------------------------------------------------


def motion_ablation(
    repetitions: int = 8,
    seed: int = 0,
    motion_levels_mm=(0.0, 2.0, 6.0),
    material_names=THREE_LIQUIDS,
) -> dict:
    """Discussion-section limitation: moving / flowing liquids.

    The paper states WiMi "can only identify the material type of a
    static liquid".  This experiment sweeps the per-packet sloshing
    amplitude of the liquid column; identification should degrade as the
    motion grows.
    """
    from repro.csi.collector import SessionConfig

    materials = _materials(material_names)
    labels = [m.name for m in materials]
    out = {}
    for motion_mm in motion_levels_mm:
        scene = standard_scene("lab")
        collector = DataCollector(scene, rng=seed)
        config = SessionConfig(target_motion_std=motion_mm / 1000.0)
        dataset = {
            m.name: collector.collect_many(m, repetitions, config)
            for m in materials
        }
        train, test = split_dataset(dataset)
        result = fit_and_score(train, test, labels, materials)
        out[f"motion_{motion_mm:g}mm"] = result.accuracy
    return out


def absolute_feature_comparison(
    repetitions: int = 8, seed: int = 0, material_names=FIVE_LIQUIDS
) -> dict:
    """Sec. III-D claim: TagScan's absolute feature fails on Wi-Fi CSI.

    Trains two classifiers on the same sessions: WiMi's differential
    feature, and the single-antenna absolute feature (phase + amplitude
    change of one antenna).  Per-packet clock errors randomise the
    absolute phase, so the baseline should sit near chance while WiMi
    stays high.
    """
    from repro.core.baselines import AbsoluteFeatureExtractor
    from repro.core.database import DatabaseClassifier, MaterialDatabase

    materials = _materials(material_names)
    refs = theory_reference_omegas(materials)
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        seed=seed,
    )
    train, test = split_dataset(dataset)
    labels = [m.name for m in materials]

    wimi_result = fit_and_score(train, test, labels, materials)

    # Absolute-feature baseline: same subcarriers, antenna 0.
    subcarriers = wimi_result.extras["selected_subcarriers"] or [3, 10, 20, 25]
    nominal = float(np.median(list(refs.values())))
    extractor = AbsoluteFeatureExtractor(nominal)
    db = MaterialDatabase()
    for s in train:
        db.add(extractor.measure(s, subcarriers))
    clf = DatabaseClassifier().fit(db)
    correct = sum(
        clf.predict_one(extractor.measure(s, subcarriers)) == s.material_name
        for s in test
    )
    return {
        "wimi_differential": wimi_result.accuracy,
        "absolute_feature": correct / len(test),
        "chance": 1.0 / len(materials),
    }


def multi_material_limitation(
    repetitions: int = 8, seed: int = 0, fractions=(0.25, 0.5, 0.75)
) -> dict:
    """Discussion-section limitation: multi-material targets.

    WiMi assumes a single material; a mixed target presents an effective
    medium whose feature lands between the components'.  Train on the
    pure liquids, test on water/oil mixtures: every mixture is reported
    as *some pure liquid*, with the reported label sliding from oil-like
    to water-like as the water fraction grows.
    """
    from repro.channel.materials import mixture
    from repro.csi.collector import DataCollector

    pure = _materials(("pure_water", "oil", "milk", "soy"))
    refs = theory_reference_omegas(pure)
    scene = standard_scene("lab")
    collector = DataCollector(scene, rng=seed)
    train = [s for m in pure for s in collector.collect_many(m, repetitions)]
    wimi = WiMi(refs)
    wimi.fit(train)

    out = {}
    water, oil = pure[0], pure[1]
    for fraction in fractions:
        blend = mixture(water, oil, fraction)
        votes = {}
        for _ in range(max(3, repetitions // 2)):
            predicted = wimi.identify(collector.collect(blend))
            votes[predicted] = votes.get(predicted, 0) + 1
        reported = max(votes, key=lambda k: votes[k])
        out[f"water_fraction_{fraction:g}"] = {
            "reported_as": reported,
            "votes": votes,
        }
    return out


def multi_link_fusion(
    repetitions: int = 8,
    seed: int = 0,
    num_links: int = 3,
    material_names=HARD_LIQUIDS,
) -> dict:
    """Discussion-section future work: fuse several Wi-Fi links.

    "more Wi-Fi links can be available to be employed for material
    sensing": each link is an independent deployment (own multipath, own
    impairments) looking at the same liquid; a majority vote over the
    per-link decisions should beat the average single link.  The links
    are deliberately stressed (library multipath, 3 m, short captures) so
    fusion has headroom to help.
    """
    from repro.csi.collector import DataCollector, SessionConfig

    if num_links < 1:
        raise ValueError(f"num_links must be >= 1, got {num_links}")
    materials = _materials(material_names)
    refs = theory_reference_omegas(materials)

    config = SessionConfig(num_packets=8)
    links = []
    for link in range(num_links):
        collector = DataCollector(
            standard_scene("library", distance_m=3.0), rng=seed * 101 + link
        )
        dataset = {
            m.name: collector.collect_many(m, repetitions, config)
            for m in materials
        }
        train, test = split_dataset(dataset)
        wimi = WiMi(refs)
        wimi.fit(train)
        links.append((wimi, test))

    # Per-link accuracy (batched: one denoiser pass per trace, and the
    # fused vote below reuses every cached stage).
    per_link = []
    for wimi, test in links:
        predictions = wimi.identify_batch(test)
        correct = sum(
            p == s.material_name for p, s in zip(predictions, test)
        )
        per_link.append(correct / len(test))

    # Fused: the k-th test session of every link observes the same
    # ground-truth liquid (identical collection order), so a majority
    # vote across links is well defined.
    num_test = len(links[0][1])
    fused_correct = 0
    for idx in range(num_test):
        truth = links[0][1][idx].material_name
        votes = {}
        for wimi, test in links:
            predicted = wimi.identify(test[idx])
            votes[predicted] = votes.get(predicted, 0) + 1
        if max(votes, key=lambda k: votes[k]) == truth:
            fused_correct += 1

    return {
        "per_link": per_link,
        "fused": fused_correct / num_test,
        "best_single": max(per_link),
        "mean_single": float(np.mean(per_link)),
    }
