"""Cluster serving benchmark: sharded processes vs the thread service.

``repro cluster-bench`` answers two questions about
:mod:`repro.cluster` and commits the answers as ``BENCH_PR7.json``:

1. **Throughput** -- on a wide re-measurement workload (hundreds of
   distinct sessions, each re-arriving in waves, the "many deployed
   links" regime of the north-star), does the multi-process cluster
   beat the single-process :class:`repro.serve.IdentificationService`?
   The workload is sized so the aggregate working set exceeds one
   :class:`repro.engine.StageCache` memory tier (default 4096
   entries): the shared in-process cache evicts under LRU churn and
   recomputes every artifact on the next wave, while consistent-hash
   routing keeps each cluster worker's shard inside its own cache --
   the capacity of the sharded tier scales with workers.  Both systems
   run memory-only with identical per-worker cache capacity, batch
   policy and worker count; the speedup is architectural, not a config
   handicap.
2. **Kill survival** -- with requests in flight, one worker process is
   SIGKILLed.  The orchestrator must restart it, redeliver the lost
   requests, and every prediction must match single-process serving
   exactly (zero lost requests).

The smoke preset (``--smoke``) shrinks the workload below the eviction
threshold so it fits CI; in that regime the shared cache never thrashes
and the cluster's IPC tax makes the speedup meaningless, so only the
correctness and survival assertions apply (the report records the
regime either way).
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

from repro.channel.materials import default_catalog
from repro.cluster import ClusterClient, ClusterConfig
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.engine import StageCache
from repro.experiments.datasets import collect_dataset, standard_scene
from repro.serve import IdentificationService, ServiceConfig

#: Materials used by every serving bench in this repo.
DEFAULT_MATERIALS = ("pure_water", "pepsi", "oil")

#: Full-run workload: 150 repetitions x 3 materials = 450 distinct
#: sessions x ~13 cached artifacts each comfortably exceeds one
#: 4096-entry memory tier while each of 2 shards stays inside its own.
DEFAULT_REPETITIONS = 150
#: CI-sized workload; below the eviction threshold by design.
SMOKE_REPETITIONS = 12

DEFAULT_PACKETS = 6
DEFAULT_WAVES = 2
DEFAULT_WORKERS = 2

#: Kill phase: per-request service time floor that guarantees requests
#: are still in flight when the SIGKILL lands.
KILL_THROTTLE_S = 0.05
KILL_REQUESTS = 24


def _flatten(dataset: dict) -> list:
    return [s for sessions in dataset.values() for s in sessions]


def run_cluster_bench(
    seed: int = 1,
    repetitions: int = DEFAULT_REPETITIONS,
    num_packets: int = DEFAULT_PACKETS,
    waves: int = DEFAULT_WAVES,
    workers: int = DEFAULT_WORKERS,
    store_root: str | Path | None = None,
    progress=None,
) -> dict:
    """Run both phases; returns the result dict (see module docstring).

    ``store_root`` hosts the kill phase's per-worker artifact-store
    shards (a temp directory when None).
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    import tempfile

    catalog = default_catalog()
    materials = [catalog.get(name) for name in DEFAULT_MATERIALS]
    note("collecting deployment")
    train = _flatten(collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=4,
        num_packets=num_packets, seed=seed,
    ))
    bench = _flatten(collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=repetitions,
        num_packets=num_packets, seed=seed + 6,
    ))
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)

    root = Path(store_root) if store_root else Path(tempfile.mkdtemp())
    registry = root / "registry"
    wimi.save_to_registry(registry, name="wimi")

    # Re-measurement workload: every distinct session arrives once per
    # wave (wave k repeats only after every session arrived k times, the
    # worst case for a shared LRU).
    workload = list(bench) * waves
    capacity = len(workload) + 8

    # ------------------------------------------------- single process
    note(f"single-process service: {len(workload)} requests")
    service = IdentificationService(
        wimi.clone_view(cache=StageCache()),
        ServiceConfig(
            queue_capacity=capacity, max_batch_size=8, num_workers=workers,
        ),
    )
    t0 = time.perf_counter()
    with service:
        handles = [service.submit(s) for s in workload]
        service_preds = [h.result(timeout=600.0) for h in handles]
    service_s = time.perf_counter() - t0
    service_counters = service.snapshot()["counters"]

    # --------------------------------------------------------- cluster
    note(f"cluster: {workers} worker processes, same workload")
    config = ClusterConfig(
        num_workers=workers, queue_capacity=capacity, max_batch_size=8,
        boot_timeout_s=120.0,
    )
    client = ClusterClient(registry, config=config)
    client.start()
    t0 = time.perf_counter()
    handles = client.submit_many(workload, timeout=None)
    cluster_preds = [h.result(timeout=600.0) for h in handles]
    cluster_s = time.perf_counter() - t0
    client.stop()
    snap = client.snapshot()
    cluster_counters = snap["cluster"]["counters"]
    merged_counters = snap["merged"]["counters"]

    # ------------------------------------------------------ kill phase
    note("kill phase: SIGKILL one worker mid-load")
    kill_sessions = (bench * ((KILL_REQUESTS // len(bench)) + 1))[
        :KILL_REQUESTS
    ]
    kill_expected = [str(x) for x in wimi.identify_batch(kill_sessions)]
    kill_config = ClusterConfig(
        num_workers=workers, queue_capacity=capacity, max_batch_size=2,
        boot_timeout_s=120.0, throttle_s=KILL_THROTTLE_S,
    )
    kill_client = ClusterClient(
        registry, config=kill_config, store_root=root / "stores"
    )
    kill_client.start()
    handles = kill_client.submit_many(kill_sessions, timeout=None)
    # The throttle guarantees the load is still in flight well past
    # this point; kill shard 0's process while it serves.
    time.sleep(KILL_THROTTLE_S * 4)
    victim = kill_client.orchestrator._slots[0]
    victim_pid = victim.process.pid
    os.kill(victim_pid, signal.SIGKILL)
    kill_preds = [h.result(timeout=600.0) for h in handles]
    kill_snap = kill_client.snapshot()
    kill_client.stop()
    kc = kill_snap["cluster"]["counters"]

    eviction_regime = (
        len(bench) * 13 > 4096  # ~13 cached artifacts per session
    )
    return {
        "seed": seed,
        "materials": list(DEFAULT_MATERIALS),
        "workers": workers,
        "distinct_sessions": len(bench),
        "waves": waves,
        "requests": len(workload),
        "num_packets": num_packets,
        "eviction_regime": eviction_regime,
        "throughput": {
            "service": {
                "seconds": service_s,
                "requests_per_s": len(workload) / service_s,
                "memory_hits": service_counters["cache.memory_hits"],
                "misses": service_counters["cache.misses"],
            },
            "cluster": {
                "seconds": cluster_s,
                "requests_per_s": len(workload) / cluster_s,
                "memory_hits": merged_counters.get("cache.memory_hits", 0),
                "misses": merged_counters.get("cache.misses", 0),
                "completed": cluster_counters["requests.completed"],
                "failed": cluster_counters["requests.failed"],
            },
            "speedup": service_s / cluster_s if cluster_s else 0.0,
            "predictions_identical": service_preds == cluster_preds,
        },
        "kill_survival": {
            "requests": len(kill_sessions),
            "killed_pid": victim_pid,
            "restarts": kc["cluster.restarts"],
            "redeliveries": kc["cluster.redeliveries"],
            "completed": kc["requests.completed"],
            "failed": kc["requests.failed"],
            "duplicate_replies": kc["cluster.duplicate_replies"],
            "zero_lost": (
                kc["requests.completed"] == len(kill_sessions)
                and kc["requests.failed"] == 0
            ),
            "predictions_identical": kill_preds == kill_expected,
        },
    }


def write_report(path: str | Path, results: dict) -> dict:
    """Write the committed artifact (sibling of ``BENCH_PR6.json``)."""
    report = {"schema": 1, "benchmark": "cluster-serving", **results}
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def render_report(results: dict) -> str:
    """Human-readable summary of one run."""
    thr = results["throughput"]
    kill = results["kill_survival"]
    svc, cl = thr["service"], thr["cluster"]
    lines = [
        f"cluster-bench -- {results['requests']} requests "
        f"({results['distinct_sessions']} distinct sessions x"
        f"{results['waves']} waves, seed {results['seed']}), "
        f"{results['workers']} workers",
        f"  single-process service: {svc['seconds']:.2f}s "
        f"({svc['requests_per_s']:7.1f} req/s)  "
        f"{svc['memory_hits']} memory hits / {svc['misses']} misses",
        f"  cluster ({results['workers']} processes): "
        f"{cl['seconds']:.2f}s ({cl['requests_per_s']:7.1f} req/s)  "
        f"{cl['memory_hits']} memory hits / {cl['misses']} misses",
        f"  speedup: {thr['speedup']:.2f}x  predictions identical: "
        f"{'yes' if thr['predictions_identical'] else 'NO'}",
    ]
    if not results["eviction_regime"]:
        lines.append(
            "  (smoke regime: working set fits one cache; speedup "
            "not meaningful)"
        )
    lines += [
        f"  kill survival: {kill['requests']} requests, worker pid "
        f"{kill['killed_pid']} SIGKILLed mid-load",
        f"    restarts {kill['restarts']}, redeliveries "
        f"{kill['redeliveries']}, completed {kill['completed']}, "
        f"failed {kill['failed']}, duplicates "
        f"{kill['duplicate_replies']}",
        f"    zero lost: {'yes' if kill['zero_lost'] else 'NO'}  "
        f"predictions identical: "
        f"{'yes' if kill['predictions_identical'] else 'NO'}",
    ]
    return "\n".join(lines)
