"""Spatially-selective wavelet denoiser (paper Sec. III-C, Eq. 8-13).

The paper's amplitude denoiser rests on one observation: across wavelet
scales, *useful signal* coefficients are strongly correlated while
*impulse-noise* coefficients are not (Eq. 8-10 prove the noise power in a
scale decays with the scale).  Multiplying the coefficients of adjacent
scales therefore amplifies signal locations relative to noise -- the
spatially-selective filtering of Xu, Weaver, Healy & Lu (1994), the
paper's reference [24].

Algorithm, per wavelet scale ``l`` (undecimated transform so every scale
has full length):

1. ``Corr_l = W_l * W_{l+1}``                                  (Eq. 11)
2. ``NCorr_l = Corr_l * sqrt(PW_l / PCorr_l)``                 (Eq. 12)
3. positions with ``|NCorr_l| >= |W_l|`` are signal: move those
   coefficients into the output and zero them in the work buffer (Eq. 13;
   note the paper's printed equation and its prose contradict each other
   -- we implement the original reference's convention, where *high
   cross-scale correlation marks signal to keep*)
4. repeat 1-3 until the residual power ``PW_l`` drops to the noise
   threshold estimated by the robust median rule (reference [24]).

Everything left in the work buffers when iteration stops is treated as
noise and discarded; the inverse transform of the extracted coefficients
is the denoised signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.stats import robust_sigma
from repro.dsp.wavelet import Wavelet, get_wavelet, iswt, max_swt_level, swt


def remove_outliers(
    x: np.ndarray, num_sigmas: float = 3.0
) -> tuple[np.ndarray, np.ndarray]:
    """Paper's first denoising step: 3-sigma outlier rejection.

    Samples outside ``[mu - k sigma, mu + k sigma]`` are replaced by the
    median of the surviving samples (the paper "filters out" the outliers;
    replacing keeps the series aligned in time, which the wavelet stage
    needs).

    Returns:
        ``(cleaned, outlier_mask)``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if x.size == 0:
        raise ValueError("expected a non-empty signal")
    if num_sigmas <= 0:
        raise ValueError(f"num_sigmas must be positive, got {num_sigmas}")
    mu = float(np.mean(x))
    sigma = float(np.std(x))
    if sigma == 0.0:
        return x.copy(), np.zeros(x.shape, dtype=bool)
    mask = np.abs(x - mu) > num_sigmas * sigma
    cleaned = x.copy()
    if mask.any():
        survivors = x[~mask]
        fill = float(np.median(survivors)) if survivors.size else mu
        cleaned[mask] = fill
    return cleaned, mask


@dataclass
class SpatiallySelectiveDenoiser:
    """The paper's two-step amplitude denoiser as a reusable object.

    Attributes:
        wavelet_name: Filter bank to use (default db2 -- short enough for
            the paper's 20-packet windows).
        levels: SWT depth (clamped to what the signal length allows).
        outlier_sigmas: Threshold of the outlier-rejection pre-step.
        max_iterations: Safety bound on the extract-and-repeat loop.
    """

    wavelet_name: str = "db2"
    levels: int = 3
    outlier_sigmas: float = 3.0
    max_iterations: int = 20

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {self.levels}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        # Fail fast on unknown wavelet names.
        self._wavelet: Wavelet = get_wavelet(self.wavelet_name)

    # ------------------------------------------------------------------

    def denoise(self, x: np.ndarray) -> np.ndarray:
        """Full pipeline: outlier rejection, then correlation filtering."""
        cleaned, _ = remove_outliers(x, self.outlier_sigmas)
        return self.correlation_filter(cleaned)

    def correlation_filter(self, x: np.ndarray) -> np.ndarray:
        """Eq. 8-13 cross-scale correlation filtering (no outlier step)."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 1:
            raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
        limit = max_swt_level(x.size, self._wavelet)
        if limit == 0:
            # Too short to transform: nothing to do.
            return x.copy()
        levels = min(self.levels, limit)
        approx, details = swt(x, self._wavelet, levels)
        new_details = self._filter_details(details)
        return iswt(approx, new_details, self._wavelet)

    # ------------------------------------------------------------------

    def _filter_details(self, details: list[np.ndarray]) -> list[np.ndarray]:
        """Extract signal coefficients scale by scale.

        ``details[l]`` is correlated with ``details[l+1]``; the coarsest
        scale has no neighbour and pairs with itself (plain magnitude
        comparison), which reduces to keeping its strongest coefficients.
        """
        work = [d.copy() for d in details]
        out = [np.zeros_like(d) for d in details]
        num_levels = len(details)
        for l in range(num_levels):
            neighbour_idx = l + 1 if l + 1 < num_levels else l
            threshold = self._noise_threshold(details[l])
            for _ in range(self.max_iterations):
                power = float(np.sum(work[l] ** 2))
                if power <= threshold:
                    break
                mask = self._signal_mask(work[l], work[neighbour_idx])
                if not mask.any():
                    break
                out[l][mask] += work[l][mask]
                work[l][mask] = 0.0
        return out

    @staticmethod
    def _signal_mask(w_l: np.ndarray, w_next: np.ndarray) -> np.ndarray:
        """Positions where cross-scale correlation dominates (signal)."""
        corr = w_l * w_next  # Eq. 11
        p_w = float(np.sum(w_l ** 2))
        p_corr = float(np.sum(corr ** 2))
        if p_corr == 0.0 or p_w == 0.0:
            return np.zeros(w_l.shape, dtype=bool)
        ncorr = corr * np.sqrt(p_w / p_corr)  # Eq. 12
        return np.abs(ncorr) >= np.abs(w_l)  # Eq. 13 (reference convention)

    @staticmethod
    def _noise_threshold(detail: np.ndarray) -> float:
        """Residual-power stopping threshold from the robust median rule.

        The noise std-dev in a detail band is estimated as
        ``MAD / 0.6745``; iteration stops once the remaining band power is
        what pure noise of that level would carry.
        """
        sigma = robust_sigma(detail)
        return detail.size * sigma * sigma


def wavelet_denoise(
    x: np.ndarray,
    wavelet_name: str = "db2",
    levels: int = 3,
    outlier_sigmas: float = 3.0,
) -> np.ndarray:
    """Convenience wrapper around :class:`SpatiallySelectiveDenoiser`."""
    denoiser = SpatiallySelectiveDenoiser(
        wavelet_name=wavelet_name, levels=levels, outlier_sigmas=outlier_sigmas
    )
    return denoiser.denoise(x)
