"""Spatially-selective wavelet denoiser (paper Sec. III-C, Eq. 8-13).

The paper's amplitude denoiser rests on one observation: across wavelet
scales, *useful signal* coefficients are strongly correlated while
*impulse-noise* coefficients are not (Eq. 8-10 prove the noise power in a
scale decays with the scale).  Multiplying the coefficients of adjacent
scales therefore amplifies signal locations relative to noise -- the
spatially-selective filtering of Xu, Weaver, Healy & Lu (1994), the
paper's reference [24].

Algorithm, per wavelet scale ``l`` (undecimated transform so every scale
has full length):

1. ``Corr_l = W_l * W_{l+1}``                                  (Eq. 11)
2. ``NCorr_l = Corr_l * sqrt(PW_l / PCorr_l)``                 (Eq. 12)
3. positions with ``|NCorr_l| >= |W_l|`` are signal: move those
   coefficients into the output and zero them in the work buffer (Eq. 13;
   note the paper's printed equation and its prose contradict each other
   -- we implement the original reference's convention, where *high
   cross-scale correlation marks signal to keep*)
4. repeat 1-3 until the residual power ``PW_l`` drops to the noise
   threshold estimated by the robust median rule (reference [24]).

Everything left in the work buffers when iteration stops is treated as
noise and discarded; the inverse transform of the extracted coefficients
is the denoised signal.

Batched operation
-----------------
Every entry point accepts either a 1-D series ``(time,)`` or a 2-D
``(time, channels)`` array.  In the 2-D form the wavelet transform runs
along axis 0 for all channels at once and the extract-and-repeat loop
keeps a per-channel *active mask* (each channel stops iterating at its
own threshold), so one call denoises every (subcarrier, antenna) column
of a CSI trace -- the pipeline's hot path.  Per-channel results equal
the corresponding 1-D call to within floating-point summation order
(<= 1e-9; see ``tests/test_perf_equivalence.py``).  The original scalar
implementations are kept as ``_reference_*`` for the equivalence tests
and the perf-bench baseline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.dsp.precision import real_dtype, validate_precision
from repro.dsp.stats import robust_sigma, robust_sigma_axis
from repro.dsp.wavelet import (
    Wavelet,
    _reference_iswt,
    _reference_swt,
    get_wavelet,
    iswt,
    max_swt_level,
    swt,
)


def _as_float_array(x: np.ndarray) -> np.ndarray:
    """Coerce to a floating array, preserving float32/float64.

    Historically every entry point forced float64; preserving an
    explicit float32 input lets the low-precision pipeline keep its
    working dtype through the outlier step without changing any float64
    caller (integer and exotic inputs still promote to float64).
    """
    x = np.asarray(x)
    if x.dtype == np.float32 or x.dtype == np.float64:
        return x
    return x.astype(float)


def _reference_remove_outliers(
    x: np.ndarray, num_sigmas: float = 3.0
) -> tuple[np.ndarray, np.ndarray]:
    """Original strictly-1-D :func:`remove_outliers` (equivalence ref)."""
    x = _as_float_array(x)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if x.size == 0:
        raise ValueError("expected a non-empty signal")
    if num_sigmas <= 0:
        raise ValueError(f"num_sigmas must be positive, got {num_sigmas}")
    mu = float(np.mean(x))
    sigma = float(np.std(x))
    if sigma == 0.0:
        return x.copy(), np.zeros(x.shape, dtype=bool)
    mask = np.abs(x - mu) > num_sigmas * sigma
    cleaned = x.copy()
    if mask.any():
        survivors = x[~mask]
        fill = float(np.median(survivors)) if survivors.size else mu
        cleaned[mask] = fill
    return cleaned, mask


def remove_outliers(
    x: np.ndarray, num_sigmas: float = 3.0
) -> tuple[np.ndarray, np.ndarray]:
    """Paper's first denoising step: 3-sigma outlier rejection.

    Samples outside ``[mu - k sigma, mu + k sigma]`` are replaced by the
    median of the surviving samples (the paper "filters out" the outliers;
    replacing keeps the series aligned in time, which the wavelet stage
    needs).

    ``x`` may be 1-D or 2-D ``(time, channels)``; in the 2-D form every
    channel column is screened against its own mean/std.

    Returns:
        ``(cleaned, outlier_mask)``.  ``cleaned`` keeps a float32
        input's dtype (other dtypes promote to float64 as before).
    """
    x = _as_float_array(x)
    if x.ndim == 1:
        return _reference_remove_outliers(x, num_sigmas)
    if x.ndim != 2:
        raise ValueError(
            f"expected a 1-D or 2-D (time, channels) signal, "
            f"got shape {x.shape}"
        )
    if x.size == 0:
        raise ValueError("expected a non-empty signal")
    if num_sigmas <= 0:
        raise ValueError(f"num_sigmas must be positive, got {num_sigmas}")
    mu = np.mean(x, axis=0)
    sigma = np.std(x, axis=0)
    cleaned = x.copy()
    mask = np.zeros(x.shape, dtype=bool)
    screened = sigma > 0.0
    mask[:, screened] = (
        np.abs(x[:, screened] - mu[screened])
        > num_sigmas * sigma[screened]
    )
    # Outlier-bearing columns are rare; only they need the survivor
    # median (which has no clean full-array vectorization).
    for c in np.nonzero(mask.any(axis=0))[0]:
        survivors = x[~mask[:, c], c]
        fill = float(np.median(survivors)) if survivors.size else float(mu[c])
        cleaned[mask[:, c], c] = fill
    return cleaned, mask


@dataclass
class SpatiallySelectiveDenoiser:
    """The paper's two-step amplitude denoiser as a reusable object.

    Attributes:
        wavelet_name: Filter bank to use (default db2 -- short enough for
            the paper's 20-packet windows).
        levels: SWT depth (clamped to what the signal length allows).
        outlier_sigmas: Threshold of the outlier-rejection pre-step.
        max_iterations: Safety bound on the extract-and-repeat loop.
        precision: Working precision of the transform and the
            extract-and-repeat loop: ``"float64"`` (default,
            bit-compatible with the scalar references) or ``"float32"``
            (half the memory traffic on the batched hot path).

    Thread-safety: one denoiser instance is shared by every serving
    worker thread (``WiMi.clone_view`` shares the amplitude processor),
    so the reusable work/out coefficient buffers live in a
    ``threading.local`` slot -- concurrent ``denoise`` calls never see
    each other's scratch.  The buffers are only valid inside one
    ``_filter_details`` call; nothing returned to callers aliases them
    (``iswt`` consumes the extracted coefficients and returns a fresh
    array).
    """

    wavelet_name: str = "db2"
    levels: int = 3
    outlier_sigmas: float = 3.0
    max_iterations: int = 20
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {self.levels}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        validate_precision(self.precision)
        self._dtype = real_dtype(self.precision)
        # Fail fast on unknown wavelet names.
        self._wavelet: Wavelet = get_wavelet(self.wavelet_name)
        self._scratch = threading.local()

    def __getstate__(self) -> dict:
        # threading.local cannot be pickled; scratch buffers are
        # per-process/thread anyway, so drop them and rebuild on load.
        state = self.__dict__.copy()
        state.pop("_scratch", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._scratch = threading.local()

    # ------------------------------------------------------------------

    def denoise(self, x: np.ndarray) -> np.ndarray:
        """Full pipeline: outlier rejection, then correlation filtering.

        Accepts 1-D ``(time,)`` or 2-D ``(time, channels)`` input; the
        2-D form denoises every channel in one batched pass.
        """
        cleaned, _ = remove_outliers(
            np.asarray(x, dtype=self._dtype), self.outlier_sigmas
        )
        return self.correlation_filter(cleaned)

    def correlation_filter(self, x: np.ndarray) -> np.ndarray:
        """Eq. 8-13 cross-scale correlation filtering (no outlier step)."""
        x = np.asarray(x, dtype=self._dtype)
        if x.ndim not in (1, 2):
            raise ValueError(
                f"expected a 1-D or 2-D (time, channels) signal, "
                f"got shape {x.shape}"
            )
        limit = max_swt_level(x.shape[0], self._wavelet)
        if limit == 0:
            # Too short to transform: nothing to do.
            return x.copy()
        levels = min(self.levels, limit)
        approx, details = swt(x, self._wavelet, levels, dtype=self._dtype)
        new_details = self._filter_details(details)
        return iswt(approx, new_details, self._wavelet, dtype=self._dtype)

    # ------------------------------------------------------------------

    def _workspace(
        self, details: list[np.ndarray], slot: str
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-thread reusable ``(work, out)`` coefficient buffers.

        ``work`` is refilled with copies of ``details``; ``out`` is
        zeroed.  One buffer set is kept per ``slot`` (batched vs scalar
        path) and reused while the coefficient shapes/dtypes repeat --
        the common case for streaming windows and same-length traces --
        so a warm call allocates nothing.  Ownership rule: the buffers
        belong to this thread's *current* call only; they are
        invalidated by the next call on the same thread.
        """
        key = tuple((d.shape, d.dtype.str) for d in details)
        cached = getattr(self._scratch, slot, None)
        if cached is not None and cached[0] == key:
            _, work, out = cached
            for buf, d in zip(work, details):
                np.copyto(buf, d)
            for buf in out:
                buf.fill(0.0)
        else:
            work = [d.copy() for d in details]
            out = [np.zeros_like(d) for d in details]
            setattr(self._scratch, slot, (key, work, out))
        return work, out

    def _filter_details(self, details: list[np.ndarray]) -> list[np.ndarray]:
        """Extract signal coefficients scale by scale.

        ``details[l]`` is correlated with ``details[l+1]``; the coarsest
        scale has no neighbour and pairs with itself (plain magnitude
        comparison), which reduces to keeping its strongest coefficients.

        With 2-D coefficient arrays the extract-and-repeat loop runs on
        all channels simultaneously; a per-channel active mask freezes
        channels whose residual power has hit their own threshold (the
        batched equivalent of the scalar ``break``).
        """
        if details[0].ndim == 1:
            return self._filter_details_1d(details)
        work, out = self._workspace(details, "batched")
        num_levels = len(details)
        for l in range(num_levels):
            neighbour_idx = l + 1 if l + 1 < num_levels else l
            threshold = self._noise_threshold(details[l])
            active = np.ones(details[l].shape[1], dtype=bool)
            for _ in range(self.max_iterations):
                power = np.sum(work[l] ** 2, axis=0)
                active &= power > threshold
                if not active.any():
                    break
                mask = self._signal_mask(work[l], work[neighbour_idx])
                mask &= active[None, :]
                active &= mask.any(axis=0)
                if not active.any():
                    break
                out[l][mask] += work[l][mask]
                work[l][mask] = 0.0
        return out

    def _filter_details_1d(
        self, details: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Scalar (1-D) extract-and-repeat loop.

        Shares the per-thread workspace so repeated same-length calls
        (the per-column reference path iterates one call per channel)
        stop re-allocating their work/out lists every call.
        """
        work, out = self._workspace(details, "scalar")
        num_levels = len(details)
        for l in range(num_levels):
            neighbour_idx = l + 1 if l + 1 < num_levels else l
            threshold = self._noise_threshold(details[l])
            for _ in range(self.max_iterations):
                power = float(np.sum(work[l] ** 2))
                if power <= threshold:
                    break
                mask = self._signal_mask(work[l], work[neighbour_idx])
                if not mask.any():
                    break
                out[l][mask] += work[l][mask]
                work[l][mask] = 0.0
        return out

    @staticmethod
    def _signal_mask(w_l: np.ndarray, w_next: np.ndarray) -> np.ndarray:
        """Positions where cross-scale correlation dominates (signal)."""
        corr = w_l * w_next  # Eq. 11
        if w_l.ndim == 1:
            p_w = float(np.sum(w_l ** 2))
            p_corr = float(np.sum(corr ** 2))
            if p_corr == 0.0 or p_w == 0.0:
                return np.zeros(w_l.shape, dtype=bool)
            ncorr = corr * np.sqrt(p_w / p_corr)  # Eq. 12
            return np.abs(ncorr) >= np.abs(w_l)  # Eq. 13 (reference conv.)
        p_w = np.sum(w_l ** 2, axis=0)
        p_corr = np.sum(corr ** 2, axis=0)
        valid = (p_corr > 0.0) & (p_w > 0.0)
        # dtype-matched scale: a float64 zeros() here would NEP-50
        # promote the whole float32 ncorr product back to float64.
        scale = np.zeros(p_w.shape, dtype=p_w.dtype)
        scale[valid] = np.sqrt(p_w[valid] / p_corr[valid])
        ncorr = corr * scale[None, :]
        return (np.abs(ncorr) >= np.abs(w_l)) & valid[None, :]

    @staticmethod
    def _noise_threshold(detail: np.ndarray) -> float | np.ndarray:
        """Residual-power stopping threshold from the robust median rule.

        The noise std-dev in a detail band is estimated as
        ``MAD / 0.6745``; iteration stops once the remaining band power is
        what pure noise of that level would carry.  For 2-D coefficients
        the threshold is per channel.
        """
        if detail.ndim == 1:
            sigma = robust_sigma(detail)
            return detail.size * sigma * sigma
        sigma = robust_sigma_axis(detail, axis=0)
        return detail.shape[0] * sigma * sigma

    # ------------------------------------------------------------------
    # Scalar reference path (pre-vectorization), for equivalence tests
    # and the perf-bench baseline.
    # ------------------------------------------------------------------

    def _reference_denoise(self, x: np.ndarray) -> np.ndarray:
        """Original strictly-1-D :meth:`denoise`."""
        cleaned, _ = _reference_remove_outliers(x, self.outlier_sigmas)
        return self._reference_correlation_filter(cleaned)

    def _reference_correlation_filter(self, x: np.ndarray) -> np.ndarray:
        """Original strictly-1-D :meth:`correlation_filter`."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 1:
            raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
        limit = max_swt_level(x.size, self._wavelet)
        if limit == 0:
            return x.copy()
        levels = min(self.levels, limit)
        approx, details = _reference_swt(x, self._wavelet, levels)
        new_details = self._filter_details_1d(details)
        return _reference_iswt(approx, new_details, self._wavelet)


def wavelet_denoise(
    x: np.ndarray,
    wavelet_name: str = "db2",
    levels: int = 3,
    outlier_sigmas: float = 3.0,
) -> np.ndarray:
    """Convenience wrapper around :class:`SpatiallySelectiveDenoiser`."""
    denoiser = SpatiallySelectiveDenoiser(
        wavelet_name=wavelet_name, levels=levels, outlier_sigmas=outlier_sigmas
    )
    return denoiser.denoise(x)
