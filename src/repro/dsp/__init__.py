"""Signal-processing substrate, implemented from scratch.

The paper's amplitude denoiser needs per-scale wavelet coefficients and an
undecimated (stationary) transform; no wavelet library is available
offline, so :mod:`repro.dsp.wavelet` implements orthogonal wavelet filter
banks (Haar, Daubechies, Symlets), the decimated DWT and the undecimated
SWT with exact reconstruction.  :mod:`repro.dsp.wavelet_denoise` builds the
paper's Eq. 8-13 spatially-selective correlation denoiser on top.
:mod:`repro.dsp.filters` provides the three baseline filters of Fig. 7
(median, sliding mean, Butterworth -- including our own bilinear-transform
Butterworth design).  :mod:`repro.dsp.stats` has the circular and robust
statistics used throughout (angular spread, MAD).
"""

from repro.dsp.filters import (
    butter_lowpass_coefficients,
    butterworth_filter,
    lfilter,
    filtfilt,
    median_filter,
    sliding_mean_filter,
)
from repro.dsp.stats import (
    angular_spread_deg,
    circular_mean,
    circular_std,
    circular_variance,
    mad,
    robust_sigma,
)
from repro.dsp.streaming import (
    OverlapWindowDenoiser,
    RollingMad,
    RunningCircularStats,
    RunningVariance,
)
from repro.dsp.wavelet import (
    Wavelet,
    WaveletDecomposition,
    get_wavelet,
    iswt,
    swt,
    wavedec,
    waverec,
)
from repro.dsp.wavelet_denoise import (
    SpatiallySelectiveDenoiser,
    remove_outliers,
    wavelet_denoise,
)

__all__ = [
    "OverlapWindowDenoiser",
    "RollingMad",
    "RunningCircularStats",
    "RunningVariance",
    "SpatiallySelectiveDenoiser",
    "Wavelet",
    "WaveletDecomposition",
    "angular_spread_deg",
    "butter_lowpass_coefficients",
    "butterworth_filter",
    "circular_mean",
    "circular_std",
    "circular_variance",
    "filtfilt",
    "get_wavelet",
    "iswt",
    "lfilter",
    "mad",
    "median_filter",
    "remove_outliers",
    "robust_sigma",
    "sliding_mean_filter",
    "swt",
    "wavedec",
    "wavelet_denoise",
    "waverec",
]
