"""Classical denoising filters -- the Fig. 7 baselines.

The paper compares its wavelet denoiser against three "general filter
methods": a median filter, a sliding (moving-average) filter and a
Butterworth lowpass.  All three are implemented here from scratch,
including the Butterworth design itself (analog prototype poles + bilinear
transform), so the comparison does not depend on any external DSP library.
"""

from __future__ import annotations

import cmath
import math

import numpy as np


def _check_signal(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {x.shape}")
    if x.size == 0:
        raise ValueError("expected a non-empty signal")
    return x


def _check_window(window: int, n: int) -> int:
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window % 2 == 0:
        raise ValueError(f"window must be odd, got {window}")
    return min(window, n if n % 2 == 1 else n - 1) if n > 1 else 1


def median_filter(x: np.ndarray, window: int = 5) -> np.ndarray:
    """Sliding-window median with edge replication."""
    x = _check_signal(x)
    window = _check_window(window, x.size)
    half = window // 2
    padded = np.concatenate([np.full(half, x[0]), x, np.full(half, x[-1])])
    out = np.empty_like(x)
    for i in range(x.size):
        out[i] = np.median(padded[i : i + window])
    return out


def sliding_mean_filter(x: np.ndarray, window: int = 5) -> np.ndarray:
    """Sliding-window mean ("slide filter") with edge replication."""
    x = _check_signal(x)
    window = _check_window(window, x.size)
    half = window // 2
    padded = np.concatenate([np.full(half, x[0]), x, np.full(half, x[-1])])
    kernel = np.full(window, 1.0 / window)
    return np.convolve(padded, kernel, mode="valid")


# ----------------------------------------------------------------------
# Butterworth design (from scratch)
# ----------------------------------------------------------------------


def butter_lowpass_coefficients(
    order: int, cutoff_normalized: float
) -> tuple[np.ndarray, np.ndarray]:
    """Digital Butterworth lowpass via bilinear transform.

    Args:
        order: Filter order (>= 1).
        cutoff_normalized: Cutoff as a fraction of the Nyquist frequency,
            strictly inside (0, 1).

    Returns:
        ``(b, a)`` transfer-function coefficients with ``a[0] == 1``.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if not 0.0 < cutoff_normalized < 1.0:
        raise ValueError(
            f"cutoff must be in (0, 1) of Nyquist, got {cutoff_normalized}"
        )
    # Pre-warped analog cutoff for a sample period of 2 (bilinear with T=2).
    warped = math.tan(math.pi * cutoff_normalized / 2.0)
    # Analog Butterworth prototype poles on the unit circle, left half-plane.
    poles_analog = [
        warped
        * cmath.exp(1j * math.pi * (2.0 * k + order + 1.0) / (2.0 * order))
        for k in range(order)
    ]
    # Bilinear transform: z = (1 + s) / (1 - s).
    poles_digital = [(1.0 + p) / (1.0 - p) for p in poles_analog]
    gain = np.prod([warped / (1.0 - p) for p in poles_analog])
    # Zeros of a lowpass land at z = -1 (order of them).
    b = np.real(np.poly(np.full(order, -1.0 + 0j))) * np.real(gain)
    a = np.real(np.poly(np.array(poles_digital)))
    # Normalise DC gain to exactly 1 (kills residual rounding).
    dc = np.sum(b) / np.sum(a)
    b = b / dc
    return b, a


def lfilter(b: np.ndarray, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Direct-form II transposed IIR filtering (single pass)."""
    b = np.asarray(b, dtype=float)
    a = np.asarray(a, dtype=float)
    x = _check_signal(x)
    if a.size == 0 or a[0] == 0:
        raise ValueError("a[0] must be non-zero")
    b = b / a[0]
    a = a / a[0]
    n_state = max(b.size, a.size) - 1
    b_pad = np.concatenate([b, np.zeros(n_state + 1 - b.size)])
    a_pad = np.concatenate([a, np.zeros(n_state + 1 - a.size)])
    state = np.zeros(n_state)
    out = np.empty_like(x)
    for i, sample in enumerate(x):
        y = b_pad[0] * sample + (state[0] if n_state else 0.0)
        for s in range(n_state - 1):
            state[s] = b_pad[s + 1] * sample + state[s + 1] - a_pad[s + 1] * y
        if n_state:
            state[n_state - 1] = b_pad[n_state] * sample - a_pad[n_state] * y
        out[i] = y
    return out


def filtfilt(b: np.ndarray, a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Zero-phase filtering: forward pass, backward pass, edge padding."""
    x = _check_signal(x)
    pad = min(12 * (max(len(np.atleast_1d(b)), len(np.atleast_1d(a))) - 1), x.size - 1)
    if pad > 0:
        # Odd reflection keeps the signal level continuous at the edges.
        front = 2.0 * x[0] - x[pad:0:-1]
        back = 2.0 * x[-1] - x[-2 : -pad - 2 : -1]
        extended = np.concatenate([front, x, back])
    else:
        extended = x
    forward = lfilter(b, a, extended)
    backward = lfilter(b, a, forward[::-1])[::-1]
    if pad > 0:
        return backward[pad:-pad]
    return backward


def butterworth_filter(
    x: np.ndarray, cutoff_normalized: float = 0.25, order: int = 3
) -> np.ndarray:
    """Zero-phase Butterworth lowpass -- the Fig. 7(c) baseline."""
    b, a = butter_lowpass_coefficients(order, cutoff_normalized)
    return filtfilt(b, a, x)
