"""Preallocated row-buffer batch assembly for the streaming hot path.

Before this module the streaming trace state kept every raw amplitude
row as its own small array in a Python list and re-assembled each
denoise window with ``np.stack`` -- one fresh ``(window, channels)``
allocation plus ``window`` row copies per emitted window, forever.
:class:`RowRingBuffer` replaces that with one contiguous, preallocated
2-D arena that grows geometrically: appending copies the row once into
the arena, and a window is a **zero-copy view** ``buffer[start:stop]``
(C-contiguous, because the slice runs along the leading axis).

Ownership rules (see DESIGN.md §14):

* The buffer owns its storage; ``append`` copies the caller's row in,
  so the caller may reuse/mutate its row afterwards.
* Views handed out by :meth:`window`/:meth:`rows` are **read-only** and
  remain valid forever: rows are append-only (committed rows are never
  rewritten) and a capacity grow allocates a new arena, leaving old
  views attached to the old one.
* Consumers must not hold a view across process boundaries; hash or
  copy it (``np.array(view)``) if it must outlive this process.
"""

from __future__ import annotations

import numpy as np

#: Initial row capacity of a fresh buffer.
_INITIAL_CAPACITY = 16


class RowRingBuffer:
    """Append-only contiguous ``(rows, channels)`` arena with view reads.

    Args:
        channels: Row width (fixed for the buffer's lifetime).
        dtype: Storage dtype of the rows (the streaming path passes its
            working precision, so a float32 stream stores float32 rows
            -- half the arena traffic).
        capacity: Initial preallocated row count; grows by doubling.
    """

    def __init__(
        self,
        channels: int,
        dtype: np.dtype | type = np.float64,
        capacity: int = _INITIAL_CAPACITY,
    ):
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer = np.empty((capacity, channels), dtype=np.dtype(dtype))
        self._length = 0

    @property
    def channels(self) -> int:
        """Row width."""
        return self._buffer.shape[1]

    @property
    def capacity(self) -> int:
        """Currently allocated row slots."""
        return self._buffer.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype."""
        return self._buffer.dtype

    def __len__(self) -> int:
        return self._length

    def append(self, row: np.ndarray) -> np.ndarray:
        """Copy one row in; returns a read-only view of the stored row."""
        row = np.asarray(row)
        if row.shape != (self.channels,):
            raise ValueError(
                f"row shape {row.shape} does not match ({self.channels},)"
            )
        if self._length == self.capacity:
            self._grow(2 * self.capacity)
        self._buffer[self._length] = row
        stored = self._buffer[self._length]
        stored.setflags(write=False)
        self._length += 1
        return stored

    def _grow(self, capacity: int) -> None:
        old = self._buffer
        self._buffer = np.empty(
            (capacity, old.shape[1]), dtype=old.dtype
        )
        self._buffer[: self._length] = old[: self._length]

    def window(self, start: int, stop: int) -> np.ndarray:
        """Zero-copy read-only view of rows ``[start, stop)``.

        The view is C-contiguous (leading-axis slice of a C-ordered
        arena), so content hashing and BLAS consumers see one straight
        memory run -- no ``np.stack`` re-assembly.
        """
        if not 0 <= start <= stop <= self._length:
            raise IndexError(
                f"window [{start}, {stop}) out of range for "
                f"{self._length} rows"
            )
        view = self._buffer[start:stop]
        view.setflags(write=False)
        return view

    def rows(self) -> np.ndarray:
        """Read-only view of every committed row."""
        return self.window(0, self._length)
