"""Single-pass (streaming) statistics and windowed amplitude denoising.

WiMi's capture regime is one packet every ~10 ms, but the batch pipeline
buffers a whole trace before the first DSP stage runs.  This module holds
the incremental primitives that let feature extraction run *while* the
trace is still arriving:

* :class:`RunningCircularStats` -- element-wise circular mean/variance
  accumulated as resultant vectors, one packet at a time.  Mirrors the
  NaN-masking semantics of :func:`repro.dsp.stats.circular_mean_axis`
  with ``ignore_nan=True``: a non-finite reading is excluded from its
  element's mean, an element with no finite reading at all is NaN.
* :class:`RunningVariance` -- Welford's online mean/variance.
* :class:`RollingMad` -- median absolute deviation over a sliding window
  of recent samples (a bounded-memory noise-level diagnostic).
* :class:`OverlapWindowDenoiser` -- the Sec. III-C outlier + wavelet
  denoiser applied to fixed-size packet windows as they complete, with
  overlap-add recombination.  Each window mirrors the per-trace
  treatment of ``AmplitudeProcessor.compute_clean_amplitudes`` (median
  imputation of non-finite samples, dead-in-window columns restored to
  NaN, windows shorter than 4 packets get outlier rejection only).

Determinism contract: every accumulator ingests exactly one packet per
``add``/window step, so the final state after a stream is a function of
the packet *sequence* alone -- feeding the same packets in chunks of 1,
7 or all-at-once produces bit-identical results (the chunk-invariance
property ``tests/test_streaming.py`` pins).
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.dsp.precision import complex_dtype, real_dtype
from repro.dsp.stats import finite_median, mad
from repro.dsp.wavelet_denoise import SpatiallySelectiveDenoiser, remove_outliers


class RunningCircularStats:
    """Element-wise circular mean/variance accumulated one sample at a time.

    Holds a complex resultant-vector sum and a finite-sample count per
    element.  ``add`` is O(shape) per call and the state is independent
    of how calls were batched upstream.

    ``precision`` sets the resultant accumulator's dtype (complex128 by
    default; ``"float32"`` accumulates in complex64 -- unit vectors sum
    to at most ``count``, so float32 mantissas stay exact far beyond
    any realistic stream length).  The count stays int64 either way.
    """

    def __init__(
        self, shape: tuple[int, ...] | int, precision: str = "float64"
    ):
        self._resultant = np.zeros(shape, dtype=complex_dtype(precision))
        self._count = np.zeros(shape, dtype=np.int64)
        #: Total samples offered (including ones masked per element).
        self.num_samples = 0

    @property
    def shape(self) -> tuple[int, ...]:
        """Element shape of the accumulated statistics."""
        return self._resultant.shape

    def add(self, angles_rad: np.ndarray) -> None:
        """Accumulate one sample of angles (radians), NaN-aware."""
        angles = np.asarray(angles_rad, dtype=float)
        if angles.shape != self._resultant.shape:
            raise ValueError(
                f"sample shape {angles.shape} does not match accumulator "
                f"shape {self._resultant.shape}"
            )
        mask = np.isfinite(angles)
        unit = np.exp(1j * np.where(mask, angles, 0.0))
        self._resultant += np.where(mask, unit, 0.0)
        self._count += mask
        self.num_samples += 1

    def counts(self) -> np.ndarray:
        """Finite-sample count per element."""
        return self._count.copy()

    def mean(self) -> np.ndarray:
        """Circular mean direction per element; NaN where no finite sample."""
        safe = np.where(self._count > 0, self._count, 1)
        return np.where(
            self._count > 0,
            np.angle(self._resultant / safe),
            math.nan,
        )

    def resultant_length(self) -> np.ndarray:
        """Mean resultant length ``R`` in [0, 1]; NaN where empty.

        ``R`` near 1 means the accumulated angles are tightly
        concentrated -- the streaming confidence signal.
        """
        safe = np.where(self._count > 0, self._count, 1)
        return np.where(
            self._count > 0,
            np.abs(self._resultant / safe),
            math.nan,
        )

    def circular_variance(self) -> np.ndarray:
        """Circular variance ``1 - R`` per element."""
        return 1.0 - self.resultant_length()


class RunningVariance:
    """Welford's online mean and sample variance of a scalar series.

    Non-finite samples are ignored (they would permanently poison the
    moments); ``count`` reflects only the accepted samples.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Accumulate one sample (non-finite values are skipped)."""
        value = float(value)
        if not math.isfinite(value):
            return
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Running mean (NaN before the first finite sample)."""
        return self._mean if self.count > 0 else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (``n - 1`` denominator; NaN below 2 samples)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation (NaN below 2 samples)."""
        variance = self.variance
        return math.sqrt(variance) if math.isfinite(variance) else math.nan


class RollingMad:
    """Median absolute deviation over a sliding window of recent samples.

    Bounded memory: only the last ``window`` finite samples are kept.
    """

    def __init__(self, window: int = 32):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._values: deque[float] = deque(maxlen=window)

    def add(self, value: float) -> None:
        """Accumulate one sample (non-finite values are skipped)."""
        value = float(value)
        if math.isfinite(value):
            self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def value(self) -> float:
        """MAD of the current window (NaN while empty)."""
        if not self._values:
            return math.nan
        return mad(np.asarray(self._values))


def denoise_window(
    rows: np.ndarray, denoiser: SpatiallySelectiveDenoiser
) -> np.ndarray:
    """Denoise one ``(window, channels)`` slab of raw amplitude rows.

    Mirrors the per-trace treatment of
    ``AmplitudeProcessor.compute_clean_amplitudes`` scaled down to one
    window: non-finite samples are imputed with the column's in-window
    finite median, columns dead for the whole window are restored to NaN
    afterwards (quality gating, not silent garbage, decides their fate),
    and windows shorter than 4 packets get outlier rejection only.  No
    amplitude clipping here -- the consumer clips once after
    overlap-add, like the batch path clips once per cube.
    """
    rows = np.asarray(rows, dtype=real_dtype(denoiser.precision))
    if rows.ndim != 2:
        raise ValueError(
            f"expected (window, channels) rows, got shape {rows.shape}"
        )
    if rows.size == 0:
        raise ValueError("empty window")
    finite = np.isfinite(rows)
    dead_columns = None
    if not finite.all():
        medians = finite_median(rows, axis=0)
        fill = np.where(np.isfinite(medians), medians, 0.0)
        rows = np.where(finite, rows, fill[None, :])
        dead = ~finite.any(axis=0)
        if dead.any():
            dead_columns = dead
    if rows.shape[0] < 4:
        cleaned, _ = remove_outliers(rows, denoiser.outlier_sigmas)
    else:
        cleaned = denoiser.denoise(rows)
    if dead_columns is not None:
        cleaned = np.where(dead_columns[None, :], np.nan, cleaned)
    return cleaned


class OverlapWindowDenoiser:
    """Windowed overlap-add variant of the Sec. III-C amplitude denoiser.

    Windows of ``window_size`` consecutive packets start every ``hop``
    packets; each window is denoised independently as soon as its last
    packet arrives, and overlapping window outputs are averaged per
    sample.  At stream end a tail window covering the final packets is
    emitted so every packet is denoised at least once.

    The window schedule depends only on the total packet count, so the
    overlap-add result is a pure function of the packet sequence
    (chunk-size invariant), and each window's output is content-hashable
    for the stage cache.
    """

    def __init__(
        self,
        denoiser: SpatiallySelectiveDenoiser | None = None,
        window_size: int = 8,
        hop: int = 4,
    ):
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if not 1 <= hop <= window_size:
            raise ValueError(
                f"hop must be in [1, window_size={window_size}], got {hop}"
            )
        self.denoiser = (
            denoiser if denoiser is not None else SpatiallySelectiveDenoiser()
        )
        self.window_size = window_size
        self.hop = hop

    def complete_starts(self, num_rows: int) -> list[int]:
        """Start indices of every complete window within ``num_rows``."""
        return list(
            range(0, max(num_rows - self.window_size, 0) + 1, self.hop)
        ) if num_rows >= self.window_size else []

    def tail_start(self, num_rows: int) -> int | None:
        """Start of the finalize-time tail window, or None if covered.

        The tail window spans the last ``window_size`` packets (the whole
        stream when shorter) whenever the complete-window schedule leaves
        trailing packets uncovered.
        """
        if num_rows == 0:
            return None
        starts = self.complete_starts(num_rows)
        covered_end = starts[-1] + self.window_size if starts else 0
        if covered_end >= num_rows:
            return None
        return max(num_rows - self.window_size, 0)

    def window_starts(self, num_rows: int) -> list[int]:
        """All window starts for a finished stream of ``num_rows`` packets."""
        starts = self.complete_starts(num_rows)
        tail = self.tail_start(num_rows)
        if tail is not None:
            starts.append(tail)
        return starts

    def denoise_window(self, rows: np.ndarray) -> np.ndarray:
        """Denoise one window slab (see :func:`denoise_window`)."""
        return denoise_window(rows, self.denoiser)

    @staticmethod
    def accumulate(
        den_sum: np.ndarray,
        weight: np.ndarray,
        start: int,
        window_out: np.ndarray,
    ) -> None:
        """Overlap-add one denoised window into the running buffers.

        NaN outputs (dead-in-window columns) contribute nothing; a
        sample is NaN in the final result only if *every* window that
        covered it said NaN (``weight`` stays 0 there).
        """
        stop = start + window_out.shape[0]
        finite = np.isfinite(window_out)
        region = den_sum[start:stop]
        region[finite] += window_out[finite]
        weight[start:stop] += finite

    @staticmethod
    def resolve(den_sum: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Final denoised samples: overlap-average, NaN where uncovered.

        Dtype-preserving: the int64 weights are cast to ``den_sum``'s
        dtype before dividing so a float32 accumulation resolves to
        float32 (overlap counts are tiny integers, exactly
        representable either way; float64 results are bit-unchanged).
        """
        positive = weight > 0
        safe = np.where(positive, weight, 1).astype(den_sum.dtype)
        return np.where(positive, den_sum / safe, math.nan)

    def denoise(self, series: np.ndarray) -> np.ndarray:
        """Offline reference: full windowed overlap-add over a series.

        Produces exactly what the incremental path converges to after
        its tail window -- the equivalence target of the streaming
        tests.  ``series`` is ``(time, channels)``.
        """
        series = np.asarray(series, dtype=float)
        if series.ndim != 2:
            raise ValueError(
                f"expected (time, channels) series, got shape {series.shape}"
            )
        den_sum = np.zeros_like(series)
        weight = np.zeros(series.shape, dtype=np.int64)
        for start in self.window_starts(series.shape[0]):
            out = self.denoise_window(
                series[start:start + self.window_size]
            )
            self.accumulate(den_sum, weight, start, out)
        return self.resolve(den_sum, weight)
