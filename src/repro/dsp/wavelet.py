"""Orthogonal wavelet transforms from scratch.

Implements, with plain NumPy:

* orthonormal wavelet filter banks (Haar, Daubechies db2-db4, Symlet sym4),
* the periodized decimated DWT (:func:`dwt` / :func:`idwt`) and its
  multi-level form (:func:`wavedec` / :func:`waverec`),
* the undecimated / stationary transform (:func:`swt` / :func:`iswt`,
  "algorithme a trous") needed by the paper's correlation denoiser, where
  every scale keeps the full signal length so adjacent-scale products
  (Eq. 11) are well defined.

Conventions: the scaling (lowpass) filter ``h`` is normalised to unit
energy (``sum(h) = sqrt(2)``); the wavelet (highpass) filter is the
quadrature mirror ``g[n] = (-1)^n h[L-1-n]``.  Signals are extended
periodically, which gives exact perfect reconstruction for even lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

# ----------------------------------------------------------------------
# Filter banks
# ----------------------------------------------------------------------

_SQRT2 = math.sqrt(2.0)

#: Scaling-filter coefficients, unit-energy normalisation.
_SCALING_FILTERS: dict[str, tuple[float, ...]] = {
    "haar": (1.0 / _SQRT2, 1.0 / _SQRT2),
    "db2": (
        0.48296291314469025,
        0.836516303737469,
        0.22414386804185735,
        -0.12940952255092145,
    ),
    "db3": (
        0.3326705529509569,
        0.8068915093133388,
        0.4598775021193313,
        -0.13501102001039084,
        -0.08544127388224149,
        0.035226291882100656,
    ),
    "db4": (
        0.23037781330885523,
        0.7148465705525415,
        0.6308807679295904,
        -0.02798376941698385,
        -0.18703481171888114,
        0.030841381835986965,
        0.032883011666982945,
        -0.010597401784997278,
    ),
    "sym4": (
        0.03222310060404270,
        -0.012603967262037833,
        -0.09921954357684722,
        0.29785779560527736,
        0.8037387518059161,
        0.49761866763201545,
        -0.02963552764599851,
        -0.07576571478927333,
    ),
}


@dataclass(frozen=True)
class Wavelet:
    """An orthonormal wavelet defined by its scaling filter."""

    name: str
    dec_lo: np.ndarray = field(repr=False)

    @property
    def length(self) -> int:
        """Filter length."""
        return self.dec_lo.size

    @property
    def dec_hi(self) -> np.ndarray:
        """Highpass (wavelet) analysis filter, quadrature mirror of lo."""
        h = self.dec_lo
        signs = np.array([(-1.0) ** n for n in range(h.size)])
        return signs * h[::-1]


def get_wavelet(name: str) -> Wavelet:
    """Look up a wavelet by name (haar, db2, db3, db4, sym4)."""
    try:
        coeffs = _SCALING_FILTERS[name]
    except KeyError:
        known = ", ".join(sorted(_SCALING_FILTERS))
        raise KeyError(f"unknown wavelet {name!r}; known: {known}") from None
    return Wavelet(name=name, dec_lo=np.array(coeffs, dtype=float))


def available_wavelets() -> list[str]:
    """Names of all built-in wavelets."""
    return sorted(_SCALING_FILTERS)


# ----------------------------------------------------------------------
# Decimated DWT (periodized)
# ----------------------------------------------------------------------


def _even_length(x: np.ndarray) -> tuple[np.ndarray, int]:
    """Pad ``x`` to even length by repeating the last sample."""
    n = x.size
    if n % 2 == 0:
        return x, n
    return np.concatenate([x, x[-1:]]), n


def dwt(x: np.ndarray, wavelet: Wavelet) -> tuple[np.ndarray, np.ndarray]:
    """One level of the periodized DWT.

    Returns ``(approx, detail)``, each of length ``ceil(len(x)/2)``.
    For even input lengths the transform is orthonormal, so
    ``idwt(approx, detail)`` reconstructs ``x`` exactly.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"dwt expects a 1-D signal, got shape {x.shape}")
    if x.size < 2:
        raise ValueError(f"signal too short for dwt: length {x.size}")
    x, _ = _even_length(x)
    n = x.size
    h = wavelet.dec_lo
    g = wavelet.dec_hi
    filt_len = h.size
    k = np.arange(n // 2)[:, None]
    idx = (2 * k + np.arange(filt_len)[None, :]) % n
    windows = x[idx]
    return windows @ h, windows @ g


def idwt(
    approx: np.ndarray,
    detail: np.ndarray,
    wavelet: Wavelet,
    output_length: int | None = None,
) -> np.ndarray:
    """Inverse of :func:`dwt` (adjoint of the orthonormal analysis).

    ``output_length`` trims the result when the forward transform padded
    an odd-length signal.
    """
    approx = np.asarray(approx, dtype=float)
    detail = np.asarray(detail, dtype=float)
    if approx.shape != detail.shape:
        raise ValueError(
            f"approx/detail length mismatch: {approx.size} vs {detail.size}"
        )
    n = 2 * approx.size
    h = wavelet.dec_lo
    g = wavelet.dec_hi
    filt_len = h.size
    x = np.zeros(n)
    k = np.arange(approx.size)[:, None]
    idx = (2 * k + np.arange(filt_len)[None, :]) % n
    np.add.at(x, idx, approx[:, None] * h[None, :])
    np.add.at(x, idx, detail[:, None] * g[None, :])
    if output_length is not None:
        if not 0 <= output_length <= n:
            raise ValueError(
                f"output_length {output_length} incompatible with {n}"
            )
        x = x[:output_length]
    return x


@dataclass
class WaveletDecomposition:
    """Multi-level DWT coefficients plus reconstruction bookkeeping.

    ``details[0]`` is the finest scale.  ``lengths[i]`` records the
    pre-padding signal length at each level so :func:`waverec` can undo
    odd-length padding exactly.
    """

    approx: np.ndarray
    details: list[np.ndarray]
    lengths: list[int]
    wavelet: Wavelet

    @property
    def levels(self) -> int:
        """Number of decomposition levels."""
        return len(self.details)


def max_dwt_level(signal_length: int, wavelet: Wavelet) -> int:
    """Deepest useful level: halving until shorter than the filter."""
    if signal_length < wavelet.length:
        return 0
    return int(math.floor(math.log2(signal_length / (wavelet.length - 1))))


def wavedec(
    x: np.ndarray, wavelet: Wavelet, level: int | None = None
) -> WaveletDecomposition:
    """Multi-level periodized DWT.

    ``level`` defaults to (and is clamped at) :func:`max_dwt_level`.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"wavedec expects a 1-D signal, got shape {x.shape}")
    limit = max_dwt_level(x.size, wavelet)
    if limit == 0:
        raise ValueError(
            f"signal of length {x.size} too short for wavelet "
            f"{wavelet.name!r} (filter length {wavelet.length})"
        )
    if level is None:
        level = limit
    if level < 1:
        raise ValueError(f"level must be >= 1, got {level}")
    level = min(level, limit)

    details: list[np.ndarray] = []
    lengths: list[int] = []
    current = x
    for _ in range(level):
        lengths.append(current.size)
        approx, detail = dwt(current, wavelet)
        details.append(detail)
        current = approx
    return WaveletDecomposition(
        approx=current, details=details, lengths=lengths, wavelet=wavelet
    )


def waverec(decomposition: WaveletDecomposition) -> np.ndarray:
    """Invert :func:`wavedec` exactly."""
    current = decomposition.approx
    for detail, length in zip(
        reversed(decomposition.details), reversed(decomposition.lengths)
    ):
        padded = length + (length % 2)
        current = idwt(current, detail, decomposition.wavelet, padded)[:length]
    return current


# ----------------------------------------------------------------------
# Undecimated (stationary) transform -- "algorithme a trous"
# ----------------------------------------------------------------------


#: Above this signal length the periodized a-trous correlation switches
#: from roll-accumulation (O(n * filter_length) per level) to the FFT
#: product (O(n log n) independent of the dilated filter span).
FFT_LENGTH_THRESHOLD = 4096


def _reference_atrous_correlate(
    x: np.ndarray, filt: np.ndarray, hole: int
) -> np.ndarray:
    """Scalar (1-D, index-matrix) periodic correlation -- kept as the
    bit-equivalence reference for the axis-aware kernels."""
    n = x.size
    idx = (np.arange(n)[:, None] + hole * np.arange(filt.size)[None, :]) % n
    return x[idx] @ filt


def _reference_atrous_adjoint(
    y: np.ndarray, filt: np.ndarray, hole: int
) -> np.ndarray:
    """Scalar adjoint of :func:`_reference_atrous_correlate`."""
    n = y.size
    idx = (np.arange(n)[:, None] - hole * np.arange(filt.size)[None, :]) % n
    return y[idx] @ filt


def _upsampled_filter_spectrum(
    filt: np.ndarray, hole: int, n: int
) -> np.ndarray:
    """Real FFT of the hole-upsampled filter, periodized to length ``n``."""
    f_up = np.zeros(n)
    np.add.at(f_up, (hole * np.arange(filt.size)) % n, filt)
    return np.fft.rfft(f_up)


def _atrous_correlate(x: np.ndarray, filt: np.ndarray, hole: int) -> np.ndarray:
    """Periodic correlation with the filter upsampled by ``hole``.

    Axis-aware: ``x`` may be 1-D ``(time,)`` or 2-D ``(time, channels)``;
    the correlation always runs along axis 0, so one call filters every
    channel column.  Long signals go through the FFT identity
    ``corr(x, f) = irfft(rfft(x) * conj(rfft(f_up)))``.
    """
    n = x.shape[0]
    if n >= FFT_LENGTH_THRESHOLD:
        spectrum = np.conj(_upsampled_filter_spectrum(filt, hole, n))
        if x.ndim == 2:
            spectrum = spectrum[:, None]
        out = np.fft.irfft(np.fft.rfft(x, axis=0) * spectrum, n=n, axis=0)
        # numpy's FFT always computes in double precision; hand float32
        # callers their working dtype back (no-op copy=False for float64).
        return out.astype(x.dtype, copy=False)
    # Index-matrix gather + matmul, the same tap-summation order as the
    # scalar reference: each output element is one K-tap dot product, so
    # the 1-D result is bit-identical to _reference_atrous_correlate and
    # the 2-D result to its per-column application.  The denoiser's
    # extract-and-repeat loop compares coefficients exactly, so ulp-level
    # reassociation here would flip its masks.
    idx = (np.arange(n)[:, None] + hole * np.arange(filt.size)[None, :]) % n
    if x.ndim == 1:
        return x[idx] @ filt
    gathered = np.moveaxis(x[idx], 1, 2)  # (n, channels, taps)
    return (gathered.reshape(-1, filt.size) @ filt).reshape(n, -1)


def _atrous_adjoint(y: np.ndarray, filt: np.ndarray, hole: int) -> np.ndarray:
    """Adjoint of :func:`_atrous_correlate` (periodic convolution)."""
    n = y.shape[0]
    if n >= FFT_LENGTH_THRESHOLD:
        spectrum = _upsampled_filter_spectrum(filt, hole, n)
        if y.ndim == 2:
            spectrum = spectrum[:, None]
        out = np.fft.irfft(np.fft.rfft(y, axis=0) * spectrum, n=n, axis=0)
        return out.astype(y.dtype, copy=False)
    # Same bit-exactness contract as _atrous_correlate's short path.
    idx = (np.arange(n)[:, None] - hole * np.arange(filt.size)[None, :]) % n
    if y.ndim == 1:
        return y[idx] @ filt
    gathered = np.moveaxis(y[idx], 1, 2)  # (n, channels, taps)
    return (gathered.reshape(-1, filt.size) @ filt).reshape(n, -1)


def max_swt_level(signal_length: int, wavelet: Wavelet) -> int:
    """Deepest SWT level whose dilated filter still fits the signal."""
    level = 0
    while (2 ** level) * (wavelet.length - 1) + 1 <= signal_length:
        level += 1
    return level


def swt(
    x: np.ndarray,
    wavelet: Wavelet,
    level: int | None = None,
    dtype: np.dtype | type | None = None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Stationary wavelet transform.

    Returns ``(approx, details)`` where ``details[0]`` is the finest scale
    and every array has the input length -- which is what makes the
    adjacent-scale correlation of the paper's Eq. 11 well defined.

    ``x`` may be 1-D ``(time,)`` or 2-D ``(time, channels)``; the
    transform runs along axis 0 and 2-D input transforms every channel
    column in one call (the batched hot path of the amplitude denoiser).

    ``dtype`` is the working precision: ``None`` (default) coerces the
    input to float64 exactly as before, so existing callers -- including
    float32 callers relying on the float64 reference agreement -- are
    untouched; an explicit float32 runs the whole transform (signal and
    filter taps) in single precision.
    """
    x = np.asarray(x, dtype=float if dtype is None else dtype)
    if x.ndim not in (1, 2):
        raise ValueError(
            f"swt expects a 1-D or 2-D (time, channels) signal, "
            f"got shape {x.shape}"
        )
    limit = max_swt_level(x.shape[0], wavelet)
    if limit == 0:
        raise ValueError(
            f"signal of length {x.shape[0]} too short for wavelet "
            f"{wavelet.name!r}"
        )
    if level is None:
        level = min(3, limit)
    if level < 1:
        raise ValueError(f"level must be >= 1, got {level}")
    level = min(level, limit)

    h = wavelet.dec_lo.astype(x.dtype, copy=False)
    g = wavelet.dec_hi.astype(x.dtype, copy=False)
    details: list[np.ndarray] = []
    approx = x
    for lev in range(level):
        hole = 2 ** lev
        details.append(_atrous_correlate(approx, g, hole))
        approx = _atrous_correlate(approx, h, hole)
    return approx, details


def iswt(
    approx: np.ndarray,
    details: list[np.ndarray],
    wavelet: Wavelet,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """Inverse stationary transform (exact for orthonormal filters).

    Uses the identity ``x = (H^T a + G^T d) / 2`` level by level, which
    follows from the analysis operators satisfying
    ``H^T H + G^T G = 2 I``.

    ``dtype`` mirrors :func:`swt`: ``None`` keeps the float64 coercion,
    float32 reconstructs in single precision.
    """
    work_dtype = np.dtype(float if dtype is None else dtype)
    h = wavelet.dec_lo.astype(work_dtype, copy=False)
    g = wavelet.dec_hi.astype(work_dtype, copy=False)
    current = np.asarray(approx, dtype=work_dtype)
    for lev in reversed(range(len(details))):
        hole = 2 ** lev
        current = 0.5 * (
            _atrous_adjoint(current, h, hole)
            + _atrous_adjoint(
                np.asarray(details[lev], dtype=work_dtype), g, hole
            )
        )
    return current


# ----------------------------------------------------------------------
# Scalar reference implementations (pre-vectorization), kept for the
# bit-equivalence regression tests and the perf-bench baseline.
# ----------------------------------------------------------------------


def _reference_swt(
    x: np.ndarray, wavelet: Wavelet, level: int | None = None
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Strictly 1-D :func:`swt` using the original index-matrix kernels."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"swt expects a 1-D signal, got shape {x.shape}")
    limit = max_swt_level(x.size, wavelet)
    if limit == 0:
        raise ValueError(
            f"signal of length {x.size} too short for wavelet "
            f"{wavelet.name!r}"
        )
    if level is None:
        level = min(3, limit)
    if level < 1:
        raise ValueError(f"level must be >= 1, got {level}")
    level = min(level, limit)

    h = wavelet.dec_lo
    g = wavelet.dec_hi
    details: list[np.ndarray] = []
    approx = x
    for lev in range(level):
        hole = 2 ** lev
        details.append(_reference_atrous_correlate(approx, g, hole))
        approx = _reference_atrous_correlate(approx, h, hole)
    return approx, details


def _reference_iswt(
    approx: np.ndarray, details: list[np.ndarray], wavelet: Wavelet
) -> np.ndarray:
    """Strictly 1-D :func:`iswt` using the original index-matrix kernels."""
    h = wavelet.dec_lo
    g = wavelet.dec_hi
    current = np.asarray(approx, dtype=float)
    for lev in reversed(range(len(details))):
        hole = 2 ** lev
        current = 0.5 * (
            _reference_atrous_adjoint(current, h, hole)
            + _reference_atrous_adjoint(
                np.asarray(details[lev], dtype=float), g, hole
            )
        )
    return current
