"""Circular and robust statistics.

Phase readings live on the circle, so their spread must be measured with
circular statistics (a cluster of phases around +/- pi has a tiny circular
variance but a huge linear one).  The paper quantifies calibration quality
as "angular fluctuation ... around 18 degrees" (Fig. 2/12); we reproduce
that metric with :func:`angular_spread_deg`.

The wavelet denoiser needs a robust noise-level estimate; following the
paper's reference [24] we use the median absolute deviation of the finest
detail coefficients (:func:`robust_sigma`).
"""

from __future__ import annotations

import math

import numpy as np


def _masked_unit_mean(
    angles: np.ndarray, axis: int | None = None
) -> np.ndarray:
    """Mean of ``exp(1j * angles)`` over finite entries only.

    Slices with no finite entry yield NaN.  On an all-finite input the
    result is bit-identical to ``np.mean(np.exp(1j * angles), axis)``
    (the mask multiplies by exactly 1 and the same pairwise summation
    runs over the same values), so NaN-aware callers pay no numerical
    drift on clean data.
    """
    mask = np.isfinite(angles)
    z = np.exp(1j * np.where(mask, angles, 0.0))
    counts = mask.sum(axis=axis)
    total = np.where(mask, z, 0.0).sum(axis=axis)
    safe = np.where(counts > 0, counts, 1)
    return np.where(counts > 0, total / safe, complex("nan+nanj"))


def finite_fraction(x: np.ndarray, axis: int | None = None) -> float | np.ndarray:
    """Share of finite entries (1.0 for empty input: nothing is broken)."""
    x = np.asarray(x)
    if x.size == 0:
        return 1.0
    frac = np.isfinite(x).mean(axis=axis)
    return float(frac) if axis is None else frac


def finite_mean(x: np.ndarray, axis: int | None = None) -> float | np.ndarray:
    """Mean over finite entries only; NaN where a slice has none.

    Bit-identical to ``np.mean`` on all-finite input, and silent (no
    RuntimeWarning) on all-NaN slices, unlike ``np.nanmean``.
    """
    x = np.asarray(x, dtype=float)
    mask = np.isfinite(x)
    counts = mask.sum(axis=axis)
    total = np.where(mask, x, 0.0).sum(axis=axis)
    safe = np.where(counts > 0, counts, 1)
    out = np.where(counts > 0, total / safe, math.nan)
    return float(out) if axis is None else out


def finite_median(x: np.ndarray, axis: int | None = None) -> float | np.ndarray:
    """Median over finite entries only; NaN where a slice has none.

    Avoids ``np.nanmedian``'s all-NaN-slice RuntimeWarning (which the
    robustness CI job promotes to an error) by pre-filling empty slices.
    """
    x = np.asarray(x, dtype=float)
    mask = np.isfinite(x)
    if axis is None:
        values = x[mask]
        return float(np.median(values)) if values.size else math.nan
    counts = mask.sum(axis=axis)
    empty = counts == 0
    if np.any(empty):
        x = np.where(np.expand_dims(empty, axis), 0.0, x)
        mask = np.isfinite(x)
    if np.all(mask):
        result = np.median(x, axis=axis)
    else:
        result = np.nanmedian(np.where(mask, x, math.nan), axis=axis)
    return np.where(empty, math.nan, result)


def circular_mean(angles_rad: np.ndarray, ignore_nan: bool = False) -> float:
    """Mean direction of a set of angles (radians, in ``(-pi, pi]``).

    With ``ignore_nan``, non-finite angles are excluded (NaN if none
    remain) instead of poisoning the mean.
    """
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("circular_mean of an empty set is undefined")
    if ignore_nan:
        return float(np.angle(_masked_unit_mean(angles)))
    return float(np.angle(np.mean(np.exp(1j * angles))))


def resultant_length(
    angles_rad: np.ndarray, ignore_nan: bool = False
) -> float:
    """Mean resultant length ``R`` in [0, 1]; 1 = perfectly concentrated."""
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("resultant_length of an empty set is undefined")
    if ignore_nan:
        return float(np.abs(_masked_unit_mean(angles)))
    return float(np.abs(np.mean(np.exp(1j * angles))))


def circular_variance(
    angles_rad: np.ndarray, ignore_nan: bool = False
) -> float:
    """Circular variance ``1 - R`` in [0, 1]."""
    return 1.0 - resultant_length(angles_rad, ignore_nan=ignore_nan)


def circular_std(angles_rad: np.ndarray, ignore_nan: bool = False) -> float:
    """Circular standard deviation ``sqrt(-2 ln R)`` in radians.

    Unbounded for uniformly scattered angles; ~linear std for tight
    clusters.
    """
    r = resultant_length(angles_rad, ignore_nan=ignore_nan)
    if math.isnan(r):
        return math.nan
    if r <= 0.0:
        return math.inf
    return math.sqrt(max(-2.0 * math.log(r), 0.0))


def angular_spread_deg(angles_rad: np.ndarray) -> float:
    """Angular fluctuation in degrees -- the paper's Fig. 2/12 metric.

    Defined as the circular standard deviation converted to degrees.  The
    paper reports ~18 deg after antenna differencing and ~5 deg after
    good-subcarrier selection; uniformly random raw phases give a huge
    value (circular std of a uniform distribution diverges; we cap the
    report at 180 deg for readability).
    """
    spread = math.degrees(circular_std(angles_rad))
    return min(spread, 180.0)


def wrap_phase(angles_rad: np.ndarray | float) -> np.ndarray | float:
    """Wrap angles into ``(-pi, pi]``."""
    wrapped = np.angle(np.exp(1j * np.asarray(angles_rad, dtype=float)))
    if np.isscalar(angles_rad):
        return float(wrapped)
    return wrapped


def circular_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Shortest signed angular difference ``a - b`` wrapped to (-pi, pi]."""
    return np.angle(np.exp(1j * (np.asarray(a) - np.asarray(b))))


def mad(x: np.ndarray, ignore_nan: bool = False) -> float:
    """Median absolute deviation (no scaling)."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("mad of an empty array is undefined")
    if ignore_nan:
        centre = finite_median(x)
        if math.isnan(centre):
            return math.nan
        return float(finite_median(np.abs(x - centre)))
    return float(np.median(np.abs(x - np.median(x))))


def robust_sigma(x: np.ndarray, ignore_nan: bool = False) -> float:
    """Gaussian-consistent robust scale: ``MAD / 0.6745``.

    The standard robust noise estimate for wavelet coefficients (Donoho &
    Johnstone; the paper's reference [24] uses the same median estimator).
    """
    return mad(x, ignore_nan=ignore_nan) / 0.6745


def sample_variance(x: np.ndarray, ignore_nan: bool = False) -> float:
    """Plain (population) variance -- paper Eq. 7 uses the 1/M form.

    With ``ignore_nan``, non-finite samples are excluded (NaN if none
    remain).
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("variance of an empty array is undefined")
    if ignore_nan:
        mask = np.isfinite(x)
        if not mask.any():
            return math.nan
        centre = finite_mean(x)
        return float(finite_mean(np.where(mask, (x - centre) ** 2, math.nan)))
    return float(np.mean((x - np.mean(x)) ** 2))


# ----------------------------------------------------------------------
# Axis-aware variants -- one call instead of a per-column comprehension.
# Each reduces along ``axis`` and mirrors its scalar sibling exactly.
# ----------------------------------------------------------------------


def circular_mean_axis(
    angles_rad: np.ndarray, axis: int = 0, ignore_nan: bool = False
) -> np.ndarray:
    """Per-slice :func:`circular_mean` along ``axis``."""
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("circular_mean of an empty set is undefined")
    if ignore_nan:
        return np.angle(_masked_unit_mean(angles, axis=axis))
    return np.angle(np.mean(np.exp(1j * angles), axis=axis))


def resultant_length_axis(
    angles_rad: np.ndarray, axis: int = 0, ignore_nan: bool = False
) -> np.ndarray:
    """Per-slice :func:`resultant_length` along ``axis``."""
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("resultant_length of an empty set is undefined")
    if ignore_nan:
        return np.abs(_masked_unit_mean(angles, axis=axis))
    return np.abs(np.mean(np.exp(1j * angles), axis=axis))


def circular_std_axis(
    angles_rad: np.ndarray, axis: int = 0, ignore_nan: bool = False
) -> np.ndarray:
    """Per-slice :func:`circular_std` along ``axis``.

    Inf where ``R <= 0``; NaN where (under ``ignore_nan``) a slice has
    no finite entry at all.
    """
    r = resultant_length_axis(angles_rad, axis=axis, ignore_nan=ignore_nan)
    r = np.atleast_1d(np.asarray(r, dtype=float))
    out = np.full(r.shape, math.inf)
    out[np.isnan(r)] = math.nan
    positive = r > 0.0
    out[positive] = np.sqrt(np.clip(-2.0 * np.log(r[positive]), 0.0, None))
    return out


def angular_spread_deg_axis(
    angles_rad: np.ndarray, axis: int = 0, ignore_nan: bool = False
) -> np.ndarray:
    """Per-slice :func:`angular_spread_deg` along ``axis`` (capped 180)."""
    return np.minimum(
        np.degrees(circular_std_axis(angles_rad, axis, ignore_nan=ignore_nan)),
        180.0,
    )


def mad_axis(x: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`mad` along ``axis``.

    Preserves a float32 input's dtype (the low-precision denoiser
    threshold path); other dtypes promote to float64 as before.
    """
    x = np.asarray(x)
    if x.dtype != np.float32:
        x = x.astype(float, copy=False)
    if x.size == 0:
        raise ValueError("mad of an empty array is undefined")
    med = np.median(x, axis=axis, keepdims=True)
    return np.median(np.abs(x - med), axis=axis)


def robust_sigma_axis(x: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`robust_sigma` along ``axis``."""
    return mad_axis(x, axis=axis) / 0.6745


def phase_difference_variance(
    phase_diffs_rad: np.ndarray, ignore_nan: bool = False
) -> float:
    """Paper Eq. 7: variance of a phase-difference series across packets.

    Computed circularly-safely: the series is first re-centred on its
    circular mean (so a cluster straddling +/- pi is not torn apart), then
    the linear 1/M variance is taken.  With ``ignore_nan``, non-finite
    samples are excluded and an all-non-finite series scores NaN (so a
    dead channel can be filtered rather than crash the selection).
    """
    diffs = np.asarray(phase_diffs_rad, dtype=float)
    if diffs.size == 0:
        raise ValueError("variance of an empty series is undefined")
    if ignore_nan:
        mask = np.isfinite(diffs)
        if not mask.any():
            return math.nan
        centre = circular_mean(diffs, ignore_nan=True)
        centred = circular_difference(
            np.where(mask, diffs, centre), np.full(diffs.shape, centre)
        )
        return float(finite_mean(np.where(mask, centred, math.nan) ** 2))
    centred = circular_difference(diffs, np.full(diffs.shape, circular_mean(diffs)))
    return float(np.mean(centred ** 2))
