"""Circular and robust statistics.

Phase readings live on the circle, so their spread must be measured with
circular statistics (a cluster of phases around +/- pi has a tiny circular
variance but a huge linear one).  The paper quantifies calibration quality
as "angular fluctuation ... around 18 degrees" (Fig. 2/12); we reproduce
that metric with :func:`angular_spread_deg`.

The wavelet denoiser needs a robust noise-level estimate; following the
paper's reference [24] we use the median absolute deviation of the finest
detail coefficients (:func:`robust_sigma`).
"""

from __future__ import annotations

import math

import numpy as np


def circular_mean(angles_rad: np.ndarray) -> float:
    """Mean direction of a set of angles (radians, in ``(-pi, pi]``)."""
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("circular_mean of an empty set is undefined")
    return float(np.angle(np.mean(np.exp(1j * angles))))


def resultant_length(angles_rad: np.ndarray) -> float:
    """Mean resultant length ``R`` in [0, 1]; 1 = perfectly concentrated."""
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("resultant_length of an empty set is undefined")
    return float(np.abs(np.mean(np.exp(1j * angles))))


def circular_variance(angles_rad: np.ndarray) -> float:
    """Circular variance ``1 - R`` in [0, 1]."""
    return 1.0 - resultant_length(angles_rad)


def circular_std(angles_rad: np.ndarray) -> float:
    """Circular standard deviation ``sqrt(-2 ln R)`` in radians.

    Unbounded for uniformly scattered angles; ~linear std for tight
    clusters.
    """
    r = resultant_length(angles_rad)
    if r <= 0.0:
        return math.inf
    return math.sqrt(max(-2.0 * math.log(r), 0.0))


def angular_spread_deg(angles_rad: np.ndarray) -> float:
    """Angular fluctuation in degrees -- the paper's Fig. 2/12 metric.

    Defined as the circular standard deviation converted to degrees.  The
    paper reports ~18 deg after antenna differencing and ~5 deg after
    good-subcarrier selection; uniformly random raw phases give a huge
    value (circular std of a uniform distribution diverges; we cap the
    report at 180 deg for readability).
    """
    spread = math.degrees(circular_std(angles_rad))
    return min(spread, 180.0)


def wrap_phase(angles_rad: np.ndarray | float) -> np.ndarray | float:
    """Wrap angles into ``(-pi, pi]``."""
    wrapped = np.angle(np.exp(1j * np.asarray(angles_rad, dtype=float)))
    if np.isscalar(angles_rad):
        return float(wrapped)
    return wrapped


def circular_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Shortest signed angular difference ``a - b`` wrapped to (-pi, pi]."""
    return np.angle(np.exp(1j * (np.asarray(a) - np.asarray(b))))


def mad(x: np.ndarray) -> float:
    """Median absolute deviation (no scaling)."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("mad of an empty array is undefined")
    return float(np.median(np.abs(x - np.median(x))))


def robust_sigma(x: np.ndarray) -> float:
    """Gaussian-consistent robust scale: ``MAD / 0.6745``.

    The standard robust noise estimate for wavelet coefficients (Donoho &
    Johnstone; the paper's reference [24] uses the same median estimator).
    """
    return mad(x) / 0.6745


def sample_variance(x: np.ndarray) -> float:
    """Plain (population) variance -- paper Eq. 7 uses the 1/M form."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("variance of an empty array is undefined")
    return float(np.mean((x - np.mean(x)) ** 2))


# ----------------------------------------------------------------------
# Axis-aware variants -- one call instead of a per-column comprehension.
# Each reduces along ``axis`` and mirrors its scalar sibling exactly.
# ----------------------------------------------------------------------


def circular_mean_axis(angles_rad: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`circular_mean` along ``axis``."""
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("circular_mean of an empty set is undefined")
    return np.angle(np.mean(np.exp(1j * angles), axis=axis))


def resultant_length_axis(angles_rad: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`resultant_length` along ``axis``."""
    angles = np.asarray(angles_rad, dtype=float)
    if angles.size == 0:
        raise ValueError("resultant_length of an empty set is undefined")
    return np.abs(np.mean(np.exp(1j * angles), axis=axis))


def circular_std_axis(angles_rad: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`circular_std` along ``axis`` (inf where R <= 0)."""
    r = resultant_length_axis(angles_rad, axis=axis)
    r = np.atleast_1d(np.asarray(r, dtype=float))
    out = np.full(r.shape, math.inf)
    positive = r > 0.0
    out[positive] = np.sqrt(np.clip(-2.0 * np.log(r[positive]), 0.0, None))
    return out


def angular_spread_deg_axis(angles_rad: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`angular_spread_deg` along ``axis`` (capped 180)."""
    return np.minimum(np.degrees(circular_std_axis(angles_rad, axis)), 180.0)


def mad_axis(x: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`mad` along ``axis``."""
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("mad of an empty array is undefined")
    med = np.median(x, axis=axis, keepdims=True)
    return np.median(np.abs(x - med), axis=axis)


def robust_sigma_axis(x: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-slice :func:`robust_sigma` along ``axis``."""
    return mad_axis(x, axis=axis) / 0.6745


def phase_difference_variance(phase_diffs_rad: np.ndarray) -> float:
    """Paper Eq. 7: variance of a phase-difference series across packets.

    Computed circularly-safely: the series is first re-centred on its
    circular mean (so a cluster straddling +/- pi is not torn apart), then
    the linear 1/M variance is taken.
    """
    diffs = np.asarray(phase_diffs_rad, dtype=float)
    if diffs.size == 0:
        raise ValueError("variance of an empty series is undefined")
    centred = circular_difference(diffs, np.full(diffs.shape, circular_mean(diffs)))
    return float(np.mean(centred ** 2))
