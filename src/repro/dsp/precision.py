"""Working-precision resolution for the hot compute paths.

The pipeline's numerically heavy kernels (batched wavelet denoise,
simulator compute pass, Gram matrices) accept an optional working dtype
so :attr:`repro.core.config.WiMiConfig.compute_precision` can trade
float64 bit-compatibility for float32 memory bandwidth.  This module is
the single place that maps the config string to concrete dtypes, so
every layer agrees on what "float32" means for real and complex
intermediates.

Rules of thumb encoded here (rationale in DESIGN.md §14):

* ``"float64"`` is the default everywhere and is bit-identical to the
  scalar reference implementations -- a ``None``/``"float64"`` request
  must leave every existing code path untouched.
* float32 kernels must never *silently* promote back: under NumPy's
  NEP 50 promotion a stray float64 operand upgrades the whole
  expression, so real-valued modifier arrays are cast with
  :func:`real_dtype` before they meet complex64 data.
* Accumulation that shapes convergence (SMO multiplier updates,
  Welford variance, circular resultants' counts) stays float64; only
  bandwidth-bound bulk math drops to float32.
"""

from __future__ import annotations

import numpy as np

#: Accepted precision names (mirrors WiMiConfig validation).
PRECISIONS = ("float64", "float32")


def validate_precision(precision: str) -> str:
    """Return ``precision`` unchanged after validating it."""
    if precision not in PRECISIONS:
        raise ValueError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        )
    return precision


def real_dtype(precision: str | None) -> np.dtype:
    """The working real dtype for ``precision`` (None -> float64)."""
    if precision is None:
        return np.dtype(np.float64)
    validate_precision(precision)
    return np.dtype(np.float32 if precision == "float32" else np.float64)


def complex_dtype(precision: str | None) -> np.dtype:
    """The working complex dtype for ``precision`` (None -> complex128)."""
    if precision is None:
        return np.dtype(np.complex128)
    validate_precision(precision)
    return np.dtype(
        np.complex64 if precision == "float32" else np.complex128
    )


def unit_phasor(phase: np.ndarray) -> np.ndarray:
    """``exp(1j * phase)`` at the phase array's own precision.

    float64 (and anything that is not float32) takes the historical
    ``np.exp(1j * phase)`` path bit-for-bit.  float32 instead combines
    the real float32 ``cos``/``sin`` kernels into a complex64 result:
    numpy's complex64 exp falls back to a scalar loop and is *slower*
    than the complex128 one, while the real float32 trig ufuncs are
    SIMD-vectorised -- an order of magnitude faster on the simulator's
    per-packet phase grids.  Agreement with the exp path is within
    float32 rounding (~1e-7), the working precision's own noise.
    """
    phase = np.asarray(phase)
    if phase.dtype != np.float32:
        return np.exp(1j * phase)
    out = np.empty(phase.shape, dtype=np.complex64)
    np.cos(phase, out=out.real)
    np.sin(phase, out=out.imag)
    return out


def precision_of(dtype) -> str:
    """The precision name matching a real/complex ``dtype``.

    float32/complex64 map to ``"float32"``; everything else (including
    integer inputs that would promote to float64) maps to
    ``"float64"``.
    """
    dtype = np.dtype(dtype)
    if dtype in (np.dtype(np.float32), np.dtype(np.complex64)):
        return "float32"
    return "float64"
