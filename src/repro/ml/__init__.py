"""Learning substrate, implemented from scratch.

The paper feeds its material features to an SVM (Sec. III-E).  No ML
library is available offline, so this package provides:

* :mod:`repro.ml.kernels` -- linear / RBF / polynomial kernels,
* :mod:`repro.ml.svm` -- a soft-margin binary SVM trained with Platt's
  SMO algorithm,
* :mod:`repro.ml.multiclass` -- one-vs-one and one-vs-rest wrappers,
* :mod:`repro.ml.knn`, :mod:`repro.ml.centroid` -- baselines for the
  classifier ablation,
* :mod:`repro.ml.scaler` -- feature standardisation,
* :mod:`repro.ml.validation` -- stratified splits, k-fold, confusion
  matrices and accuracy reports (how every paper figure scores results).
"""

from repro.ml.centroid import NearestCentroidClassifier
from repro.ml.kernels import LinearKernel, PolynomialKernel, RBFKernel, make_kernel
from repro.ml.knn import KNeighborsClassifier
from repro.ml.multiclass import OneVsOneSVC, OneVsRestSVC, SVC
from repro.ml.scaler import StandardScaler
from repro.ml.svm import BinarySVC
from repro.ml.validation import (
    ConfusionMatrix,
    accuracy_score,
    confusion_matrix,
    cross_validate,
    k_fold_indices,
    train_test_split,
)

__all__ = [
    "BinarySVC",
    "ConfusionMatrix",
    "KNeighborsClassifier",
    "LinearKernel",
    "NearestCentroidClassifier",
    "OneVsOneSVC",
    "OneVsRestSVC",
    "PolynomialKernel",
    "RBFKernel",
    "SVC",
    "StandardScaler",
    "accuracy_score",
    "confusion_matrix",
    "cross_validate",
    "k_fold_indices",
    "make_kernel",
    "train_test_split",
]
