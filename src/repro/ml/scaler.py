"""Feature standardisation."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance feature scaling.

    Constant features (zero variance) are centred but left unscaled, which
    keeps the transform well-defined for degenerate inputs.
    """

    def __init__(self):
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and scale."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        self._scale = np.where(std > 0, std, 1.0)
        return self

    @property
    def mean_(self) -> np.ndarray:
        """Per-feature means learned by :meth:`fit`."""
        if self._mean is None:
            raise RuntimeError("StandardScaler is not fitted")
        return self._mean

    @property
    def scale_(self) -> np.ndarray:
        """Per-feature scales learned by :meth:`fit`."""
        if self._scale is None:
            raise RuntimeError("StandardScaler is not fitted")
        return self._scale

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        if self._mean is None or self._scale is None:
            raise RuntimeError("StandardScaler is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self._mean.size:
            raise ValueError(
                f"expected {self._mean.size} features, got {x.shape[1]}"
            )
        return (x - self._mean) / self._scale

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        if self._mean is None or self._scale is None:
            raise RuntimeError("StandardScaler is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return x * self._scale + self._mean
