"""Kernel functions for the SVM."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _as_2d(
    x: np.ndarray, dtype: np.dtype | type | None = None
) -> np.ndarray:
    x = np.asarray(x, dtype=float if dtype is None else dtype)
    if x.ndim == 1:
        x = x[None, :]
    if x.ndim != 2:
        raise ValueError(f"expected 2-D data, got shape {x.shape}")
    return x


def pairwise_sq_dists(
    a: np.ndarray,
    b: np.ndarray,
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """Squared Euclidean distances ``||a_i - b_j||^2``, shape ``(n_a, n_b)``.

    The shared building block of the RBF Gram matrix: the one-vs-one
    ensemble computes this once on the full training set and slices the
    per-machine submatrices out of it instead of re-evaluating kernels
    pair by pair.

    ``dtype`` is the working precision of the expansion (``None`` keeps
    the historical float64 path bit-for-bit); float32 runs the ``a @
    b.T`` matmul through sgemm at half the memory traffic, for
    consumers that re-accumulate downstream in float64 (the SMO loop).
    """
    a = _as_2d(a, dtype)
    b = _as_2d(b, dtype)
    return (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )


def rbf_from_sq_dists(sq: np.ndarray, gamma: float) -> np.ndarray:
    """RBF kernel values from precomputed squared distances.

    Dtype-preserving: a float32 distance matrix exponentiates to a
    float32 Gram (``gamma`` enters as a python scalar, which NEP 50
    keeps weak).
    """
    sq = np.asarray(sq)
    return np.exp(-float(gamma) * np.clip(sq, 0.0, None))


@dataclass(frozen=True)
class LinearKernel:
    """``K(x, y) = x . y``."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return _as_2d(a) @ _as_2d(b).T

    def __repr__(self) -> str:
        return "LinearKernel()"


@dataclass(frozen=True)
class RBFKernel:
    """``K(x, y) = exp(-gamma ||x - y||^2)``.

    ``gamma=None`` means the sklearn-style "scale" heuristic
    ``1 / (n_features * var(X))``, resolved when the Gram matrix is first
    computed on training data via :meth:`resolve_gamma`.
    """

    gamma: float | None = None

    def __post_init__(self) -> None:
        if self.gamma is not None and self.gamma <= 0:
            raise ValueError(f"gamma must be positive, got {self.gamma}")

    def resolve_gamma(self, x_train: np.ndarray) -> float:
        """Concrete gamma for a training matrix."""
        if self.gamma is not None:
            return self.gamma
        x = _as_2d(x_train)
        variance = float(np.var(x))
        if variance <= 0:
            return 1.0
        return 1.0 / (x.shape[1] * variance)

    def __call__(
        self, a: np.ndarray, b: np.ndarray, gamma: float | None = None
    ) -> np.ndarray:
        g = gamma if gamma is not None else (self.gamma if self.gamma else 1.0)
        return rbf_from_sq_dists(pairwise_sq_dists(a, b), g)


@dataclass(frozen=True)
class PolynomialKernel:
    """``K(x, y) = (x . y + coef0)^degree``."""

    degree: int = 3
    coef0: float = 1.0

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (_as_2d(a) @ _as_2d(b).T + self.coef0) ** self.degree


def make_kernel(name: str, **params):
    """Kernel factory: ``linear``, ``rbf`` or ``poly``."""
    name = name.lower()
    if name == "linear":
        return LinearKernel()
    if name == "rbf":
        return RBFKernel(**params)
    if name in ("poly", "polynomial"):
        return PolynomialKernel(**params)
    raise ValueError(f"unknown kernel {name!r}; use linear, rbf or poly")
