"""Evaluation utilities: splits, cross-validation, confusion matrices.

Every accuracy number in the paper's evaluation is a classification score
over repeated measurements; this module provides the scoring machinery:
stratified train/test splits (so each material keeps its share), k-fold
cross-validation, and a :class:`ConfusionMatrix` that renders like the
paper's Fig. 15/16 matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.5,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split into train/test, stratified per class by default.

    Returns ``(x_train, x_test, y_train, y_test)``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"{x.shape[0]} samples but {y.shape[0]} labels")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = np.random.default_rng(seed)
    test_idx: list[int] = []
    if stratify:
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            rng.shuffle(members)
            n_test = max(1, int(round(members.size * test_fraction)))
            n_test = min(n_test, members.size - 1) if members.size > 1 else 1
            test_idx.extend(members[:n_test].tolist())
    else:
        order = rng.permutation(x.shape[0])
        n_test = max(1, int(round(x.shape[0] * test_fraction)))
        test_idx = order[:n_test].tolist()
    test_mask = np.zeros(x.shape[0], dtype=bool)
    test_mask[test_idx] = True
    return x[~test_mask], x[test_mask], y[~test_mask], y[test_mask]


def k_fold_indices(
    num_samples: int, k: int, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold ``(train_idx, test_idx)`` pairs."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if num_samples < k:
        raise ValueError(f"cannot make {k} folds from {num_samples} samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_samples)
    folds = np.array_split(order, k)
    pairs = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        pairs.append((train, test))
    return pairs


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("accuracy of zero samples is undefined")
    return float(np.mean(y_true == y_pred))


@dataclass
class ConfusionMatrix:
    """A labelled confusion matrix with paper-style rendering.

    ``matrix[i, j]`` counts samples of true class ``labels[i]`` predicted
    as ``labels[j]``.
    """

    labels: list
    matrix: np.ndarray

    @property
    def normalized(self) -> np.ndarray:
        """Row-normalised matrix (each row sums to 1 where defined)."""
        totals = self.matrix.sum(axis=1, keepdims=True).astype(float)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(totals > 0, self.matrix / totals, 0.0)
        return out

    @property
    def accuracy(self) -> float:
        """Overall accuracy."""
        total = self.matrix.sum()
        if total == 0:
            raise ValueError("empty confusion matrix")
        return float(np.trace(self.matrix) / total)

    def per_class_accuracy(self) -> dict:
        """Diagonal of the row-normalised matrix, keyed by label."""
        norm = self.normalized
        return {
            label: float(norm[i, i]) for i, label in enumerate(self.labels)
        }

    def render(self, digits: int = 2) -> str:
        """Text rendering in the style of the paper's Fig. 15."""
        norm = self.normalized
        width = max(len(str(lbl)) for lbl in self.labels)
        width = max(width, digits + 2)
        header = " " * (width + 1) + " ".join(
            f"{str(lbl):>{width}}" for lbl in self.labels
        )
        lines = [header]
        for i, lbl in enumerate(self.labels):
            cells = " ".join(
                f"{norm[i, j]:>{width}.{digits}f}" if norm[i, j] > 0 else " " * width
                for j in range(len(self.labels))
            )
            lines.append(f"{str(lbl):>{width}} {cells}")
        return "\n".join(lines)


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: list | None = None
) -> ConfusionMatrix:
    """Build a :class:`ConfusionMatrix` from predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()))
    index = {lbl: i for i, lbl in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        if t not in index or p not in index:
            raise ValueError(f"label {t!r} or {p!r} missing from {labels}")
        matrix[index[t], index[p]] += 1
    return ConfusionMatrix(labels=list(labels), matrix=matrix)


def cross_validate(
    make_classifier,
    x: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    seed: int = 0,
) -> list[float]:
    """k-fold accuracies of ``make_classifier()`` on ``(x, y)``.

    ``make_classifier`` is a zero-argument factory returning a fresh
    object with ``fit`` / ``predict``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in k_fold_indices(x.shape[0], k, seed):
        clf = make_classifier()
        clf.fit(x[train_idx], y[train_idx])
        scores.append(accuracy_score(y[test_idx], clf.predict(x[test_idx])))
    return scores
