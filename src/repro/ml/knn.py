"""k-nearest-neighbours classifier (classifier-ablation baseline)."""

from __future__ import annotations

import numpy as np


class KNeighborsClassifier:
    """Plain Euclidean kNN with majority vote.

    Ties are broken toward the nearest neighbour's class, which makes the
    classifier deterministic.
    """

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Memorise the training set."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"{x.shape[0]} samples but {y.shape[0]} labels")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._x = x
        self._y = y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority vote among the k nearest training samples."""
        if self._x is None or self._y is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        k = min(self.k, self._x.shape[0])
        sq = (
            np.sum(x * x, axis=1)[:, None]
            + np.sum(self._x * self._x, axis=1)[None, :]
            - 2.0 * (x @ self._x.T)
        )
        order = np.argsort(sq, axis=1)[:, :k]
        predictions = []
        for row in order:
            neighbour_labels = self._y[row]
            values, counts = np.unique(neighbour_labels, return_counts=True)
            top = counts.max()
            contenders = set(values[counts == top])
            # Nearest neighbour whose class is among the top-voted wins.
            choice = next(
                lbl for lbl in neighbour_labels if lbl in contenders
            )
            predictions.append(choice)
        return np.array(predictions, dtype=self._y.dtype)
