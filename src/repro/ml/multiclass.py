"""Multiclass SVM wrappers (one-vs-one and one-vs-rest)."""

from __future__ import annotations

import numpy as np

from repro.ml.kernels import make_kernel
from repro.ml.svm import BinarySVC


def _validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"{x.shape[0]} samples but {y.shape[0]} labels")
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    return x, y


class OneVsOneSVC:
    """One-vs-one multiclass SVM -- one binary machine per class pair.

    Prediction is by majority vote with margin-sum tie-breaking.  This is
    the classical libsvm strategy and what "the SVM classifier" of the
    paper resolves to for its 10-liquid problem.
    """

    def __init__(self, kernel="rbf", C: float = 10.0, seed: int = 0, **kernel_params):
        self.kernel_name = kernel
        self.kernel_params = kernel_params
        self.C = C
        self.seed = seed
        self._machines: dict[tuple[int, int], BinarySVC] = {}
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneVsOneSVC":
        """Train all pairwise machines."""
        x, y = _validate_xy(x, y)
        self._classes = np.unique(y)
        if self._classes.size < 2:
            raise ValueError("need at least two classes")
        self._machines = {}
        for a in range(self._classes.size):
            for b in range(a + 1, self._classes.size):
                mask = (y == self._classes[a]) | (y == self._classes[b])
                labels = np.where(y[mask] == self._classes[a], 1.0, -1.0)
                machine = BinarySVC(
                    kernel=make_kernel(self.kernel_name, **self.kernel_params),
                    C=self.C,
                    seed=self.seed,
                )
                machine.fit(x[mask], labels)
                self._machines[(a, b)] = machine
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority-vote predictions."""
        if self._classes is None:
            raise RuntimeError("OneVsOneSVC is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        votes = np.zeros((x.shape[0], self._classes.size))
        margins = np.zeros_like(votes)
        for (a, b), machine in self._machines.items():
            scores = machine.decision_function(x)
            winner_a = scores >= 0
            votes[winner_a, a] += 1
            votes[~winner_a, b] += 1
            margins[:, a] += scores
            margins[:, b] -= scores
        # Ties broken by accumulated margin.
        best = np.argmax(votes + 1e-9 * np.tanh(margins), axis=1)
        return self._classes[best]

    @property
    def classes_(self) -> np.ndarray:
        """Class labels seen during fit."""
        if self._classes is None:
            raise RuntimeError("OneVsOneSVC is not fitted")
        return self._classes


class OneVsRestSVC:
    """One-vs-rest multiclass SVM -- one machine per class."""

    def __init__(self, kernel="rbf", C: float = 10.0, seed: int = 0, **kernel_params):
        self.kernel_name = kernel
        self.kernel_params = kernel_params
        self.C = C
        self.seed = seed
        self._machines: list[BinarySVC] = []
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneVsRestSVC":
        """Train one machine per class against the rest."""
        x, y = _validate_xy(x, y)
        self._classes = np.unique(y)
        if self._classes.size < 2:
            raise ValueError("need at least two classes")
        self._machines = []
        for cls in self._classes:
            labels = np.where(y == cls, 1.0, -1.0)
            machine = BinarySVC(
                kernel=make_kernel(self.kernel_name, **self.kernel_params),
                C=self.C,
                seed=self.seed,
            )
            machine.fit(x, labels)
            self._machines.append(machine)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Highest-margin predictions."""
        if self._classes is None:
            raise RuntimeError("OneVsRestSVC is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        scores = np.stack(
            [m.decision_function(x) for m in self._machines], axis=1
        )
        return self._classes[np.argmax(scores, axis=1)]

    @property
    def classes_(self) -> np.ndarray:
        """Class labels seen during fit."""
        if self._classes is None:
            raise RuntimeError("OneVsRestSVC is not fitted")
        return self._classes


#: Default multiclass SVM, matching the paper's classifier choice.
SVC = OneVsOneSVC
