"""Multiclass SVM wrappers (one-vs-one and one-vs-rest)."""

from __future__ import annotations

import numpy as np

from repro.dsp.precision import real_dtype, validate_precision
from repro.ml.kernels import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    make_kernel,
    pairwise_sq_dists,
    rbf_from_sq_dists,
)
from repro.ml.svm import BinarySVC


def _validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"{x.shape[0]} samples but {y.shape[0]} labels")
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    return x, y


class _SharedGram:
    """Pairwise kernel structure computed once per training set.

    The one-vs-one ensemble trains ``C(n_classes, 2)`` machines on
    overlapping subsets of the same samples; each machine's Gram matrix is
    a submatrix of one full-set pairwise computation.  For RBF the shared
    part is the squared-distance matrix (gamma is resolved per machine on
    its subset); for linear/polynomial kernels it is the dot-product
    matrix.

    ``precision`` is the working dtype of that shared computation:
    ``"float32"`` runs the matmul through sgemm and stores the shared
    matrix at half the footprint.  The SMO loop itself always
    accumulates in float64 -- :meth:`BinarySVC._prepare_fit` upcasts
    whatever Gram it is handed -- so only the kernel *evaluation* runs
    at reduced precision, not the optimisation arithmetic.
    """

    def __init__(self, kernel, x: np.ndarray, precision: str = "float64"):
        self.kernel = kernel
        if isinstance(kernel, RBFKernel):
            self._shared = pairwise_sq_dists(
                x, x, dtype=real_dtype(precision)
            )
        elif isinstance(kernel, (LinearKernel, PolynomialKernel)):
            xs = x.astype(real_dtype(precision), copy=False)
            self._shared = xs @ xs.T
        else:
            self._shared = None

    def submatrix(
        self, machine: BinarySVC, x_sub: np.ndarray, idx: np.ndarray
    ) -> np.ndarray | None:
        """Gram matrix for one machine's sample subset, or None.

        Must match what ``machine.fit`` would compute on ``x_sub`` --
        for RBF that means resolving gamma on the subset, exactly as
        :meth:`BinarySVC._prepare_fit` does.
        """
        if self._shared is None:
            return None
        block = self._shared[np.ix_(idx, idx)]
        kernel = machine.kernel
        if isinstance(kernel, RBFKernel):
            return rbf_from_sq_dists(block, kernel.resolve_gamma(x_sub))
        if isinstance(kernel, PolynomialKernel):
            return (block + kernel.coef0) ** kernel.degree
        return block


class OneVsOneSVC:
    """One-vs-one multiclass SVM -- one binary machine per class pair.

    Prediction is by majority vote with margin-sum tie-breaking.  This is
    the classical libsvm strategy and what "the SVM classifier" of the
    paper resolves to for its 10-liquid problem.
    """

    def __init__(
        self,
        kernel="rbf",
        C: float = 10.0,
        seed: int = 0,
        precision: str = "float64",
        **kernel_params,
    ):
        validate_precision(precision)
        self.kernel_name = kernel
        self.kernel_params = kernel_params
        self.C = C
        self.seed = seed
        self.precision = precision
        self._machines: dict[tuple[int, int], BinarySVC] = {}
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneVsOneSVC":
        """Train all pairwise machines."""
        x, y = _validate_xy(x, y)
        self._classes = np.unique(y)
        if self._classes.size < 2:
            raise ValueError("need at least two classes")
        self._machines = {}
        shared = _SharedGram(
            make_kernel(self.kernel_name, **self.kernel_params),
            x,
            self.precision,
        )
        for a in range(self._classes.size):
            for b in range(a + 1, self._classes.size):
                mask = (y == self._classes[a]) | (y == self._classes[b])
                idx = np.nonzero(mask)[0]
                labels = np.where(y[mask] == self._classes[a], 1.0, -1.0)
                machine = BinarySVC(
                    kernel=make_kernel(self.kernel_name, **self.kernel_params),
                    C=self.C,
                    seed=self.seed,
                )
                x_sub = x[mask]
                machine.fit(
                    x_sub, labels, gram=shared.submatrix(machine, x_sub, idx)
                )
                self._machines[(a, b)] = machine
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority-vote predictions."""
        if self._classes is None:
            raise RuntimeError("OneVsOneSVC is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        votes = np.zeros((x.shape[0], self._classes.size))
        margins = np.zeros_like(votes)
        for (a, b), machine in self._machines.items():
            scores = machine.decision_function(x)
            winner_a = scores >= 0
            votes[winner_a, a] += 1
            votes[~winner_a, b] += 1
            margins[:, a] += scores
            margins[:, b] -= scores
        # Ties broken by accumulated margin.
        best = np.argmax(votes + 1e-9 * np.tanh(margins), axis=1)
        return self._classes[best]

    @property
    def classes_(self) -> np.ndarray:
        """Class labels seen during fit."""
        if self._classes is None:
            raise RuntimeError("OneVsOneSVC is not fitted")
        return self._classes


class OneVsRestSVC:
    """One-vs-rest multiclass SVM -- one machine per class."""

    def __init__(
        self,
        kernel="rbf",
        C: float = 10.0,
        seed: int = 0,
        precision: str = "float64",
        **kernel_params,
    ):
        validate_precision(precision)
        self.kernel_name = kernel
        self.kernel_params = kernel_params
        self.C = C
        self.seed = seed
        self.precision = precision
        self._machines: list[BinarySVC] = []
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneVsRestSVC":
        """Train one machine per class against the rest."""
        x, y = _validate_xy(x, y)
        self._classes = np.unique(y)
        if self._classes.size < 2:
            raise ValueError("need at least two classes")
        self._machines = []
        # Every one-vs-rest machine trains on the full set, so they all
        # share one Gram matrix (gamma resolves identically on full x).
        shared = _SharedGram(
            make_kernel(self.kernel_name, **self.kernel_params),
            x,
            self.precision,
        )
        idx = np.arange(x.shape[0])
        gram = None
        for cls in self._classes:
            labels = np.where(y == cls, 1.0, -1.0)
            machine = BinarySVC(
                kernel=make_kernel(self.kernel_name, **self.kernel_params),
                C=self.C,
                seed=self.seed,
            )
            if gram is None:
                gram = shared.submatrix(machine, x, idx)
            machine.fit(x, labels, gram=gram)
            self._machines.append(machine)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Highest-margin predictions."""
        if self._classes is None:
            raise RuntimeError("OneVsRestSVC is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        scores = np.stack(
            [m.decision_function(x) for m in self._machines], axis=1
        )
        return self._classes[np.argmax(scores, axis=1)]

    @property
    def classes_(self) -> np.ndarray:
        """Class labels seen during fit."""
        if self._classes is None:
            raise RuntimeError("OneVsRestSVC is not fitted")
        return self._classes


#: Default multiclass SVM, matching the paper's classifier choice.
SVC = OneVsOneSVC
