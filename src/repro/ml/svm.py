"""Soft-margin binary SVM trained with Platt's SMO algorithm.

This is the classifier behind the paper's material identification step,
implemented from scratch: sequential minimal optimisation over the dual
problem with the standard two-multiplier analytic update, error caching
and the usual KKT-violation selection heuristics (simplified Platt, 1998).

The datasets here are small (tens of samples per class, a handful of
features), so clarity wins over micro-optimisation; training a 10-class
one-vs-one ensemble on the paper's full dataset takes well under a second.
"""

from __future__ import annotations

import numpy as np

from repro.ml.kernels import LinearKernel, RBFKernel


class BinarySVC:
    """Binary soft-margin SVM.

    Args:
        kernel: A kernel object (see :mod:`repro.ml.kernels`); default RBF
            with the "scale" gamma heuristic.
        C: Soft-margin penalty.
        tol: KKT violation tolerance.
        max_passes: SMO stops after this many consecutive full passes
            without any multiplier update.
        max_iter: Hard bound on total passes.
        seed: RNG seed for the second-multiplier tie-breaking.
    """

    def __init__(
        self,
        kernel=None,
        C: float = 10.0,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 200,
        seed: int = 0,
    ):
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.C = C
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self._fitted = False

    # ------------------------------------------------------------------

    def fit(
        self, x: np.ndarray, y: np.ndarray, gram: np.ndarray | None = None
    ) -> "BinarySVC":
        """Train on labels in ``{-1, +1}``.

        ``gram`` optionally supplies the precomputed training Gram matrix
        ``K(x, x)`` (e.g. a slice of a shared matrix built once by a
        multiclass ensemble); it must equal what the kernel would produce
        on ``x``, including a gamma resolved on ``x`` for RBF.
        """
        x, y, gram = self._prepare_fit(x, y, gram)
        n = x.shape[0]

        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        # Error cache: margins[i] = sum_k alpha_k y_k K(k, i), kept current
        # with a rank-2 vectorised update per accepted pair instead of an
        # O(n) reduction per decision lookup.  Refreshed from alpha once
        # per outer pass so incremental rounding drift cannot accumulate
        # across the whole run.
        margins = np.zeros(n)

        passes = 0
        total = 0
        while passes < self.max_passes and total < self.max_iter:
            if total:
                margins = np.sum((alpha * y)[:, None] * gram, axis=0)
            changed = 0
            for i in range(n):
                e_i = margins[i] + b - y[i]
                if (y[i] * e_i < -self.tol and alpha[i] < self.C) or (
                    y[i] * e_i > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    e_j = margins[j] + b - y[j]
                    a_i_old, a_j_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, a_j_old - a_i_old)
                        high = min(self.C, self.C + a_j_old - a_i_old)
                    else:
                        low = max(0.0, a_i_old + a_j_old - self.C)
                        high = min(self.C, a_i_old + a_j_old)
                    if low >= high:
                        continue
                    eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    a_j = a_j_old - y[j] * (e_i - e_j) / eta
                    a_j = min(max(a_j, low), high)
                    if abs(a_j - a_j_old) < 1e-6:
                        continue
                    a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j)
                    b1 = (
                        b
                        - e_i
                        - y[i] * (a_i - a_i_old) * gram[i, i]
                        - y[j] * (a_j - a_j_old) * gram[i, j]
                    )
                    b2 = (
                        b
                        - e_j
                        - y[i] * (a_i - a_i_old) * gram[i, j]
                        - y[j] * (a_j - a_j_old) * gram[j, j]
                    )
                    if 0 < a_i < self.C:
                        b = b1
                    elif 0 < a_j < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    margins += (a_i - a_i_old) * y[i] * gram[i] + (
                        (a_j - a_j_old) * y[j] * gram[j]
                    )
                    alpha[i], alpha[j] = a_i, a_j
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            total += 1

        self._finish_fit(x, y, alpha, b)
        return self

    def _reference_fit(self, x: np.ndarray, y: np.ndarray) -> "BinarySVC":
        """Original SMO loop with per-element decision recomputation.

        Kept as the behavioural baseline: same pair-selection heuristics
        and update rules, but each error lookup is an O(n) reduction over
        the Gram column.  The equivalence tests and perf-bench compare
        :meth:`fit` against this.
        """
        x, y, gram = self._prepare_fit(x, y, None)
        n = x.shape[0]

        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        def decision(i: int) -> float:
            return float(np.sum(alpha * y * gram[:, i]) + b)

        passes = 0
        total = 0
        while passes < self.max_passes and total < self.max_iter:
            changed = 0
            for i in range(n):
                e_i = decision(i) - y[i]
                if (y[i] * e_i < -self.tol and alpha[i] < self.C) or (
                    y[i] * e_i > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    e_j = decision(j) - y[j]
                    a_i_old, a_j_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        low = max(0.0, a_j_old - a_i_old)
                        high = min(self.C, self.C + a_j_old - a_i_old)
                    else:
                        low = max(0.0, a_i_old + a_j_old - self.C)
                        high = min(self.C, a_i_old + a_j_old)
                    if low >= high:
                        continue
                    eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    a_j = a_j_old - y[j] * (e_i - e_j) / eta
                    a_j = min(max(a_j, low), high)
                    if abs(a_j - a_j_old) < 1e-6:
                        continue
                    a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j)
                    b1 = (
                        b
                        - e_i
                        - y[i] * (a_i - a_i_old) * gram[i, i]
                        - y[j] * (a_j - a_j_old) * gram[i, j]
                    )
                    b2 = (
                        b
                        - e_j
                        - y[i] * (a_i - a_i_old) * gram[i, j]
                        - y[j] * (a_j - a_j_old) * gram[j, j]
                    )
                    if 0 < a_i < self.C:
                        b = b1
                    elif 0 < a_j < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    alpha[i], alpha[j] = a_i, a_j
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            total += 1

        self._finish_fit(x, y, alpha, b)
        return self

    def _prepare_fit(
        self, x: np.ndarray, y: np.ndarray, gram: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Validate inputs, resolve gamma, and return the Gram matrix."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.size:
            raise ValueError(
                f"{x.shape[0]} samples but {y.size} labels"
            )
        labels = set(np.unique(y))
        if not labels <= {-1.0, 1.0}:
            raise ValueError(f"labels must be -1/+1, got {sorted(labels)}")
        if len(labels) < 2:
            raise ValueError("need both classes present to train")

        n = x.shape[0]
        self._x = x
        self._y = y
        self._gamma = (
            self.kernel.resolve_gamma(x)
            if isinstance(self.kernel, RBFKernel)
            else None
        )
        if gram is None:
            gram = self._kernel_matrix(x, x)
        else:
            # Always accumulate SMO in float64: a shared Gram evaluated
            # at reduced precision (see _SharedGram) is upcast here, so
            # the error cache / multiplier updates see full-width
            # arithmetic regardless of how the kernel was computed.
            gram = np.asarray(gram, dtype=float)
            if gram.shape != (n, n):
                raise ValueError(
                    f"gram shape {gram.shape} does not match {n} samples"
                )
        return x, y, gram

    def _finish_fit(
        self, x: np.ndarray, y: np.ndarray, alpha: np.ndarray, b: float
    ) -> None:
        support = alpha > 1e-8
        self._alpha = alpha[support]
        self._support_x = x[support]
        self._support_y = y[support]
        self._b = b
        self._fitted = True

    # ------------------------------------------------------------------

    def _kernel_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if isinstance(self.kernel, RBFKernel):
            return self.kernel(a, b, gamma=self._gamma)
        return self.kernel(a, b)

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margin for each sample (positive = class +1)."""
        if not self._fitted:
            raise RuntimeError("BinarySVC is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        k = self._kernel_matrix(x, self._support_x)
        return k @ (self._alpha * self._support_y) + self._b

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels in ``{-1, +1}``."""
        scores = self.decision_function(x)
        return np.where(scores >= 0.0, 1.0, -1.0)

    @property
    def num_support_vectors(self) -> int:
        """Number of support vectors after training."""
        if not self._fitted:
            raise RuntimeError("BinarySVC is not fitted")
        return int(self._alpha.size)


__all__ = ["BinarySVC", "LinearKernel", "RBFKernel"]
