"""Nearest-centroid classifier.

The simplest possible reading of the paper's "material database": store the
mean feature per material, classify to the closest mean.  Used as the
classifier-ablation floor and inside the feature database itself.
"""

from __future__ import annotations

import numpy as np


class NearestCentroidClassifier:
    """Classify to the nearest per-class mean (Euclidean)."""

    def __init__(self):
        self._centroids: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NearestCentroidClassifier":
        """Compute one centroid per class."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"{x.shape[0]} samples but {y.shape[0]} labels")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._classes = np.unique(y)
        self._centroids = np.stack(
            [x[y == cls].mean(axis=0) for cls in self._classes]
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Closest-centroid predictions."""
        if self._centroids is None or self._classes is None:
            raise RuntimeError("NearestCentroidClassifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        sq = (
            np.sum(x * x, axis=1)[:, None]
            + np.sum(self._centroids * self._centroids, axis=1)[None, :]
            - 2.0 * (x @ self._centroids.T)
        )
        return self._classes[np.argmin(sq, axis=1)]

    @property
    def centroids_(self) -> np.ndarray:
        """Per-class centroids, ordered like :attr:`classes_`."""
        if self._centroids is None:
            raise RuntimeError("NearestCentroidClassifier is not fitted")
        return self._centroids

    @property
    def classes_(self) -> np.ndarray:
        """Class labels seen during fit."""
        if self._classes is None:
            raise RuntimeError("NearestCentroidClassifier is not fitted")
        return self._classes
