"""Cluster worker process: registry warm boot + broker consume loop.

``worker_main`` is the spawn entry point (module-level, so it and its
arguments pickle across the process boundary).  Life of a worker:

1. **Warm boot.**  Restore the fitted pipeline with
   :meth:`repro.core.pipeline.WiMi.from_registry`, overriding
   ``artifact_store_path`` to this worker's own shard of the artifact
   store -- workers never share a disk tier, so there is no cross-shard
   write contention and a restarted worker finds exactly its shard's
   artifacts warm.
2. **Serve.**  Drain the shard's request queue under the same
   max-batch-size / max-wait micro-batching policy as the in-process
   service, execute through ``identify_batch``, and answer every
   envelope with a :class:`repro.cluster.broker.Reply`.  Fault
   isolation mirrors :mod:`repro.serve.workers`: a failing batch falls
   back to request-at-a-time execution so a poisoned session fails
   alone; expired envelopes are answered with a
   ``DeadlineExceededError``-typed reply without running the engine.
3. **Report.**  A daemon thread emits a :class:`Heartbeat` with a full
   :class:`repro.serve.MetricsRegistry` snapshot every interval -- the
   orchestrator uses the stream both for health checking and for
   cross-process metrics aggregation.
4. **Exit.**  A :class:`repro.cluster.broker.Shutdown` pill (FIFO
   behind all published work) ends the loop; SIGTERM/SIGINT flip the
   worker into *drain* mode via the shared
   :func:`repro.serve.signals.install_graceful_shutdown` hook -- it
   keeps serving until its queue is empty, then exits, instead of
   abandoning queued requests.

A boot failure (missing registry, corrupt bundle) is reported as a
``"failed"`` heartbeat before the process exits non-zero, so the
orchestrator can distinguish "crashed while serving" (restart) from
"cannot boot" (give the shard up after the restart budget).
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass

from repro.cluster.broker import (
    BrokerEndpoint,
    Envelope,
    Heartbeat,
    Reply,
    Shutdown,
)
from repro.resilience import Deadline, DeadlineExpiredError, deadline_scope

#: How often the consume loop re-checks for work / drain (seconds).
_IDLE_POLL_S = 0.02


@dataclass(frozen=True)
class WorkerBoot:
    """Everything a worker process needs to boot (picklable).

    Attributes:
        registry_path: Model registry root (shared, read-only).
        model_name: Registry model name.
        version: Registry version (None = CURRENT).
        artifact_store_path: This worker's artifact-store shard; None
            keeps whatever the restored bundle config says.
        max_batch_size: Micro-batch limit (mirrors the service knob).
        max_wait_s: Longest to hold an incomplete batch open.
        heartbeat_interval_s: Beacon period.
        throttle_s: Artificial per-request service time (benchmark /
            chaos-test hook; 0 in production).
    """

    registry_path: str
    model_name: str = "wimi"
    version: str | None = None
    artifact_store_path: str | None = None
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    heartbeat_interval_s: float = 0.1
    throttle_s: float = 0.0


class _WorkerRuntime:
    """The serving half of a worker process (testable in-process)."""

    def __init__(
        self,
        worker_id: str,
        shard: int,
        boot: WorkerBoot,
        endpoint: BrokerEndpoint,
    ):
        # Imports deferred to runtime so spawn start-up only pays for
        # them in the child, after the fast pickling handshake.
        from repro.core.pipeline import WiMi
        from repro.serve.metrics import MetricsRegistry, StageEventRecorder

        self.worker_id = worker_id
        self.shard = shard
        self.boot = boot
        self.endpoint = endpoint
        self.metrics = MetricsRegistry()
        for name in (
            "requests.completed", "requests.failed", "requests.expired",
            "requests.redelivered", "clock.skew_clamped",
            "deadline.expired_dequeue", "deadline.expired_stage",
        ):
            self.metrics.counter(name)
        self.draining = threading.Event()
        overrides = (
            {"artifact_store_path": boot.artifact_store_path}
            if boot.artifact_store_path is not None
            else None
        )
        self.wimi = WiMi.from_registry(
            boot.registry_path,
            name=boot.model_name,
            version=boot.version,
            config_overrides=overrides,
        )
        self.wimi.engine.add_hook(StageEventRecorder(self.metrics))
        self._beat_seq = 0

    # ------------------------------------------------------------------

    def beat(self, state: str) -> None:
        """Send one heartbeat carrying the current metrics snapshot.

        The snapshot is *source-stamped* with ``(worker_id, seq)`` --
        the worker id already encodes the incarnation epoch
        (``worker-0.1``, ``worker-0.2``, ...) -- so the orchestrator's
        :meth:`MetricsRegistry.merge` can keep the latest snapshot per
        incarnation and drop re-sent beats instead of double-counting.
        Artifact-store counters are mirrored as gauges first so
        quarantine/heal activity is visible in merged snapshots.
        """
        self._beat_seq += 1
        import os

        self._mirror_store_gauges()
        self.endpoint.send_heartbeat(
            Heartbeat(
                worker=self.worker_id,
                shard=self.shard,
                pid=os.getpid(),
                seq=self._beat_seq,
                state=state,
                metrics=self.metrics.snapshot(
                    source=self.worker_id, seq=self._beat_seq
                ),
            )
        )

    def _mirror_store_gauges(self) -> None:
        store = getattr(self.wimi.cache, "disk_store", None)
        if store is None:
            return
        counters = store.counters()
        for name in ("quarantined", "healed", "corrupt"):
            self.metrics.gauge(f"store.{name}").set(
                float(counters.get(name, 0))
            )

    def _collect(self) -> tuple[list[Envelope], bool]:
        """One micro-batch; returns (batch, keep_running)."""
        first = self.endpoint.consume(timeout=_IDLE_POLL_S)
        if first is None:
            # Empty queue while draining means the drain is complete.
            return [], not self.draining.is_set()
        if isinstance(first, Shutdown):
            return [], False
        batch = [first]
        deadline = time.monotonic() + self.boot.max_wait_s
        while len(batch) < self.boot.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            message = self.endpoint.consume(timeout=max(remaining, 0.0))
            if message is None:
                break
            if isinstance(message, Shutdown):
                # Serve what we already pulled, then stop.
                self._process(batch)
                return [], False
            batch.append(message)
        return batch, True

    def serve_forever(self) -> None:
        """Consume until a pill arrives or a signalled drain finishes."""
        while True:
            batch, keep_running = self._collect()
            if batch:
                self._process(batch)
            if not keep_running:
                return

    # ------------------------------------------------------------------

    def _process(self, batch: list[Envelope]) -> None:
        # Clock discipline: envelope timestamps (submitted_ts,
        # deadline_ts) are wall-clock by the broker contract -- monotonic
        # clocks are not comparable across processes -- so they are the
        # only comparisons allowed to touch time.time().  Every duration
        # measured entirely inside this process (batch-collect window,
        # handle time) runs on time.monotonic(), so an NTP step cannot
        # stretch or collapse it.
        wall_now = time.time()
        live = []
        for envelope in batch:
            if envelope.attempts > 0:
                self.metrics.counter("requests.redelivered").inc()
            wait_s = wall_now - envelope.submitted_ts
            if wait_s < 0.0:
                # Cross-host clock skew (or a step between submit and
                # consume): count it so skew is diagnosable from the
                # orchestrator's merged snapshot instead of invisible.
                self.metrics.counter("clock.skew_clamped").inc()
                wait_s = 0.0
            self.metrics.histogram("queue_wait_ms").observe(wait_s * 1000.0)
            if envelope.expired(wall_now):
                self.metrics.counter("requests.expired").inc()
                self.metrics.counter("deadline.expired_dequeue").inc()
                self._reply_error(
                    envelope,
                    "DeadlineExceededError",
                    "deadline passed while the request was queued",
                    batch_size=len(batch),
                )
            else:
                live.append(envelope)
        if not live:
            return
        self.metrics.histogram("batch_size").observe(len(live))
        if self.boot.throttle_s > 0.0:
            time.sleep(self.boot.throttle_s * len(live))
        started = time.monotonic()
        try:
            # The engine runs under the tightest member deadline
            # (wall-clock: envelope deadlines cross processes);
            # stage boundaries call check_deadline(), so a batch
            # that cannot finish in time aborts to the isolated
            # path below where each envelope's own deadline rules.
            with deadline_scope(self._batch_deadline(live)):
                labels = self.wimi.identify_batch([e.session for e in live])
            if len(labels) != len(live):
                raise RuntimeError(
                    f"engine returned {len(labels)} labels for "
                    f"{len(live)} sessions"
                )
        except DeadlineExpiredError:
            now = time.time()
            for envelope in live:
                if envelope.expired(now):
                    self.metrics.counter("requests.expired").inc()
                    self.metrics.counter("deadline.expired_stage").inc()
                    self._reply_error(
                        envelope,
                        "DeadlineExceededError",
                        "deadline expired mid-pipeline",
                        batch_size=len(live),
                    )
                else:
                    self._run_isolated(envelope, len(live))
            return
        except Exception:
            # Batch path failed: isolate per request so a poisoned
            # session fails alone (same contract as the thread pool).
            for envelope in live:
                self._run_isolated(envelope, len(live))
            return
        handle_ms = (time.monotonic() - started) * 1000.0 / len(live)
        for envelope, label in zip(live, labels):
            self._reply_label(
                envelope, str(label), batch_size=len(live),
                handle_ms=handle_ms,
            )

    @staticmethod
    def _batch_deadline(live: list[Envelope]) -> Deadline | None:
        """Tightest member deadline as a wall-clock Deadline, if any."""
        stamps = [
            e.deadline_ts for e in live if e.deadline_ts is not None
        ]
        if not stamps:
            return None
        return Deadline.at_wall(min(stamps))

    def _run_isolated(self, envelope: Envelope, batch_size: int) -> None:
        started = time.monotonic()
        try:
            scope = (
                Deadline.at_wall(envelope.deadline_ts)
                if envelope.deadline_ts is not None
                else None
            )
            with deadline_scope(scope):
                label = self.wimi.identify(envelope.session)
        except DeadlineExpiredError:
            self.metrics.counter("requests.expired").inc()
            self.metrics.counter("deadline.expired_stage").inc()
            self._reply_error(
                envelope,
                "DeadlineExceededError",
                "deadline expired mid-pipeline",
                batch_size=batch_size,
            )
            return
        except Exception as error:  # noqa: BLE001 - isolation boundary
            self.metrics.counter("requests.failed").inc()
            self.metrics.counter(f"faults.{type(error).__name__}").inc()
            self._reply_error(
                envelope, type(error).__name__, str(error),
                batch_size=batch_size,
            )
            return
        self._reply_label(
            envelope, str(label), batch_size=batch_size,
            handle_ms=(time.monotonic() - started) * 1000.0,
        )

    def _reply_label(
        self, envelope: Envelope, label: str, batch_size: int,
        handle_ms: float = 0.0,
    ) -> None:
        self.metrics.counter("requests.completed").inc()
        self.metrics.histogram("handle_ms").observe(handle_ms)
        self.endpoint.send_reply(
            Reply(
                request_id=envelope.request_id,
                label=label,
                worker=self.worker_id,
                shard=self.shard,
                attempts=envelope.attempts + 1,
                batch_size=batch_size,
                handle_ms=handle_ms,
            )
        )

    def _reply_error(
        self, envelope: Envelope, error_type: str, error: str,
        batch_size: int,
    ) -> None:
        self.endpoint.send_reply(
            Reply(
                request_id=envelope.request_id,
                error_type=error_type,
                error=error,
                worker=self.worker_id,
                shard=self.shard,
                attempts=envelope.attempts + 1,
                batch_size=batch_size,
            )
        )


def worker_main(
    worker_id: str,
    shard: int,
    boot: WorkerBoot,
    endpoint: BrokerEndpoint,
) -> None:
    """Spawn entry point of one cluster worker process."""
    from repro.serve.signals import install_graceful_shutdown

    try:
        runtime = _WorkerRuntime(worker_id, shard, boot, endpoint)
    except Exception as error:  # noqa: BLE001 - boot failure boundary
        import os

        endpoint.send_heartbeat(
            Heartbeat(
                worker=worker_id,
                shard=shard,
                pid=os.getpid(),
                seq=0,
                state="failed",
                metrics={
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(limit=5),
                },
            )
        )
        raise SystemExit(1)

    # SIGTERM/SIGINT flip the worker into drain mode: keep serving
    # until the shard queue is empty, then exit -- never abandon
    # queued requests.  Same hook the in-process service installs.
    install_graceful_shutdown(runtime.draining.set, resend=False)

    runtime.beat("serving")
    stop_beats = threading.Event()

    def heartbeat_loop() -> None:
        while not stop_beats.wait(boot.heartbeat_interval_s):
            state = "draining" if runtime.draining.is_set() else "serving"
            try:
                runtime.beat(state)
            except Exception:  # pragma: no cover - torn-down queue
                return

    beater = threading.Thread(
        target=heartbeat_loop, name=f"{worker_id}-heartbeat", daemon=True
    )
    beater.start()
    try:
        runtime.serve_forever()
    finally:
        stop_beats.set()
        try:
            # Final beat so the parent's last metrics snapshot includes
            # everything this worker served.
            runtime.beat("draining")
        except Exception:  # pragma: no cover - torn-down queue
            pass
