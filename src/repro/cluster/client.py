"""ClusterClient: the service-shaped front door of the cluster.

Application code written against
:class:`repro.serve.IdentificationService` -- ``submit() ->
RequestHandle``, ``identify()``, context-manager lifecycle,
``snapshot()`` -- works against a cluster by swapping the constructor:

    with ClusterClient(registry_path, config=ClusterConfig(3)) as client:
        handle = client.submit(session, timeout=1.0)
        label = handle.result()

The client is a thin facade over :class:`Orchestrator` (it owns one
unless handed a running instance), so scripts can keep the simple shape
while tests and benchmarks reach through ``client.orchestrator`` for
supervision controls (kill a worker, inspect shard state).
"""

from __future__ import annotations

import os

from repro.cluster.orchestrator import ClusterConfig, Orchestrator
from repro.serve.service import RequestHandle


class ClusterClient:
    """``IdentificationService``-shaped facade over an :class:`Orchestrator`.

    Args:
        registry_path: Model registry root (ignored when
            ``orchestrator`` is given).
        config: Cluster tuning (ignored when ``orchestrator`` is given).
        model_name: Registry model name.
        version: Registry version (None = CURRENT).
        store_root: Per-worker artifact-store shard root.
        orchestrator: Adopt an existing (possibly already running)
            orchestrator instead of building one.
    """

    def __init__(
        self,
        registry_path: str | os.PathLike | None = None,
        config: ClusterConfig | None = None,
        model_name: str = "wimi",
        version: str | None = None,
        store_root: str | os.PathLike | None = None,
        orchestrator: Orchestrator | None = None,
    ):
        if orchestrator is None:
            if registry_path is None:
                raise ValueError(
                    "either registry_path or orchestrator is required"
                )
            orchestrator = Orchestrator(
                registry_path,
                config=config,
                model_name=model_name,
                version=version,
                store_root=store_root,
            )
        self.orchestrator = orchestrator

    # -- lifecycle (mirrors IdentificationService) ---------------------

    def start(self) -> "ClusterClient":
        """Boot the cluster (idempotent); blocks until workers beat."""
        self.orchestrator.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut the cluster down; see :meth:`Orchestrator.stop`."""
        self.orchestrator.stop(drain=drain, timeout=timeout)

    def install_signal_handlers(
        self, drain: bool = True, timeout: float = 30.0, resend: bool = True
    ):
        """SIGTERM/SIGINT -> graceful ``stop()`` (same hook the
        in-process service exposes)."""
        from repro.serve.signals import install_graceful_shutdown

        return install_graceful_shutdown(
            lambda: self.stop(drain=drain, timeout=timeout), resend=resend
        )

    def __enter__(self) -> "ClusterClient":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        """Whether the cluster accepts traffic."""
        return self.orchestrator.is_running

    # -- request path --------------------------------------------------

    def submit(
        self,
        session,
        timeout: float | None = None,
        priority: int = 0,
    ) -> RequestHandle:
        """Enqueue one session; returns a :class:`RequestHandle`.

        Raises the same typed, retryable errors as the orchestrator:
        :class:`repro.serve.QueueFullError` on backpressure and
        :class:`repro.serve.OverloadError` when the adaptive shedder
        refuses this priority class.
        """
        return self.orchestrator.submit(
            session, timeout=timeout, priority=priority
        )

    def submit_many(
        self,
        sessions: list,
        timeout: float | None = None,
        priority: int = 0,
    ) -> list[RequestHandle]:
        """Submit several sessions; aborts at the first full queue."""
        return self.orchestrator.submit_many(
            sessions, timeout=timeout, priority=priority
        )

    def identify(self, session, timeout: float | None = None) -> str:
        """Synchronous convenience: submit and wait for the label."""
        return self.orchestrator.identify(session, timeout=timeout)

    # -- introspection -------------------------------------------------

    def snapshot(self) -> dict:
        """Cluster + per-worker + merged metrics snapshot."""
        return self.orchestrator.snapshot()
