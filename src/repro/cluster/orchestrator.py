"""Cluster orchestrator: spawn, route, supervise, restart, aggregate.

The :class:`Orchestrator` owns the whole process topology:

* **Spawn.**  One worker process per shard, started from the broker's
  ``spawn`` context, each warm-booting
  :meth:`repro.core.pipeline.WiMi.from_registry` against its own
  artifact-store shard (``<store_root>/shard-<n>``).
* **Route.**  ``submit()`` consistent-hashes the session's content
  fingerprint onto the :class:`repro.cluster.broker.ShardRing`, so a
  re-measured session always reaches the worker whose memory/disk
  caches already hold its artifacts.  Backpressure is explicit: more
  than ``queue_capacity`` unresolved requests raises
  :class:`repro.serve.QueueFullError`, mirroring the in-process
  service's front door.
* **Supervise.**  Workers stream :class:`Heartbeat` beacons; a monitor
  thread restarts any worker whose process died or whose beacons went
  stale.  Requests that were in flight on the dead worker are
  *redelivered* to its replacement (bounded by ``max_redeliveries``;
  identification is deterministic and side-effect-free, so
  at-least-once delivery plus first-reply-wins deduplication is
  exact).  A shard that exhausts ``max_restarts`` is removed from the
  ring -- its keys spill to the survivors (graceful degradation) --
  and the cluster only stops accepting work when no shard remains.
* **Aggregate.**  Each heartbeat carries a full
  :class:`repro.serve.MetricsRegistry` snapshot;
  :meth:`Orchestrator.snapshot` folds the latest per-worker snapshots
  through :meth:`repro.serve.MetricsRegistry.merge` next to the
  orchestrator's own cluster-level counters.

Request resolution reuses :class:`repro.serve.RequestHandle`, so
callers wait on cluster futures exactly like service futures.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.broker import (
    Broker,
    Envelope,
    LocalQueueBroker,
    Reply,
    ShardRing,
)
from repro.cluster.worker import WorkerBoot, worker_main
from repro.engine.artifacts import session_fingerprint
from repro.resilience import Backoff, CircuitBreaker, LoadShedder
from repro.serve.metrics import MetricsRegistry
from repro.serve.service import (
    DeadlineExceededError,
    OverloadError,
    QueueFullError,
    RequestHandle,
    ServeError,
    ServiceStoppedError,
)

#: Supervision loop tick (seconds).
_MONITOR_POLL_S = 0.02


class ClusterError(ServeError):
    """Cluster-level failure (boot, supervision, shard exhaustion)."""


class RemoteError(ServeError):
    """A worker-side failure relayed across the process boundary.

    Attributes:
        error_type: Exception class name raised in the worker.
        worker: Id of the worker that failed the request.
    """

    def __init__(self, message: str, error_type: str = "", worker: str = ""):
        super().__init__(message)
        self.error_type = error_type
        self.worker = worker


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs of the serving cluster.

    Attributes:
        num_workers: Worker processes (= shards; the feature/artifact
            space is partitioned across them).
        queue_capacity: Cluster-wide unresolved-request cap; beyond it
            ``submit`` raises :class:`repro.serve.QueueFullError`.
        max_batch_size: Worker-side micro-batch limit.
        max_wait_s: Worker-side batch-fill wait.
        default_timeout_s: Deadline for submissions without their own.
        heartbeat_interval_s: Worker beacon period.
        heartbeat_timeout_s: Beacon silence after which a live process
            is declared wedged and restarted.
        max_restarts: Restarts per shard before it is abandoned.
        max_redeliveries: Redeliveries per request before it fails.
        shard_vnodes: Virtual nodes per shard on the hash ring.
        boot_timeout_s: Longest to wait in :meth:`Orchestrator.start`
            for every worker's first heartbeat.
        throttle_s: Artificial per-request worker service time
            (benchmark / chaos-test hook; 0 in production).
        redelivery_backoff_base_s: First-redelivery backoff ceiling;
            redeliveries are deferred by a full-jittered exponential
            delay (per envelope attempt) so a crashing shard's backlog
            cannot re-land on its replacement in one synchronized wave.
        redelivery_backoff_max_s: Cap on any single redelivery delay.
        breaker_failure_threshold: Consecutive worker failures (crash /
            stale heartbeat) after which a shard's circuit breaker
            opens and new keys divert to ring neighbours.
        breaker_open_duration_s: Cool-down before an open breaker
            admits half-open trial traffic; a successful reply from the
            shard closes it again.
        hedge_after_s: Age at which an unresolved request is hedged
            (speculatively re-published to a sibling shard; first reply
            wins).  ``None`` adapts the threshold to
            ``hedge_latency_factor`` x the observed p95 latency once
            ``hedge_min_observations`` requests have completed.
        hedge_latency_factor: Multiplier on p95 for the adaptive
            hedge threshold.
        hedge_min_observations: Completed requests required before
            adaptive hedging arms itself.
        shed_latency_threshold_ms: Cluster latency EWMA mapping to
            shedder pressure 1.0 (None = depth-only shedding).
        shed_base_pressure: Pressure above which priority-0 submits are
            shed with :class:`repro.serve.OverloadError`; the default
            1.0 leaves priority-0 depth behaviour unchanged.
        shed_priority_step: Shed-threshold shift per priority unit.
        shed_ewma_alpha: Smoothing factor of the latency EWMA.
    """

    num_workers: int = 2
    queue_capacity: int = 256
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    default_timeout_s: float | None = None
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 2.0
    max_restarts: int = 3
    max_redeliveries: int = 2
    shard_vnodes: int = 64
    boot_timeout_s: float = 60.0
    throttle_s: float = 0.0
    redelivery_backoff_base_s: float = 0.05
    redelivery_backoff_max_s: float = 1.0
    breaker_failure_threshold: int = 3
    breaker_open_duration_s: float = 5.0
    hedge_after_s: float | None = None
    hedge_latency_factor: float = 3.0
    hedge_min_observations: int = 20
    shed_latency_threshold_ms: float | None = None
    shed_base_pressure: float = 1.0
    shed_priority_step: float = 0.15
    shed_ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s "
                f"({self.heartbeat_timeout_s} <= {self.heartbeat_interval_s})"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.max_redeliveries < 0:
            raise ValueError(
                f"max_redeliveries must be >= 0, got {self.max_redeliveries}"
            )
        if self.redelivery_backoff_base_s < 0:
            raise ValueError(
                "redelivery_backoff_base_s must be >= 0, got "
                f"{self.redelivery_backoff_base_s}"
            )
        if self.redelivery_backoff_max_s < self.redelivery_backoff_base_s:
            raise ValueError(
                f"redelivery_backoff_max_s ({self.redelivery_backoff_max_s}) "
                "must be >= redelivery_backoff_base_s "
                f"({self.redelivery_backoff_base_s})"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError(
                f"hedge_after_s must be > 0 or None, got {self.hedge_after_s}"
            )
        if self.hedge_latency_factor <= 0:
            raise ValueError(
                "hedge_latency_factor must be > 0, got "
                f"{self.hedge_latency_factor}"
            )


class _Pending:
    """Parent-side bookkeeping of one unresolved request."""

    __slots__ = ("envelope", "handle", "submitted_mono", "hedged")

    def __init__(self, envelope: Envelope, handle: RequestHandle):
        self.envelope = envelope
        self.handle = handle
        self.submitted_mono = time.monotonic()
        self.hedged = False


class _WorkerSlot:
    """One shard's process + supervision state."""

    def __init__(self, shard: int):
        self.shard = shard
        self.process = None
        self.worker_id = ""
        self.last_beat_mono: float | None = None
        self.ready = False
        self.restarts = 0
        self.failed = False
        self.boot_error: str | None = None
        #: Latest metrics beat per worker incarnation.  Keeping dead
        #: incarnations' final beats means a restart does not erase the
        #: work that incarnation served; the source-stamped snapshots
        #: dedup (not double-count) in ``MetricsRegistry.merge``.
        self.metrics_by_worker: dict[str, dict] = {}

    @property
    def metrics(self) -> dict:
        """The current incarnation's latest beat (legacy accessor)."""
        return self.metrics_by_worker.get(self.worker_id, {})

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class Orchestrator:
    """Supervised multi-process sharded serving over one registry.

    Args:
        registry_path: Model registry root every worker boots from.
        config: Cluster tuning; defaults suit tests.
        model_name: Registry model name (default ``"wimi"``).
        version: Registry version (default CURRENT).
        store_root: Root under which per-worker artifact-store shards
            live (``<store_root>/shard-<n>``); None leaves each
            worker on whatever the restored bundle config says.
        broker: Transport; defaults to a fresh
            :class:`repro.cluster.broker.LocalQueueBroker`.
    """

    def __init__(
        self,
        registry_path: str | os.PathLike,
        config: ClusterConfig | None = None,
        model_name: str = "wimi",
        version: str | None = None,
        store_root: str | os.PathLike | None = None,
        broker: Broker | None = None,
    ):
        self.config = config if config is not None else ClusterConfig()
        self.registry_path = str(registry_path)
        self.model_name = model_name
        self.version = version
        self.store_root = None if store_root is None else str(store_root)
        self.broker = (
            broker
            if broker is not None
            else LocalQueueBroker(self.config.num_workers)
        )
        self.metrics = MetricsRegistry()
        for name in (
            "requests.submitted", "requests.completed", "requests.failed",
            "requests.rejected", "requests.expired", "requests.shed",
            "deadline.expired_admission",
            "cluster.restarts", "cluster.redeliveries",
            "cluster.duplicate_replies", "cluster.shards_failed",
            "cluster.hedges",
            "breaker.opened", "breaker.closed", "breaker.diverted",
        ):
            self.metrics.counter(name)
        self._latency_hist = self.metrics.histogram("latency_ms")

        self._slots = {
            shard: _WorkerSlot(shard)
            for shard in range(self.config.num_workers)
        }
        self._ring = ShardRing(
            self._slots, vnodes=self.config.shard_vnodes
        )
        self._pending: dict[str, _Pending] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._spawned = itertools.count(0)
        self._stop = threading.Event()
        self._started = False
        self._stopped = False
        self._threads: list[threading.Thread] = []
        self._shedder = LoadShedder(
            capacity=self.config.queue_capacity,
            latency_threshold_ms=self.config.shed_latency_threshold_ms,
            ewma_alpha=self.config.shed_ewma_alpha,
            base_pressure=self.config.shed_base_pressure,
            priority_step=self.config.shed_priority_step,
        )
        self._redelivery_backoff = Backoff(
            base_s=self.config.redelivery_backoff_base_s,
            max_s=self.config.redelivery_backoff_max_s,
        )
        #: Redeliveries waiting out their backoff: (due_mono, envelope),
        #: published by the monitor loop once due.
        self._deferred: list[tuple[float, Envelope]] = []
        self._breakers = {
            shard: CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                open_duration_s=self.config.breaker_open_duration_s,
                on_transition=self._breaker_transition,
            )
            for shard in self._slots
        }

    def _breaker_transition(self, old_state: str, new_state: str) -> None:
        if new_state == "open":
            self.metrics.counter("breaker.opened").inc()
        elif new_state == "closed":
            self.metrics.counter("breaker.closed").inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, wait_ready: bool = True) -> "Orchestrator":
        """Spawn the workers and the supervision threads (idempotent).

        With ``wait_ready`` (default) blocks until every shard's worker
        sent its first heartbeat, raising :class:`ClusterError` if any
        shard cannot boot within ``config.boot_timeout_s``.
        """
        with self._lock:
            if self._started:
                return self
            if self._stopped:
                raise ServiceStoppedError("cluster cannot be restarted")
            self._started = True
        for slot in self._slots.values():
            self._spawn(slot)
        for target, name in (
            (self._reply_loop, "repro-cluster-replies"),
            (self._monitor_loop, "repro-cluster-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        if wait_ready:
            self.wait_ready(self.config.boot_timeout_s)
        return self

    def wait_ready(self, timeout: float) -> None:
        """Block until every live shard has heartbeated once."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                slots = list(self._slots.values())
            live = [s for s in slots if not s.failed]
            if not live:
                errors = "; ".join(
                    f"shard {s.shard}: {s.boot_error or 'unknown'}"
                    for s in slots
                )
                raise ClusterError(f"no shard could boot ({errors})")
            if all(s.ready for s in live):
                return
            time.sleep(_MONITOR_POLL_S)
        raise ClusterError(
            f"workers not ready within {timeout:.1f}s "
            f"(ready: {[s.shard for s in self._slots.values() if s.ready]})"
        )

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the cluster.

        With ``drain`` (default) waits for unresolved requests to
        finish before sending the poison pills; without it, pending
        requests fail with :class:`repro.serve.ServiceStoppedError`.
        """
        with self._lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        deadline = time.monotonic() + timeout
        if drain:
            while self._pending and time.monotonic() < deadline:
                time.sleep(_MONITOR_POLL_S)
        self._stop.set()
        for slot in self._slots.values():
            if slot.alive:
                self.broker.publish_shutdown(slot.shard, drain=drain)
        for slot in self._slots.values():
            if slot.process is not None:
                slot.process.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)
        # Catch the workers' final beats so snapshot() stays accurate
        # after shutdown.
        self._drain_heartbeats()
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for pending in leftovers:
            pending.handle._fail(ServiceStoppedError("cluster stopped"))
            self.metrics.counter("requests.failed").inc()
        self.broker.close()

    def __enter__(self) -> "Orchestrator":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        """Whether the cluster accepts traffic."""
        return (
            self._started
            and not self._stopped
            and any(not s.failed for s in self._slots.values())
        )

    # ------------------------------------------------------------------
    # Spawning / supervision
    # ------------------------------------------------------------------

    def _boot_for(self, slot: _WorkerSlot) -> WorkerBoot:
        store_path = None
        if self.store_root is not None:
            store_path = str(Path(self.store_root) / f"shard-{slot.shard}")
        return WorkerBoot(
            registry_path=self.registry_path,
            model_name=self.model_name,
            version=self.version,
            artifact_store_path=store_path,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_s,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            throttle_s=self.config.throttle_s,
        )

    def _spawn(self, slot: _WorkerSlot) -> None:
        incarnation = next(self._spawned)
        slot.worker_id = f"worker-{slot.shard}.{incarnation}"
        slot.ready = False
        slot.last_beat_mono = None
        context = getattr(self.broker, "context", None)
        if context is None:  # pragma: no cover - non-local broker
            import multiprocessing

            context = multiprocessing.get_context("spawn")
        slot.process = context.Process(
            target=worker_main,
            args=(
                slot.worker_id,
                slot.shard,
                self._boot_for(slot),
                self.broker.endpoint(slot.shard),
            ),
            name=f"repro-cluster-{slot.worker_id}",
            daemon=True,
        )
        slot.process.start()

    def _reply_loop(self) -> None:
        while not self._stop.is_set():
            reply = self.broker.next_reply(timeout=_MONITOR_POLL_S)
            if reply is not None:
                self._resolve(reply)

    def _resolve(self, reply: Reply) -> None:
        with self._lock:
            pending = self._pending.pop(reply.request_id, None)
        if pending is None:
            # A redelivered request answered twice (first reply won) or
            # a reply racing stop(): count it, drop it.
            self.metrics.counter("cluster.duplicate_replies").inc()
            return
        handle = pending.handle
        handle.attempts = reply.attempts
        handle.batch_size = reply.batch_size
        handle.latency_s = time.monotonic() - pending.submitted_mono
        latency_ms = handle.latency_s * 1000.0
        self._latency_hist.observe(latency_ms)
        self._shedder.observe_latency(latency_ms)
        # Any reply -- even an error-typed one -- is evidence the shard's
        # worker is alive and serving; this is what closes a half-open
        # breaker after its trial request comes back.
        breaker = self._breakers.get(reply.shard)
        if breaker is not None:
            breaker.record_success()
        if reply.ok:
            self.metrics.counter("requests.completed").inc()
            handle._resolve(reply.label)
            return
        if reply.error_type == "DeadlineExceededError":
            self.metrics.counter("requests.expired").inc()
            error: BaseException = DeadlineExceededError(reply.error)
        elif reply.error_type in ("QueueFullError", "OverloadError"):
            # Worker-side overload must stay typed and retryable across
            # the process boundary so callers can tell it from poison.
            typed = (
                QueueFullError
                if reply.error_type == "QueueFullError"
                else OverloadError
            )
            error = typed(f"{reply.error} (worker {reply.worker})")
        else:
            error = RemoteError(
                f"{reply.error_type}: {reply.error} "
                f"(worker {reply.worker})",
                error_type=reply.error_type or "",
                worker=reply.worker,
            )
        self.metrics.counter("requests.failed").inc()
        handle._fail(error)

    def _monitor_loop(self) -> None:
        while not self._stop.wait(_MONITOR_POLL_S):
            self._drain_heartbeats()
            self._flush_deferred()
            self._maybe_hedge()
            now = time.monotonic()
            for slot in list(self._slots.values()):
                if slot.failed or slot.process is None:
                    continue
                if not slot.alive:
                    self._recover(slot, "process exited")
                elif (
                    slot.ready
                    and slot.last_beat_mono is not None
                    and now - slot.last_beat_mono
                    > self.config.heartbeat_timeout_s
                ):
                    self._recover(slot, "heartbeats went stale")

    def _drain_heartbeats(self) -> None:
        while True:
            beat = self.broker.next_heartbeat(timeout=0.0)
            if beat is None:
                return
            slot = self._slots.get(beat.shard)
            if slot is None or beat.worker != slot.worker_id:
                continue  # beacon from a previous incarnation
            if beat.state == "failed":
                slot.boot_error = str(beat.metrics.get("error", "boot failed"))
                continue  # liveness handled by process exit
            slot.last_beat_mono = time.monotonic()
            slot.ready = True
            slot.metrics_by_worker[beat.worker] = beat.metrics

    def _recover(self, slot: _WorkerSlot, reason: str) -> None:
        """Restart a dead/wedged worker and redeliver its requests."""
        if slot.process is not None and slot.process.is_alive():
            slot.process.kill()  # wedged: reclaim the shard queue
            slot.process.join(timeout=5.0)
        # A crash/stall is breaker evidence: enough consecutive ones
        # open the shard's circuit and divert new keys to neighbours.
        self._breakers[slot.shard].record_failure()
        # Fresh channels before the replacement spawns: the dead worker
        # may have died holding queue locks, so its channels are junk.
        salvaged = self.broker.reset_shard(slot.shard)
        if slot.restarts >= self.config.max_restarts:
            self._abandon(slot, reason, salvaged)
            return
        slot.restarts += 1
        self.metrics.counter("cluster.restarts").inc()
        self._spawn(slot)
        self._redeliver(slot.shard, salvaged)

    def _redeliver(self, shard: int, salvaged: list[Envelope]) -> None:
        """Re-queue every unresolved envelope routed to ``shard``.

        Salvaged envelopes (still queued, never picked up) are
        re-published immediately -- they were never part of the crash,
        so replaying them cannot re-trigger it.  Envelopes that were in
        flight on the dead worker get their attempt counter bumped and
        are *deferred* by a full-jittered exponential backoff (keyed to
        the attempt) before the monitor loop re-publishes them: if one
        of them is the poison that killed the worker, an immediate
        synchronized replay would re-kill the replacement in a
        redelivery storm.  A request fails permanently once the
        redelivery budget is spent.  Duplicates are harmless:
        identification is deterministic and the reply collector keeps
        the first resolution.
        """
        salvaged_ids = {e.request_id for e in salvaged}
        with self._lock:
            in_flight = [
                p for p in self._pending.values()
                if p.envelope.shard == shard
                and p.envelope.request_id not in salvaged_ids
            ]
        for envelope in salvaged:
            self.broker.publish(envelope)
        now = time.monotonic()
        deferred = []
        for pending in in_flight:
            envelope = pending.envelope.redelivered()
            if envelope.attempts > self.config.max_redeliveries:
                with self._lock:
                    self._pending.pop(envelope.request_id, None)
                self.metrics.counter("requests.failed").inc()
                pending.handle._fail(
                    RemoteError(
                        f"request {envelope.request_id} lost to "
                        f"{envelope.attempts} worker crashes",
                        error_type="RedeliveryExhausted",
                    )
                )
                continue
            pending.envelope = envelope
            self.metrics.counter("cluster.redeliveries").inc()
            delay = self._redelivery_backoff.delay(envelope.attempts - 1)
            deferred.append((now + delay, envelope))
        if deferred:
            with self._lock:
                self._deferred.extend(deferred)

    def _flush_deferred(self) -> None:
        """Publish deferred redeliveries whose backoff has elapsed."""
        now = time.monotonic()
        due = []
        with self._lock:
            if not self._deferred:
                return
            remaining = []
            for due_mono, envelope in self._deferred:
                if due_mono > now:
                    remaining.append((due_mono, envelope))
                elif envelope.request_id in self._pending:
                    due.append(envelope)
                # else: resolved while waiting out the backoff -- drop.
            self._deferred = remaining
        for envelope in due:
            self.broker.publish(envelope)

    def _hedge_threshold_s(self) -> float | None:
        """Age beyond which an in-flight request gets a hedged copy."""
        if self.config.hedge_after_s is not None:
            return self.config.hedge_after_s
        snap = self._latency_hist.snapshot()
        if snap["count"] < self.config.hedge_min_observations:
            return None
        p95_s = snap["p95"] / 1000.0
        if p95_s <= 0:
            return None
        return p95_s * self.config.hedge_latency_factor

    def _maybe_hedge(self) -> None:
        """Speculatively re-publish the slowest in-flight requests.

        A request older than the hedge threshold gets one copy on a
        sibling shard; whichever worker answers first wins and the
        loser's reply is dropped by the dedup in :meth:`_resolve`.
        This converts a stuck/slow shard's tail latency into one extra
        (deterministic, side-effect-free) computation.
        """
        threshold = self._hedge_threshold_s()
        if threshold is None:
            return
        now = time.monotonic()
        with self._lock:
            live = sorted(
                shard for shard in self._ring.shards
                if not self._slots[shard].failed
            )
            if len(live) < 2:
                return
            stale = [
                p for p in self._pending.values()
                if not p.hedged and now - p.submitted_mono >= threshold
            ]
            for pending in stale:
                pending.hedged = True
        for pending in stale:
            sibling = self._sibling(pending.envelope.shard, live)
            if sibling is None:
                continue
            self.metrics.counter("cluster.hedges").inc()
            self.broker.publish(pending.envelope.hedged_to(sibling))

    def _sibling(self, shard: int, live: list[int]) -> int | None:
        """The next live shard after ``shard`` in ring order."""
        candidates = [s for s in live if s != shard]
        if not candidates:
            return None
        for candidate in candidates:
            if candidate > shard:
                return candidate
        return candidates[0]

    def _abandon(
        self, slot: _WorkerSlot, reason: str, salvaged: list[Envelope]
    ) -> None:
        """Give a shard up after its restart budget; keys spill over."""
        slot.failed = True
        self.metrics.counter("cluster.shards_failed").inc()
        with self._lock:
            doomed = [
                p for p in self._pending.values()
                if p.envelope.shard == slot.shard
            ]
            survivors = len(self._ring.shards) > 1
            if survivors:
                self._ring.remove(slot.shard)
        for pending in doomed:
            with self._lock:
                self._pending.pop(pending.envelope.request_id, None)
            self.metrics.counter("requests.failed").inc()
            pending.handle._fail(
                ClusterError(
                    f"shard {slot.shard} abandoned after "
                    f"{slot.restarts} restart(s): {reason}"
                )
            )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def submit(
        self,
        session,
        timeout: float | None = None,
        priority: int = 0,
    ) -> RequestHandle:
        """Enqueue one session; returns a :class:`RequestHandle`.

        Args:
            session: The capture session to identify.
            timeout: Deadline in seconds (falls back to
                ``config.default_timeout_s``); travels in the envelope
                as a wall-clock instant and is enforced at admission,
                worker dequeue and every pipeline stage boundary.  A
                non-positive timeout is rejected at admission without
                publishing.
            priority: Shedding class (0 = normal, negative =
                best-effort, positive = protected).

        Raises:
            QueueFullError: More than ``config.queue_capacity``
                requests are unresolved (explicit backpressure).
            OverloadError: The adaptive shedder refused this priority.
            ServiceStoppedError: The cluster is not running.
        """
        if not self.is_running:
            raise ServiceStoppedError(
                "cluster is not running; use start() or a with-block"
            )
        effective = (
            timeout if timeout is not None else self.config.default_timeout_s
        )
        handle = RequestHandle()
        if effective is not None and effective <= 0:
            self.metrics.counter("deadline.expired_admission").inc()
            self.metrics.counter("requests.expired").inc()
            handle._fail(
                DeadlineExceededError("deadline expired before admission")
            )
            return handle
        with self._lock:
            if len(self._pending) >= self.config.queue_capacity:
                self.metrics.counter("requests.rejected").inc()
                raise QueueFullError(
                    f"{len(self._pending)} requests in flight "
                    f"(capacity {self.config.queue_capacity}); retry later"
                )
            if not self._shedder.admit(len(self._pending), priority):
                self.metrics.counter("requests.shed").inc()
                raise OverloadError(
                    f"shed at priority {priority} (pressure "
                    f"{self._shedder.pressure(len(self._pending)):.2f})"
                )
            shard = self._route(session_fingerprint(session))
            envelope = Envelope(
                request_id=f"r{os.getpid()}-{next(self._ids)}",
                session=session,
                shard=shard,
                deadline_ts=(
                    None if effective is None else time.time() + effective
                ),
                priority=priority,
            )
            self._pending[envelope.request_id] = _Pending(envelope, handle)
        self.metrics.counter("requests.submitted").inc()
        self.broker.publish(envelope)
        return handle

    def _route(self, key: str) -> int:
        """Ring-route ``key``, diverting around open circuit breakers.

        The consistent-hash primary wins whenever its breaker admits
        traffic (cache locality).  While the primary's circuit is open
        the key diverts to the next live shard in ring order whose
        breaker allows -- colder caches, but no waiting behind a shard
        that keeps crashing.  If every breaker refuses, the primary is
        used anyway (total refusal would just turn brownout into
        blackout).  Lock held by the caller.
        """
        primary = self._ring.route(key)
        if self._breakers[primary].allow():
            return primary
        live = sorted(
            shard for shard in self._ring.shards
            if not self._slots[shard].failed and shard != primary
        )
        ordered = (
            [s for s in live if s > primary] + [s for s in live if s < primary]
        )
        for candidate in ordered:
            if self._breakers[candidate].allow():
                self.metrics.counter("breaker.diverted").inc()
                return candidate
        return primary

    def submit_many(
        self,
        sessions: list,
        timeout: float | None = None,
        priority: int = 0,
    ) -> list[RequestHandle]:
        """Submit several sessions; aborts at the first full queue."""
        return [
            self.submit(session, timeout=timeout, priority=priority)
            for session in sessions
        ]

    def identify(self, session, timeout: float | None = None) -> str:
        """Synchronous convenience: submit and wait for the label."""
        return self.submit(session, timeout=timeout).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Cluster counters + per-worker and merged worker metrics.

        Every worker *incarnation* ever heard from contributes (a
        restarted shard does not erase its predecessor's served work);
        :meth:`MetricsRegistry.merge` deduplicates stamped snapshots
        per (worker, epoch) so re-sent heartbeats never double-count.
        """
        with self._lock:
            slots = list(self._slots.values())
            pending = len(self._pending)
            deferred = len(self._deferred)
        worker_snaps: dict[str, dict] = {}
        for slot in slots:
            worker_snaps.update(slot.metrics_by_worker)
        return {
            "cluster": self.metrics.snapshot(),
            "pending": pending,
            "deferred": deferred,
            "load_shedder": self._shedder.snapshot(),
            "breakers": {
                shard: breaker.snapshot()
                for shard, breaker in sorted(self._breakers.items())
            },
            "shards": {
                slot.shard: {
                    "worker": slot.worker_id,
                    "alive": slot.alive,
                    "ready": slot.ready,
                    "restarts": slot.restarts,
                    "failed": slot.failed,
                }
                for slot in slots
            },
            "workers": worker_snaps,
            "merged": MetricsRegistry.merge(
                snap for _, snap in sorted(worker_snaps.items())
            ),
        }
