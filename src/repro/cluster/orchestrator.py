"""Cluster orchestrator: spawn, route, supervise, restart, aggregate.

The :class:`Orchestrator` owns the whole process topology:

* **Spawn.**  One worker process per shard, started from the broker's
  ``spawn`` context, each warm-booting
  :meth:`repro.core.pipeline.WiMi.from_registry` against its own
  artifact-store shard (``<store_root>/shard-<n>``).
* **Route.**  ``submit()`` consistent-hashes the session's content
  fingerprint onto the :class:`repro.cluster.broker.ShardRing`, so a
  re-measured session always reaches the worker whose memory/disk
  caches already hold its artifacts.  Backpressure is explicit: more
  than ``queue_capacity`` unresolved requests raises
  :class:`repro.serve.QueueFullError`, mirroring the in-process
  service's front door.
* **Supervise.**  Workers stream :class:`Heartbeat` beacons; a monitor
  thread restarts any worker whose process died or whose beacons went
  stale.  Requests that were in flight on the dead worker are
  *redelivered* to its replacement (bounded by ``max_redeliveries``;
  identification is deterministic and side-effect-free, so
  at-least-once delivery plus first-reply-wins deduplication is
  exact).  A shard that exhausts ``max_restarts`` is removed from the
  ring -- its keys spill to the survivors (graceful degradation) --
  and the cluster only stops accepting work when no shard remains.
* **Aggregate.**  Each heartbeat carries a full
  :class:`repro.serve.MetricsRegistry` snapshot;
  :meth:`Orchestrator.snapshot` folds the latest per-worker snapshots
  through :meth:`repro.serve.MetricsRegistry.merge` next to the
  orchestrator's own cluster-level counters.

Request resolution reuses :class:`repro.serve.RequestHandle`, so
callers wait on cluster futures exactly like service futures.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.broker import (
    Broker,
    Envelope,
    LocalQueueBroker,
    Reply,
    ShardRing,
)
from repro.cluster.worker import WorkerBoot, worker_main
from repro.engine.artifacts import session_fingerprint
from repro.serve.metrics import MetricsRegistry
from repro.serve.service import (
    DeadlineExceededError,
    QueueFullError,
    RequestHandle,
    ServeError,
    ServiceStoppedError,
)

#: Supervision loop tick (seconds).
_MONITOR_POLL_S = 0.02


class ClusterError(ServeError):
    """Cluster-level failure (boot, supervision, shard exhaustion)."""


class RemoteError(ServeError):
    """A worker-side failure relayed across the process boundary.

    Attributes:
        error_type: Exception class name raised in the worker.
        worker: Id of the worker that failed the request.
    """

    def __init__(self, message: str, error_type: str = "", worker: str = ""):
        super().__init__(message)
        self.error_type = error_type
        self.worker = worker


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs of the serving cluster.

    Attributes:
        num_workers: Worker processes (= shards; the feature/artifact
            space is partitioned across them).
        queue_capacity: Cluster-wide unresolved-request cap; beyond it
            ``submit`` raises :class:`repro.serve.QueueFullError`.
        max_batch_size: Worker-side micro-batch limit.
        max_wait_s: Worker-side batch-fill wait.
        default_timeout_s: Deadline for submissions without their own.
        heartbeat_interval_s: Worker beacon period.
        heartbeat_timeout_s: Beacon silence after which a live process
            is declared wedged and restarted.
        max_restarts: Restarts per shard before it is abandoned.
        max_redeliveries: Redeliveries per request before it fails.
        shard_vnodes: Virtual nodes per shard on the hash ring.
        boot_timeout_s: Longest to wait in :meth:`Orchestrator.start`
            for every worker's first heartbeat.
        throttle_s: Artificial per-request worker service time
            (benchmark / chaos-test hook; 0 in production).
    """

    num_workers: int = 2
    queue_capacity: int = 256
    max_batch_size: int = 8
    max_wait_s: float = 0.005
    default_timeout_s: float | None = None
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 2.0
    max_restarts: int = 3
    max_redeliveries: int = 2
    shard_vnodes: int = 64
    boot_timeout_s: float = 60.0
    throttle_s: float = 0.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s "
                f"({self.heartbeat_timeout_s} <= {self.heartbeat_interval_s})"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.max_redeliveries < 0:
            raise ValueError(
                f"max_redeliveries must be >= 0, got {self.max_redeliveries}"
            )


class _Pending:
    """Parent-side bookkeeping of one unresolved request."""

    __slots__ = ("envelope", "handle", "submitted_mono")

    def __init__(self, envelope: Envelope, handle: RequestHandle):
        self.envelope = envelope
        self.handle = handle
        self.submitted_mono = time.monotonic()


class _WorkerSlot:
    """One shard's process + supervision state."""

    def __init__(self, shard: int):
        self.shard = shard
        self.process = None
        self.worker_id = ""
        self.last_beat_mono: float | None = None
        self.ready = False
        self.restarts = 0
        self.failed = False
        self.boot_error: str | None = None
        self.metrics: dict = {}

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class Orchestrator:
    """Supervised multi-process sharded serving over one registry.

    Args:
        registry_path: Model registry root every worker boots from.
        config: Cluster tuning; defaults suit tests.
        model_name: Registry model name (default ``"wimi"``).
        version: Registry version (default CURRENT).
        store_root: Root under which per-worker artifact-store shards
            live (``<store_root>/shard-<n>``); None leaves each
            worker on whatever the restored bundle config says.
        broker: Transport; defaults to a fresh
            :class:`repro.cluster.broker.LocalQueueBroker`.
    """

    def __init__(
        self,
        registry_path: str | os.PathLike,
        config: ClusterConfig | None = None,
        model_name: str = "wimi",
        version: str | None = None,
        store_root: str | os.PathLike | None = None,
        broker: Broker | None = None,
    ):
        self.config = config if config is not None else ClusterConfig()
        self.registry_path = str(registry_path)
        self.model_name = model_name
        self.version = version
        self.store_root = None if store_root is None else str(store_root)
        self.broker = (
            broker
            if broker is not None
            else LocalQueueBroker(self.config.num_workers)
        )
        self.metrics = MetricsRegistry()
        for name in (
            "requests.submitted", "requests.completed", "requests.failed",
            "requests.rejected", "requests.expired",
            "cluster.restarts", "cluster.redeliveries",
            "cluster.duplicate_replies", "cluster.shards_failed",
        ):
            self.metrics.counter(name)
        self.metrics.histogram("latency_ms")

        self._slots = {
            shard: _WorkerSlot(shard)
            for shard in range(self.config.num_workers)
        }
        self._ring = ShardRing(
            self._slots, vnodes=self.config.shard_vnodes
        )
        self._pending: dict[str, _Pending] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._spawned = itertools.count(0)
        self._stop = threading.Event()
        self._started = False
        self._stopped = False
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, wait_ready: bool = True) -> "Orchestrator":
        """Spawn the workers and the supervision threads (idempotent).

        With ``wait_ready`` (default) blocks until every shard's worker
        sent its first heartbeat, raising :class:`ClusterError` if any
        shard cannot boot within ``config.boot_timeout_s``.
        """
        with self._lock:
            if self._started:
                return self
            if self._stopped:
                raise ServiceStoppedError("cluster cannot be restarted")
            self._started = True
        for slot in self._slots.values():
            self._spawn(slot)
        for target, name in (
            (self._reply_loop, "repro-cluster-replies"),
            (self._monitor_loop, "repro-cluster-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        if wait_ready:
            self.wait_ready(self.config.boot_timeout_s)
        return self

    def wait_ready(self, timeout: float) -> None:
        """Block until every live shard has heartbeated once."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                slots = list(self._slots.values())
            live = [s for s in slots if not s.failed]
            if not live:
                errors = "; ".join(
                    f"shard {s.shard}: {s.boot_error or 'unknown'}"
                    for s in slots
                )
                raise ClusterError(f"no shard could boot ({errors})")
            if all(s.ready for s in live):
                return
            time.sleep(_MONITOR_POLL_S)
        raise ClusterError(
            f"workers not ready within {timeout:.1f}s "
            f"(ready: {[s.shard for s in self._slots.values() if s.ready]})"
        )

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the cluster.

        With ``drain`` (default) waits for unresolved requests to
        finish before sending the poison pills; without it, pending
        requests fail with :class:`repro.serve.ServiceStoppedError`.
        """
        with self._lock:
            if not self._started or self._stopped:
                self._stopped = True
                return
            self._stopped = True
        deadline = time.monotonic() + timeout
        if drain:
            while self._pending and time.monotonic() < deadline:
                time.sleep(_MONITOR_POLL_S)
        self._stop.set()
        for slot in self._slots.values():
            if slot.alive:
                self.broker.publish_shutdown(slot.shard, drain=drain)
        for slot in self._slots.values():
            if slot.process is not None:
                slot.process.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)
        # Catch the workers' final beats so snapshot() stays accurate
        # after shutdown.
        self._drain_heartbeats()
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for pending in leftovers:
            pending.handle._fail(ServiceStoppedError("cluster stopped"))
            self.metrics.counter("requests.failed").inc()
        self.broker.close()

    def __enter__(self) -> "Orchestrator":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        """Whether the cluster accepts traffic."""
        return (
            self._started
            and not self._stopped
            and any(not s.failed for s in self._slots.values())
        )

    # ------------------------------------------------------------------
    # Spawning / supervision
    # ------------------------------------------------------------------

    def _boot_for(self, slot: _WorkerSlot) -> WorkerBoot:
        store_path = None
        if self.store_root is not None:
            store_path = str(Path(self.store_root) / f"shard-{slot.shard}")
        return WorkerBoot(
            registry_path=self.registry_path,
            model_name=self.model_name,
            version=self.version,
            artifact_store_path=store_path,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_s,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            throttle_s=self.config.throttle_s,
        )

    def _spawn(self, slot: _WorkerSlot) -> None:
        incarnation = next(self._spawned)
        slot.worker_id = f"worker-{slot.shard}.{incarnation}"
        slot.ready = False
        slot.last_beat_mono = None
        context = getattr(self.broker, "context", None)
        if context is None:  # pragma: no cover - non-local broker
            import multiprocessing

            context = multiprocessing.get_context("spawn")
        slot.process = context.Process(
            target=worker_main,
            args=(
                slot.worker_id,
                slot.shard,
                self._boot_for(slot),
                self.broker.endpoint(slot.shard),
            ),
            name=f"repro-cluster-{slot.worker_id}",
            daemon=True,
        )
        slot.process.start()

    def _reply_loop(self) -> None:
        while not self._stop.is_set():
            reply = self.broker.next_reply(timeout=_MONITOR_POLL_S)
            if reply is not None:
                self._resolve(reply)

    def _resolve(self, reply: Reply) -> None:
        with self._lock:
            pending = self._pending.pop(reply.request_id, None)
        if pending is None:
            # A redelivered request answered twice (first reply won) or
            # a reply racing stop(): count it, drop it.
            self.metrics.counter("cluster.duplicate_replies").inc()
            return
        handle = pending.handle
        handle.attempts = reply.attempts
        handle.batch_size = reply.batch_size
        handle.latency_s = time.monotonic() - pending.submitted_mono
        self.metrics.histogram("latency_ms").observe(
            handle.latency_s * 1000.0
        )
        if reply.ok:
            self.metrics.counter("requests.completed").inc()
            handle._resolve(reply.label)
            return
        if reply.error_type == "DeadlineExceededError":
            self.metrics.counter("requests.expired").inc()
            error: BaseException = DeadlineExceededError(reply.error)
        else:
            error = RemoteError(
                f"{reply.error_type}: {reply.error} "
                f"(worker {reply.worker})",
                error_type=reply.error_type or "",
                worker=reply.worker,
            )
        self.metrics.counter("requests.failed").inc()
        handle._fail(error)

    def _monitor_loop(self) -> None:
        while not self._stop.wait(_MONITOR_POLL_S):
            self._drain_heartbeats()
            now = time.monotonic()
            for slot in list(self._slots.values()):
                if slot.failed or slot.process is None:
                    continue
                if not slot.alive:
                    self._recover(slot, "process exited")
                elif (
                    slot.ready
                    and slot.last_beat_mono is not None
                    and now - slot.last_beat_mono
                    > self.config.heartbeat_timeout_s
                ):
                    self._recover(slot, "heartbeats went stale")

    def _drain_heartbeats(self) -> None:
        while True:
            beat = self.broker.next_heartbeat(timeout=0.0)
            if beat is None:
                return
            slot = self._slots.get(beat.shard)
            if slot is None or beat.worker != slot.worker_id:
                continue  # beacon from a previous incarnation
            if beat.state == "failed":
                slot.boot_error = str(beat.metrics.get("error", "boot failed"))
                continue  # liveness handled by process exit
            slot.last_beat_mono = time.monotonic()
            slot.ready = True
            slot.metrics = beat.metrics

    def _recover(self, slot: _WorkerSlot, reason: str) -> None:
        """Restart a dead/wedged worker and redeliver its requests."""
        if slot.process is not None and slot.process.is_alive():
            slot.process.kill()  # wedged: reclaim the shard queue
            slot.process.join(timeout=5.0)
        # Fresh channels before the replacement spawns: the dead worker
        # may have died holding queue locks, so its channels are junk.
        salvaged = self.broker.reset_shard(slot.shard)
        if slot.restarts >= self.config.max_restarts:
            self._abandon(slot, reason, salvaged)
            return
        slot.restarts += 1
        self.metrics.counter("cluster.restarts").inc()
        self._spawn(slot)
        self._redeliver(slot.shard, salvaged)

    def _redeliver(self, shard: int, salvaged: list[Envelope]) -> None:
        """Re-publish every unresolved envelope routed to ``shard``.

        Salvaged envelopes (still queued, never picked up) are
        re-published as-is; envelopes that were in flight on the dead
        worker get their attempt counter bumped and fail permanently
        once the redelivery budget is spent.  Duplicates are harmless:
        identification is deterministic and the reply collector keeps
        the first resolution.
        """
        salvaged_ids = {e.request_id for e in salvaged}
        with self._lock:
            in_flight = [
                p for p in self._pending.values()
                if p.envelope.shard == shard
                and p.envelope.request_id not in salvaged_ids
            ]
        for envelope in salvaged:
            self.broker.publish(envelope)
        for pending in in_flight:
            envelope = pending.envelope.redelivered()
            if envelope.attempts > self.config.max_redeliveries:
                with self._lock:
                    self._pending.pop(envelope.request_id, None)
                self.metrics.counter("requests.failed").inc()
                pending.handle._fail(
                    RemoteError(
                        f"request {envelope.request_id} lost to "
                        f"{envelope.attempts} worker crashes",
                        error_type="RedeliveryExhausted",
                    )
                )
                continue
            pending.envelope = envelope
            self.metrics.counter("cluster.redeliveries").inc()
            self.broker.publish(envelope)

    def _abandon(
        self, slot: _WorkerSlot, reason: str, salvaged: list[Envelope]
    ) -> None:
        """Give a shard up after its restart budget; keys spill over."""
        slot.failed = True
        self.metrics.counter("cluster.shards_failed").inc()
        with self._lock:
            doomed = [
                p for p in self._pending.values()
                if p.envelope.shard == slot.shard
            ]
            survivors = len(self._ring.shards) > 1
            if survivors:
                self._ring.remove(slot.shard)
        for pending in doomed:
            with self._lock:
                self._pending.pop(pending.envelope.request_id, None)
            self.metrics.counter("requests.failed").inc()
            pending.handle._fail(
                ClusterError(
                    f"shard {slot.shard} abandoned after "
                    f"{slot.restarts} restart(s): {reason}"
                )
            )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def submit(self, session, timeout: float | None = None) -> RequestHandle:
        """Enqueue one session; returns a :class:`RequestHandle`.

        Raises:
            QueueFullError: More than ``config.queue_capacity``
                requests are unresolved (explicit backpressure).
            ServiceStoppedError: The cluster is not running.
        """
        if not self.is_running:
            raise ServiceStoppedError(
                "cluster is not running; use start() or a with-block"
            )
        effective = (
            timeout if timeout is not None else self.config.default_timeout_s
        )
        handle = RequestHandle()
        with self._lock:
            if len(self._pending) >= self.config.queue_capacity:
                self.metrics.counter("requests.rejected").inc()
                raise QueueFullError(
                    f"{len(self._pending)} requests in flight "
                    f"(capacity {self.config.queue_capacity}); retry later"
                )
            shard = self._ring.route(session_fingerprint(session))
            envelope = Envelope(
                request_id=f"r{os.getpid()}-{next(self._ids)}",
                session=session,
                shard=shard,
                deadline_ts=(
                    None if effective is None else time.time() + effective
                ),
            )
            self._pending[envelope.request_id] = _Pending(envelope, handle)
        self.metrics.counter("requests.submitted").inc()
        self.broker.publish(envelope)
        return handle

    def submit_many(
        self, sessions: list, timeout: float | None = None
    ) -> list[RequestHandle]:
        """Submit several sessions; aborts at the first full queue."""
        return [self.submit(session, timeout=timeout) for session in sessions]

    def identify(self, session, timeout: float | None = None) -> str:
        """Synchronous convenience: submit and wait for the label."""
        return self.submit(session, timeout=timeout).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Cluster counters + per-worker and merged worker metrics."""
        with self._lock:
            slots = list(self._slots.values())
            pending = len(self._pending)
        worker_snaps = {
            slot.worker_id: slot.metrics for slot in slots if slot.metrics
        }
        return {
            "cluster": self.metrics.snapshot(),
            "pending": pending,
            "shards": {
                slot.shard: {
                    "worker": slot.worker_id,
                    "alive": slot.alive,
                    "ready": slot.ready,
                    "restarts": slot.restarts,
                    "failed": slot.failed,
                }
                for slot in slots
            },
            "workers": worker_snaps,
            "merged": MetricsRegistry.merge(worker_snaps.values()),
        }
