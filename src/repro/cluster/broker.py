"""Broker abstraction: enveloped requests over per-shard work queues.

The cluster never hands raw sessions between processes -- everything
crosses the process boundary as a small picklable message:

* :class:`Envelope` -- one identification request, routed to a shard.
  Deadlines are **wall-clock** (``time.time()``): monotonic clocks are
  not comparable across processes, so the submit path converts the
  caller's relative timeout once and every process compares against the
  same wall clock.
* :class:`Reply` -- the worker's resolution (label or a typed error).
  Exceptions do not cross the boundary as objects (a worker-side
  exception class may not unpickle in the parent); they travel as
  ``(error_type, error)`` strings and are re-raised by the client as
  :class:`repro.cluster.orchestrator.RemoteError` or a mapped
  service-level type.
* :class:`Heartbeat` -- liveness + a full metrics snapshot, so health
  checking and cross-process metrics aggregation ride one channel.
* :class:`Shutdown` -- the poison pill.  The request queues are FIFO,
  so a pill published after the last request *is* drain semantics: the
  worker finishes everything ahead of the pill, then exits.

:class:`Broker` is the abstract transport: the parent publishes
envelopes and consumes replies/heartbeats; a worker obtains a picklable
:class:`BrokerEndpoint` for its shard and consumes/replies through it.
:class:`LocalQueueBroker` implements it on ``multiprocessing`` queues.
Every channel is **per-shard** -- request, reply and health queues
alike.  Sharing any queue across workers would be fatal under SIGKILL:
a ``multiprocessing`` queue write holds a cross-process lock, and a
worker killed between writing its bytes and releasing that lock leaves
the lock held forever, deadlocking every other writer (on a one-core
host the reader typically wakes *before* the writer's feeder thread
gets rescheduled to release, so the window is wide, not exotic).  With
queue-per-worker channels a dead worker can only jam its own queues,
and :meth:`LocalQueueBroker.reset_shard` replaces them wholesale before
the replacement process spawns.  The topology matches what an AMQP
deployment would use (a channel per producer), so a rabbit-backed
broker can slot in behind the identical interface with workers on
other hosts.

:class:`ShardRing` is the router: consistent hashing (virtual nodes on
a blake2b ring) from a session's content fingerprint to a shard, so a
re-measured session always lands on the worker whose caches already
hold its artifacts, and removing a failed shard only remaps the keys
that lived on it.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue as queue_module
import time
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------


@dataclass
class Envelope:
    """One enqueued identification request.

    Attributes:
        request_id: Cluster-unique id; replies echo it.
        session: The :class:`repro.csi.collector.CaptureSession`.
        shard: Shard the router assigned (sticky across redeliveries so
            the owning worker's caches stay hot).
        deadline_ts: Absolute wall-clock deadline (None = no deadline).
        attempts: Deliveries so far (0 on first publish); bumped on
            every redelivery after a worker crash.
        submitted_ts: Wall-clock submit time (worker-side queue-wait
            accounting; the parent keeps its own monotonic clock for
            latency).
        priority: Load-shedding class (0 = normal, negative =
            best-effort, positive = protected); workers shed low
            priorities first under pressure.
        hedged: Whether this delivery is a speculative (hedged) copy
            published to a sibling shard while the original is still in
            flight; informational -- dedup is by request_id.
    """

    request_id: str
    session: object
    shard: int
    deadline_ts: float | None = None
    attempts: int = 0
    submitted_ts: float = field(default_factory=time.time)
    priority: int = 0
    hedged: bool = False

    def expired(self, now: float | None = None) -> bool:
        """Whether the wall-clock deadline has passed."""
        if self.deadline_ts is None:
            return False
        return (time.time() if now is None else now) > self.deadline_ts

    def redelivered(self) -> "Envelope":
        """A copy with the delivery attempt counter bumped."""
        return replace(self, attempts=self.attempts + 1)

    def hedged_to(self, shard: int) -> "Envelope":
        """A speculative copy routed to a sibling shard.

        Attempts are *not* bumped: a hedge is not a failure redelivery,
        so it must not eat into the crash-redelivery budget.
        """
        return replace(self, shard=shard, hedged=True)


@dataclass
class Reply:
    """A worker's resolution of one envelope."""

    request_id: str
    label: str | None = None
    error_type: str | None = None
    error: str | None = None
    worker: str = ""
    shard: int = -1
    attempts: int = 1
    batch_size: int = 1
    handle_ms: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the request succeeded."""
        return self.error_type is None


@dataclass
class Heartbeat:
    """Periodic worker liveness + metrics beacon."""

    worker: str
    shard: int
    pid: int
    seq: int
    state: str  # "serving" | "draining"
    sent_ts: float = field(default_factory=time.time)
    metrics: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Shutdown:
    """Poison pill; FIFO ordering behind real work makes it a drain."""

    drain: bool = True


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------


class BrokerEndpoint(ABC):
    """Worker-side view of one shard's queues (must be picklable)."""

    @abstractmethod
    def consume(self, timeout: float) -> Envelope | Shutdown | None:
        """Next message for this shard, or None after ``timeout``."""

    @abstractmethod
    def send_reply(self, reply: Reply) -> None:
        """Publish a resolution back to the parent."""

    @abstractmethod
    def send_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Publish a liveness beacon (droppable, never blocks long)."""


class Broker(ABC):
    """Parent-side transport: publish requests, collect replies/beats.

    The contract an alternative backend (AMQP, Redis streams...) must
    satisfy: per-shard FIFO request/reply/health channels, a picklable
    per-shard endpoint a worker process can consume through, and a
    :meth:`reset_shard` that replaces one shard's channels so a crashed
    consumer cannot poison its successor.  Delivery is at-least-once --
    the orchestrator redelivers on worker death and deduplicates
    replies -- so a backend needs no exactly-once machinery.
    """

    @abstractmethod
    def publish(self, envelope: Envelope) -> None:
        """Enqueue an envelope onto its shard's request channel."""

    @abstractmethod
    def publish_shutdown(self, shard: int, drain: bool = True) -> None:
        """Send the poison pill to one shard."""

    @abstractmethod
    def next_reply(self, timeout: float) -> Reply | None:
        """Next reply from any worker, or None after ``timeout``."""

    @abstractmethod
    def next_heartbeat(self, timeout: float) -> Heartbeat | None:
        """Next heartbeat from any worker, or None after ``timeout``."""

    @abstractmethod
    def endpoint(self, shard: int) -> BrokerEndpoint:
        """The picklable worker-side endpoint of one shard."""

    @abstractmethod
    def reset_shard(self, shard: int) -> list[Envelope]:
        """Replace one shard's channels with fresh ones, returning the
        envelopes salvaged from the old request channel.

        Called before respawning a crashed worker: whatever state the
        dead consumer left behind (held locks, half-written frames) is
        abandoned with the old channels, and the replacement worker's
        endpoint binds to the new ones.
        """

    @abstractmethod
    def close(self) -> None:
        """Release transport resources; queued data may be dropped."""


class LocalQueueEndpoint(BrokerEndpoint):
    """``multiprocessing``-queue endpoint; travels to the worker via
    the spawn pickling of ``Process`` arguments."""

    def __init__(self, shard, requests, replies, health):
        self.shard = shard
        self._requests = requests
        self._replies = replies
        self._health = health

    def consume(self, timeout: float) -> Envelope | Shutdown | None:
        try:
            return self._requests.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def send_reply(self, reply: Reply) -> None:
        self._replies.put(reply)

    def send_heartbeat(self, heartbeat: Heartbeat) -> None:
        try:
            self._health.put_nowait(heartbeat)
        except queue_module.Full:  # pragma: no cover - bounded overflow
            pass  # liveness is periodic; dropping one beat is harmless


class LocalQueueBroker(Broker):
    """Single-host backend over ``multiprocessing`` spawn-context queues.

    Every shard owns a private request, reply and health queue
    (queue-per-consumer AND queue-per-producer).  Nothing is shared
    between workers: a SIGKILLed worker can die holding its reply
    queue's writer lock, and if that queue were shared the survivors'
    feeder threads would block on it forever -- the parent would see
    the queue's item semaphore grow while its pipe end stays silent.
    Private channels confine the damage to queues that
    :meth:`reset_shard` throws away before the replacement worker
    spawns.

    Request queues are unbounded -- backpressure is enforced at the
    client by the in-flight cap, so supervision (redelivery after a
    crash) can always re-publish without risking a deadlock against a
    full pipe.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._ctx = multiprocessing.get_context("spawn")
        self.num_shards = num_shards
        self._requests = [self._ctx.Queue() for _ in range(num_shards)]
        self._replies = [self._ctx.Queue() for _ in range(num_shards)]
        self._health = [
            self._ctx.Queue(maxsize=1024) for _ in range(num_shards)
        ]
        # Queues discarded by reset_shard.  They are not closed until
        # close(): the reply/monitor threads may still hold a snapshot
        # of the old channel list for one poll interval, and a closed
        # queue raises where an idle one just stays silent.
        self._retired: list = []

    @property
    def context(self):
        """The spawn context workers must be started from."""
        return self._ctx

    def publish(self, envelope: Envelope) -> None:
        self._requests[envelope.shard].put(envelope)

    def publish_shutdown(self, shard: int, drain: bool = True) -> None:
        self._requests[shard].put(Shutdown(drain=drain))

    def next_reply(self, timeout: float) -> Reply | None:
        return self._next(self._replies, timeout)

    def next_heartbeat(self, timeout: float) -> Heartbeat | None:
        return self._next(self._health, timeout)

    def _next(self, queues, timeout: float):
        """Pop from any of ``queues``, multiplexing with a single wait.

        ``queues`` is re-read as a fresh snapshot each iteration so a
        concurrent reset_shard takes effect within one poll interval.
        """
        deadline = time.monotonic() + timeout
        while True:
            for q in list(queues):
                try:
                    return q.get_nowait()
                except queue_module.Empty:
                    continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            # Block on the read ends of all channels at once; a ready
            # pipe loops back into the non-blocking sweep above.
            readers = [q._reader for q in list(queues)]
            mp_connection.wait(readers, timeout=min(remaining, 0.05))

    def endpoint(self, shard: int) -> LocalQueueEndpoint:
        return LocalQueueEndpoint(
            shard,
            self._requests[shard],
            self._replies[shard],
            self._health[shard],
        )

    def reset_shard(self, shard: int) -> list[Envelope]:
        salvaged = []
        while True:
            try:
                message = self._requests[shard].get_nowait()
            except queue_module.Empty:
                break
            if isinstance(message, Envelope):
                salvaged.append(message)
        self._retired += [
            self._requests[shard], self._replies[shard], self._health[shard]
        ]
        self._requests[shard] = self._ctx.Queue()
        self._replies[shard] = self._ctx.Queue()
        self._health[shard] = self._ctx.Queue(maxsize=1024)
        return salvaged

    def close(self) -> None:
        for q in (*self._requests, *self._replies, *self._health,
                  *self._retired):
            q.close()
            # Do not block interpreter exit on unflushed feeder threads:
            # by close() time every consumer is gone.
            q.cancel_join_thread()


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def _ring_hash(key: str) -> int:
    """Stable 64-bit position on the ring (process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


class ShardRing:
    """Consistent-hash router from content keys to shards.

    Each shard owns ``vnodes`` pseudo-random points on a 64-bit ring; a
    key routes to the first point clockwise from its own hash.  Virtual
    nodes keep the load split close to uniform, and :meth:`remove` (a
    failed shard whose restart budget is exhausted) only remaps the
    keys that lived on the removed shard's points -- every other
    session keeps hitting the worker whose caches already know it.
    """

    def __init__(self, shards, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, int]] = []
        self._shards: set[int] = set()
        for shard in shards:
            self.add(shard)
        if not self._shards:
            raise ValueError("need at least one shard")

    def add(self, shard: int) -> None:
        """Add a shard's virtual nodes to the ring."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for vnode in range(self.vnodes):
            self._points.append((_ring_hash(f"shard-{shard}:{vnode}"), shard))
        self._points.sort()

    def remove(self, shard: int) -> None:
        """Take a shard off the ring (its keys spill to the survivors)."""
        if shard not in self._shards:
            return
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    @property
    def shards(self) -> list[int]:
        """Live shards, sorted."""
        return sorted(self._shards)

    def route(self, key: str) -> int:
        """The shard owning ``key``."""
        position = _ring_hash(key)
        index = bisect_right(self._points, (position, -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]
