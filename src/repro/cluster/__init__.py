"""Multi-process sharded serving cluster.

PR 2 made the pipeline a *service* (one process, thread pool, shared
stage cache); this package makes it a *cluster*: N worker **processes**
consuming enveloped requests from a broker-style work queue, each
warm-booted from the model registry against its own shard of the
artifact store, supervised by an orchestrator that health-checks,
restarts crashed workers, redelivers their in-flight requests and
aggregates per-worker metrics into one dashboard.

* :mod:`repro.cluster.broker` -- message envelopes, the
  :class:`Broker` abstraction (local ``multiprocessing``-queue backend
  today, designed so an AMQP-style backend can slot in later) and the
  consistent-hash :class:`ShardRing` router;
* :mod:`repro.cluster.worker` -- the worker-process main loop:
  registry warm boot, micro-batched consumption, per-request fault
  isolation, heartbeats, SIGTERM drain;
* :mod:`repro.cluster.orchestrator` -- process supervision, health
  checks, restart + redelivery, cross-process metrics aggregation;
* :mod:`repro.cluster.client` -- :class:`ClusterClient`, the
  ``submit()/identify()`` facade mirroring
  :class:`repro.serve.IdentificationService`.

``repro cluster-bench`` measures the cluster against the
single-process service and commits ``BENCH_PR7.json``.
"""

from repro.cluster.broker import (
    Broker,
    Envelope,
    Heartbeat,
    LocalQueueBroker,
    Reply,
    ShardRing,
    Shutdown,
)
from repro.cluster.client import ClusterClient
from repro.cluster.orchestrator import (
    ClusterConfig,
    ClusterError,
    Orchestrator,
    RemoteError,
)
from repro.cluster.worker import WorkerBoot, worker_main

__all__ = [
    "Broker",
    "ClusterClient",
    "ClusterConfig",
    "ClusterError",
    "Envelope",
    "Heartbeat",
    "LocalQueueBroker",
    "Orchestrator",
    "RemoteError",
    "Reply",
    "ShardRing",
    "Shutdown",
    "WorkerBoot",
    "worker_main",
]
