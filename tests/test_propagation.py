"""Tests for the plane-wave propagation physics (paper Sec. II-B)."""

import cmath
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.materials import AIR, Material, default_catalog, pure_water
from repro.channel.propagation import (
    SPEED_OF_LIGHT,
    amplitude_ratio_through,
    attenuation_constant,
    material_feature_theory,
    penetration_response,
    phase_change_through,
    phase_constant,
    propagation_constants,
    rss_change_db,
    wavelength_in,
)


class TestPropagationConstants:
    def test_free_space_phase_constant(self):
        # beta_free = 2 pi / lambda.
        beta = phase_constant(AIR, 5.32e9)
        expected = 2.0 * math.pi * 5.32e9 / SPEED_OF_LIGHT
        assert beta == pytest.approx(expected, rel=1e-3)

    def test_air_attenuation_negligible(self):
        assert attenuation_constant(AIR) == pytest.approx(0.0, abs=1e-9)

    def test_lossless_low_loss_limit(self):
        # For small tan(delta): alpha ~ beta tan(delta) / 2.
        m = Material("x", 4.0, 0.04)
        alpha, beta = propagation_constants(m)
        assert alpha == pytest.approx(beta * 0.01 / 2.0, rel=0.01)

    def test_beta_scales_with_sqrt_permittivity(self):
        m4 = Material("a", 4.0, 0.0)
        m16 = Material("b", 16.0, 0.0)
        assert phase_constant(m16) == pytest.approx(
            2.0 * phase_constant(m4), rel=1e-9
        )

    def test_constants_scale_with_frequency(self):
        m = pure_water()
        _, b1 = propagation_constants(m, 5.0e9)
        _, b2 = propagation_constants(m, 10.0e9)
        assert b2 == pytest.approx(2.0 * b1, rel=0.01)

    def test_water_values_plausible(self):
        alpha, beta = propagation_constants(pure_water())
        # ~5 GHz water: wavelength ~7 mm in medium, strong loss.
        assert 800 < beta < 1100
        assert 100 < alpha < 200

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError, match="frequency"):
            propagation_constants(AIR, -1.0)

    def test_wavelength_in_air(self):
        assert wavelength_in(AIR, 5.32e9) == pytest.approx(0.05635, rel=1e-3)

    def test_wavelength_shrinks_in_dense_media(self):
        assert wavelength_in(pure_water()) < wavelength_in(AIR) / 5


class TestPenetration:
    def test_phase_change_positive_for_dense_media(self):
        assert phase_change_through(pure_water(), 0.01) > 0.0

    def test_phase_change_linear_in_distance(self):
        one = phase_change_through(pure_water(), 0.01)
        two = phase_change_through(pure_water(), 0.02)
        assert two == pytest.approx(2.0 * one)

    def test_amplitude_ratio_in_unit_interval(self):
        ratio = amplitude_ratio_through(pure_water(), 0.01)
        assert 0.0 < ratio < 1.0

    def test_amplitude_ratio_zero_distance(self):
        assert amplitude_ratio_through(pure_water(), 0.0) == pytest.approx(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError, match="path length"):
            phase_change_through(pure_water(), -0.01)
        with pytest.raises(ValueError, match="path length"):
            amplitude_ratio_through(pure_water(), -0.01)

    def test_penetration_response_consistent(self):
        d = 0.012
        response = penetration_response(pure_water(), d)
        assert abs(response) == pytest.approx(
            amplitude_ratio_through(pure_water(), d)
        )
        assert cmath.phase(response) == pytest.approx(
            -phase_change_through(pure_water(), d) % (2 * math.pi) - (
                2 * math.pi
                if (-phase_change_through(pure_water(), d) % (2 * math.pi))
                > math.pi
                else 0.0
            ),
            abs=1e-9,
        )

    def test_rss_change_negative_for_lossy(self):
        assert rss_change_db(pure_water(), 0.01) < 0.0

    def test_rss_change_matches_ratio(self):
        d = 0.005
        ratio = amplitude_ratio_through(pure_water(), d)
        assert rss_change_db(pure_water(), d) == pytest.approx(
            20.0 * math.log10(ratio)
        )


class TestMaterialFeature:
    def test_positive_for_all_catalog_liquids(self):
        catalog = default_catalog()
        for material in catalog:
            if material.name == "air":
                continue
            assert material_feature_theory(material) > 0.0, material.name

    def test_equals_alpha_over_beta_difference(self):
        m = pure_water()
        alpha, beta = propagation_constants(m)
        alpha_f, beta_f = propagation_constants(AIR)
        expected = (alpha - alpha_f) / (beta - beta_f)
        assert material_feature_theory(m) == pytest.approx(expected)

    def test_size_independence_by_construction(self):
        # Omega-bar derives only from (alpha, beta); verify the Eq. 20/21
        # algebra: for any D, (-ln ratio) / phase = Omega-bar.
        m = pure_water()
        omega = material_feature_theory(m)
        for d in (0.001, 0.01, 0.1):
            n = -math.log(amplitude_ratio_through(m, d))
            theta = phase_change_through(m, d)
            assert n / theta == pytest.approx(omega, rel=1e-9)

    def test_air_vs_air_rejected(self):
        with pytest.raises(ValueError, match="indistinguishable"):
            material_feature_theory(AIR)

    def test_catalog_orders_as_designed(self):
        # The designed feature ordering that drives the experiments.
        catalog = default_catalog()
        omega = {
            name: material_feature_theory(catalog.get(name))
            for name in ("oil", "pure_water", "pepsi", "coke", "soy", "liquor")
        }
        assert omega["oil"] < omega["pure_water"] < omega["pepsi"]
        assert omega["pepsi"] < omega["coke"] < omega["soy"] < omega["liquor"]

    def test_saltwater_feature_monotone_in_concentration(self):
        from repro.channel.materials import saltwater

        values = [
            material_feature_theory(saltwater(c)) for c in (1.2, 2.7, 5.9)
        ]
        assert values == sorted(values)


class TestPropertyBased:
    @given(
        st.floats(min_value=1.1, max_value=90.0),
        st.floats(min_value=0.01, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_constants_positive(self, er, ei):
        alpha, beta = propagation_constants(Material("x", er, ei))
        assert alpha > 0.0
        assert beta > 0.0

    @given(
        st.floats(min_value=1.1, max_value=90.0),
        st.floats(min_value=0.01, max_value=50.0),
        st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=50, deadline=None)
    def test_ratio_decays_with_distance(self, er, ei, d):
        m = Material("x", er, ei)
        assert amplitude_ratio_through(m, d) <= 1.0 + 1e-12

    @given(
        st.floats(min_value=1.1, max_value=90.0),
        st.floats(min_value=0.01, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_feature_scale_invariant_in_distance(self, er, ei):
        m = Material("x", er, ei)
        omega = material_feature_theory(m)
        n = -math.log(amplitude_ratio_through(m, 0.037))
        theta = phase_change_through(m, 0.037)
        assert n / theta == pytest.approx(omega, rel=1e-6)
