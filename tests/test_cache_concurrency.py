"""StageCache under concurrent access.

The serving worker pool shares one :class:`repro.engine.StageCache`
across N engine views; these tests hammer a shared cache from many
threads and pin down the thread-safety contract documented in
:mod:`repro.engine.cache`: consistent counters, uncorrupted artifacts,
bounded size -- with duplicate computation of a concurrently-missed key
allowed (content-addressed artifacts make it benign).
"""

import threading

from repro.engine.cache import StageCache

THREADS = 8
ROUNDS = 300


def _hammer(cache, thread_index, errors, compute_log):
    for round_index in range(ROUNDS):
        key = f"key-{round_index % 25}"
        stage = f"stage-{round_index % 3}"
        expected = f"{stage}:{key}:artifact"

        def compute():
            compute_log.append((stage, key))
            return expected

        artifact, _hit = cache.resolve(stage, key, compute)
        if artifact != expected:
            errors.append(
                f"thread {thread_index} got {artifact!r} for ({stage}, {key})"
            )


def test_shared_cache_is_consistent_under_contention():
    cache = StageCache(max_entries=4096)
    errors: list[str] = []
    compute_log: list[tuple[str, str]] = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, i, errors, compute_log))
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # No thread ever observed a wrong/torn artifact.
    assert errors == []

    # Counter consistency: every resolve is exactly one lookup, and the
    # per-stage tallies add up to the total traffic.
    total_lookups = sum(s.lookups for s in cache.stats.values())
    assert total_lookups == THREADS * ROUNDS

    # Every distinct (stage, key) is cached and correct afterwards.
    for round_index in range(25):
        for stage_index in range(3):
            stage = f"stage-{stage_index}"
            key = f"key-{round_index % 25}"
            value, hit = cache.lookup(stage, key)
            if hit:
                assert value == f"{stage}:{key}:artifact"

    # Duplicate computes are allowed but bounded: never more than one
    # per (thread, distinct key), and far fewer than the lookups.
    assert len(compute_log) <= THREADS * 75
    assert len(compute_log) < total_lookups


def test_eviction_bound_holds_under_contention():
    cache = StageCache(max_entries=16)
    stop = threading.Event()
    errors = []

    def writer(offset):
        index = 0
        while not stop.is_set():
            key = f"k{offset}-{index % 40}"
            value, _ = cache.resolve("stage", key, lambda k=key: f"v:{k}")
            if value != f"v:{key}":
                errors.append((key, value))
            if len(cache) > 16:
                errors.append(("overflow", len(cache)))
            index += 1
            if index >= 500:
                break

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop.set()

    assert errors == []
    assert len(cache) <= 16
    snapshot = cache.snapshot()
    stats = snapshot["stage"]
    assert stats["hits"] + stats["misses"] == 6 * 500


def test_clear_and_invalidate_race_free():
    cache = StageCache(max_entries=512)
    done = threading.Event()
    errors = []

    def resolver():
        index = 0
        while not done.is_set():
            key = f"k{index % 50}"
            value, _ = cache.resolve("a", key, lambda k=key: f"v:{k}")
            if value != f"v:{key}":
                errors.append(value)
            index += 1

    def invalidator():
        for _ in range(200):
            cache.invalidate_stage("a")
        done.set()

    threads = [threading.Thread(target=resolver) for _ in range(4)]
    threads.append(threading.Thread(target=invalidator))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
