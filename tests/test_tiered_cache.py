"""Tiered StageCache: memory -> disk -> compute with per-tier accounting."""

import threading

import pytest

from repro.engine import (
    StageCache,
    StageCounter,
    StageEvent,
    TIER_COMPUTE,
    TIER_DISK,
    TIER_MEMORY,
)
from repro.engine.artifacts import ClassificationArtifact
from repro.engine.cache import StageStats
from repro.persist import ArtifactStore

STAGE = "classify"


def _artifact(key: str) -> ClassificationArtifact:
    return ClassificationArtifact(key=key, label=f"label-{key}", confidence=0.5)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestTierResolution:
    def test_memory_hit(self, store):
        cache = StageCache(disk_store=store)
        cache.store(STAGE, "k", _artifact("k"))
        artifact, tier = cache.lookup_tier(STAGE, "k")
        assert tier == TIER_MEMORY
        assert artifact.label == "label-k"

    def test_disk_hit_after_process_restart(self, store):
        # A second cache over the same store models a restarted process:
        # empty memory, warm disk.
        StageCache(disk_store=store).store(STAGE, "k", _artifact("k"))
        fresh = StageCache(disk_store=store)
        artifact, tier = fresh.lookup_tier(STAGE, "k")
        assert tier == TIER_DISK
        assert artifact.label == "label-k"

    def test_disk_hit_promotes_into_memory(self, store):
        StageCache(disk_store=store).store(STAGE, "k", _artifact("k"))
        fresh = StageCache(disk_store=store)
        fresh.lookup_tier(STAGE, "k")
        _, tier = fresh.lookup_tier(STAGE, "k")
        assert tier == TIER_MEMORY
        assert fresh.stats[STAGE].disk_hits == 1
        assert fresh.stats[STAGE].memory_hits == 1

    def test_full_miss(self, store):
        cache = StageCache(disk_store=store)
        artifact, tier = cache.lookup_tier(STAGE, "nope")
        assert artifact is None
        assert tier == TIER_COMPUTE
        assert cache.stats[STAGE].misses == 1

    def test_resolve_tier_computes_once_then_serves_memory(self, store):
        cache = StageCache(disk_store=store)
        calls = []

        def compute():
            calls.append(1)
            return _artifact("k")

        _, first = cache.resolve_tier(STAGE, "k", compute)
        _, second = cache.resolve_tier(STAGE, "k", compute)
        assert (first, second) == (TIER_COMPUTE, TIER_MEMORY)
        assert len(calls) == 1

    def test_compute_writes_through_to_disk(self, store):
        cache = StageCache(disk_store=store)
        cache.resolve_tier(STAGE, "k", lambda: _artifact("k"))
        assert (STAGE, "k") in store

    def test_eviction_then_disk_rehit(self, store):
        # Memory LRU evicts "a"; the disk tier still serves it.
        cache = StageCache(max_entries=1, disk_store=store)
        cache.store(STAGE, "a", _artifact("a"))
        cache.store(STAGE, "b", _artifact("b"))
        assert (STAGE, "a") not in cache
        artifact, tier = cache.lookup_tier(STAGE, "a")
        assert tier == TIER_DISK
        assert artifact.label == "label-a"

    def test_without_disk_store_behaves_as_before(self):
        cache = StageCache(max_entries=1)
        cache.store(STAGE, "a", _artifact("a"))
        cache.store(STAGE, "b", _artifact("b"))
        artifact, tier = cache.lookup_tier(STAGE, "a")
        assert (artifact, tier) == (None, TIER_COMPUTE)


class TestInvalidation:
    def test_clear_drops_memory_not_disk(self, store):
        cache = StageCache(disk_store=store)
        cache.store(STAGE, "k", _artifact("k"))
        cache.clear()
        assert len(cache) == 0
        _, tier = cache.lookup_tier(STAGE, "k")
        assert tier == TIER_DISK

    def test_invalidate_stage_drops_memory_not_disk(self, store):
        cache = StageCache(disk_store=store)
        cache.store(STAGE, "k", _artifact("k"))
        cache.store("other", "k", _artifact("k"))
        assert cache.invalidate_stage(STAGE) == 1
        assert (STAGE, "k") not in cache
        assert ("other", "k") in cache
        _, tier = cache.lookup_tier(STAGE, "k")
        assert tier == TIER_DISK


class TestAccounting:
    def test_hits_property_sums_tiers(self):
        stats = StageStats(memory_hits=3, disk_hits=2, misses=5)
        assert stats.hits == 5
        assert stats.lookups == 10
        assert stats.hit_rate == 0.5

    def test_snapshot_reports_per_tier(self, store):
        StageCache(disk_store=store).store(STAGE, "k", _artifact("k"))
        fresh = StageCache(disk_store=store)
        fresh.lookup_tier(STAGE, "k")   # disk
        fresh.lookup_tier(STAGE, "k")   # memory
        fresh.lookup_tier(STAGE, "x")   # miss
        assert fresh.snapshot() == {
            STAGE: {
                "hits": 2,
                "memory_hits": 1,
                "disk_hits": 1,
                "misses": 1,
                "hit_rate": 2 / 3,
            }
        }


class TestEventsAndCounter:
    def test_event_tier_defaults_preserve_old_call_sites(self):
        assert StageEvent("s", "k", cache_hit=True).tier == TIER_MEMORY
        assert StageEvent("s", "k", cache_hit=False).tier == TIER_COMPUTE
        assert StageEvent("s", "k", True, tier=TIER_DISK).tier == TIER_DISK

    def test_counter_breaks_out_disk_hits(self):
        counter = StageCounter()
        counter(StageEvent("s", "k1", cache_hit=False))
        counter(StageEvent("s", "k1", cache_hit=True))
        counter(StageEvent("s", "k1", True, tier=TIER_DISK))
        assert counter.executions == {"s": 1}
        assert counter.hits == {"s": 2}
        assert counter.disk_hits == {"s": 1}
        assert counter.total("s") == 3
        counter.reset()
        assert counter.disk_hits == {}


class TestConcurrency:
    def test_threads_racing_through_disk_tier(self, store):
        # Many threads resolving the same keys over a shared disk tier
        # must neither crash nor corrupt the store.
        cache = StageCache(max_entries=4, disk_store=store)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for round_number in range(20):
                    key = f"k{round_number % 8}"
                    artifact, _ = cache.resolve_tier(
                        STAGE, key, lambda k=key: _artifact(k)
                    )
                    assert artifact.label == f"label-{key}"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.counters()["errors"] == 0
        for round_number in range(8):
            key = f"k{round_number}"
            assert store.get(STAGE, key).label == f"label-{key}"
