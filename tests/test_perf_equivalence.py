"""Bit/rounding-equivalence of the vectorised kernels vs scalar refs.

Every hot path that was vectorised keeps its original scalar
implementation in-tree as ``_reference_*``; these tests pin the batched
implementations against them across dtypes, odd/even lengths and all
filter banks, so a future "optimisation" cannot silently change results.
"""

import numpy as np
import pytest

from repro.channel.materials import default_catalog
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.collector import DataCollector, SessionConfig
from repro.csi.simulator import CsiSimulator
from repro.dsp.stats import (
    angular_spread_deg,
    angular_spread_deg_axis,
    circular_mean,
    circular_mean_axis,
    mad,
    mad_axis,
    robust_sigma,
    robust_sigma_axis,
)
from repro.dsp.wavelet import (
    FFT_LENGTH_THRESHOLD,
    _reference_iswt,
    _reference_swt,
    available_wavelets,
    get_wavelet,
    iswt,
    swt,
)
from repro.dsp.wavelet_denoise import SpatiallySelectiveDenoiser
from repro.experiments.datasets import (
    collect_dataset,
    split_dataset,
    standard_scene,
)
from repro.ml.multiclass import OneVsOneSVC
from repro.ml.svm import BinarySVC

_CATALOG = default_catalog()


# ----------------------------------------------------------------------
# Wavelet transform
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", available_wavelets())
@pytest.mark.parametrize("length", [37, 64])
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_swt_iswt_match_reference(name, length, dtype):
    wavelet = get_wavelet(name)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(length).astype(dtype)

    approx, details = swt(x, wavelet)
    ref_approx, ref_details = _reference_swt(x, wavelet)
    assert np.allclose(approx, ref_approx, rtol=0, atol=1e-9)
    assert len(details) == len(ref_details)
    for detail, ref_detail in zip(details, ref_details):
        assert np.allclose(detail, ref_detail, rtol=0, atol=1e-9)

    reconstructed = iswt(approx, details, wavelet)
    ref_reconstructed = _reference_iswt(ref_approx, ref_details, wavelet)
    assert np.allclose(reconstructed, ref_reconstructed, rtol=0, atol=1e-9)


@pytest.mark.parametrize("name", available_wavelets())
def test_swt_1d_short_path_bit_exact(name):
    """Below the FFT threshold the 1-D transform is bit-identical.

    Both paths run the same index-matrix matmul, so the iterative
    denoiser sees exactly the coefficients the scalar pipeline saw.
    """
    wavelet = get_wavelet(name)
    rng = np.random.default_rng(8)
    x = rng.standard_normal(100)
    approx, details = swt(x, wavelet)
    ref_approx, ref_details = _reference_swt(x, wavelet)
    assert np.array_equal(approx, ref_approx)
    for detail, ref_detail in zip(details, ref_details):
        assert np.array_equal(detail, ref_detail)
    assert np.array_equal(
        iswt(approx, details, wavelet),
        _reference_iswt(ref_approx, ref_details, wavelet),
    )


def test_denoiser_1d_bit_exact_with_reference():
    """1-D denoise == _reference_denoise exactly, spikes and all.

    The extract-and-repeat loop compares coefficients with exact
    ``>=``, so anything short of bit-equality can flip a mask and move
    the output by a whole coefficient.
    """
    rng = np.random.default_rng(9)
    denoiser = SpatiallySelectiveDenoiser()
    for _ in range(5):
        x = 1.0 + 0.05 * np.sin(np.arange(128) / 7.0)
        x += 0.01 * rng.standard_normal(128)
        spikes = rng.random(128) < 0.05
        x[spikes] += rng.standard_normal(int(spikes.sum())) * 2.0
        assert np.array_equal(
            denoiser.denoise(x), denoiser._reference_denoise(x)
        )


def test_swt_fft_path_matches_reference():
    """Above the FFT length threshold the spectral path takes over."""
    length = FFT_LENGTH_THRESHOLD + 5  # odd, and firmly on the FFT path
    wavelet = get_wavelet("db3")
    rng = np.random.default_rng(2)
    x = rng.standard_normal(length)
    approx, details = swt(x, wavelet, level=2)
    ref_approx, ref_details = _reference_swt(x, wavelet, level=2)
    assert np.allclose(approx, ref_approx, rtol=0, atol=1e-9)
    for detail, ref_detail in zip(details, ref_details):
        assert np.allclose(detail, ref_detail, rtol=0, atol=1e-9)
    reconstructed = iswt(approx, details, wavelet)
    assert np.allclose(reconstructed, x, rtol=0, atol=1e-8)


@pytest.mark.parametrize("name", ["db2", "sym4"])
def test_swt_2d_matches_per_column(name):
    """Batched columns agree with 1-D calls.

    Bit-exact for the denoiser's db2 bank; the 8-tap banks may differ by
    1-2 ulp at some lengths (BLAS row-dot kernel choice depends on the
    matrix shape), so those are pinned at 1e-12.
    """
    wavelet = get_wavelet(name)
    exact = name == "db2"
    rng = np.random.default_rng(3)
    x = rng.standard_normal((50, 4))
    approx, details = swt(x, wavelet)
    for k in range(x.shape[1]):
        col_approx, col_details = swt(x[:, k], wavelet)
        assert np.allclose(
            approx[:, k], col_approx, rtol=0, atol=0 if exact else 1e-12
        )
        for detail, col_detail in zip(details, col_details):
            assert np.allclose(
                detail[:, k], col_detail, rtol=0, atol=0 if exact else 1e-12
            )


# ----------------------------------------------------------------------
# Spatially-selective denoiser
# ----------------------------------------------------------------------


@pytest.mark.parametrize("length", [41, 96])
def test_denoiser_matches_scalar_reference(length):
    rng = np.random.default_rng(4)
    x = 1.0 + 0.05 * np.sin(
        2 * np.pi * np.arange(length)[:, None] / 32.0 + np.arange(6)
    )
    x += 0.01 * rng.standard_normal(x.shape)
    x[5, 0] += 30.0
    x[length // 2, 3] -= 30.0

    denoiser = SpatiallySelectiveDenoiser()
    batched = denoiser.denoise(x)
    for k in range(x.shape[1]):
        reference = denoiser._reference_denoise(x[:, k])
        assert np.allclose(batched[:, k], reference, rtol=0, atol=1e-9)


# ----------------------------------------------------------------------
# Axis-aware circular / robust statistics
# ----------------------------------------------------------------------


def test_axis_stats_match_scalar_loops():
    rng = np.random.default_rng(5)
    angles = rng.uniform(-np.pi, np.pi, size=(40, 7))
    values = rng.standard_normal((40, 7))

    for k in range(angles.shape[1]):
        assert circular_mean_axis(angles, axis=0)[k] == pytest.approx(
            circular_mean(angles[:, k]), abs=1e-12
        )
        assert angular_spread_deg_axis(angles, axis=0)[k] == pytest.approx(
            angular_spread_deg(angles[:, k]), abs=1e-9
        )
        assert mad_axis(values, axis=0)[k] == pytest.approx(
            mad(values[:, k]), abs=1e-12
        )
        assert robust_sigma_axis(values, axis=0)[k] == pytest.approx(
            robust_sigma(values[:, k]), abs=1e-12
        )


# ----------------------------------------------------------------------
# CSI simulator
# ----------------------------------------------------------------------


@pytest.mark.parametrize("environment", ["lab", "hall"])
@pytest.mark.parametrize("material_name", [None, "pure_water"])
def test_capture_matches_reference(environment, material_name):
    """Vectorised capture preserves the seed -> trace mapping.

    Both implementations consume the generator stream in the same order,
    so with equal seeds they must agree to reassociation-level rounding.
    """
    material = _CATALOG.get(material_name) if material_name else None
    scene = standard_scene(environment)
    new = CsiSimulator(scene, rng=7).capture(material, 12).matrix()
    ref = (
        CsiSimulator(scene, rng=7)._reference_capture(material, 12).matrix()
    )
    scale = float(np.max(np.abs(ref)))
    assert np.allclose(new, ref, rtol=0, atol=1e-9 * scale)


def test_capture_is_seed_reproducible():
    """Same seed, same calls -> bit-identical traces."""
    scene = standard_scene("lab")
    water = _CATALOG.get("pure_water")
    first = CsiSimulator(scene, rng=11).capture(water, 8).matrix()
    second = CsiSimulator(scene, rng=11).capture(water, 8).matrix()
    assert np.array_equal(first, second)


def test_target_multiplier_matches_reference():
    scene = standard_scene("lab")
    simulator = CsiSimulator(scene, rng=0)
    water = _CATALOG.get("pure_water")
    new = simulator.target_multiplier(water)
    ref = simulator._reference_target_multiplier(water)
    scale = float(np.max(np.abs(ref)))
    assert np.allclose(new, ref, rtol=0, atol=1e-9 * scale)


# ----------------------------------------------------------------------
# SMO training
# ----------------------------------------------------------------------


def _blobs(seed, n=40, gap=3.0):
    rng = np.random.default_rng(seed)
    half = n // 2
    x = np.vstack(
        [
            rng.normal(0.0, 1.0, size=(half, 3)),
            rng.normal(gap, 1.0, size=(n - half, 3)),
        ]
    )
    y = np.concatenate([-np.ones(half), np.ones(n - half)])
    return x, y


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_smo_error_cache_matches_reference(seed):
    """Cached-margin SMO agrees with the per-element reference.

    Pinned in the repo's operating regime (RBF, C=10, separable
    classes): the vectorised error cache reassociates floating-point
    sums, so individual multipliers can differ at rounding level, but
    the trained machines must make identical predictions.
    """
    x, y = _blobs(seed)
    x_test, _ = _blobs(seed + 100)

    new_svc = BinarySVC(seed=seed).fit(x, y)
    ref_svc = BinarySVC(seed=seed)._reference_fit(x, y)

    assert np.array_equal(new_svc.predict(x), ref_svc.predict(x))
    assert np.array_equal(new_svc.predict(x_test), ref_svc.predict(x_test))
    assert np.max(
        np.abs(
            new_svc.decision_function(x_test)
            - ref_svc.decision_function(x_test)
        )
    ) < 0.5


def test_one_vs_one_shared_gram_matches_per_machine():
    """Sliced shared-Gram training equals per-machine kernel evaluation."""
    rng = np.random.default_rng(6)
    x = np.vstack(
        [rng.normal(c * 3.0, 1.0, size=(12, 3)) for c in range(3)]
    )
    y = np.repeat(np.arange(3), 12)
    x_test = rng.normal(1.5, 2.0, size=(20, 3))

    shared = OneVsOneSVC(seed=0).fit(x, y)
    for (a, b), machine in shared._machines.items():
        mask = (y == shared.classes_[a]) | (y == shared.classes_[b])
        labels = np.where(y[mask] == shared.classes_[a], 1.0, -1.0)
        independent = BinarySVC(seed=0).fit(x[mask], labels)
        assert np.array_equal(
            machine.predict(x_test), independent.predict(x_test)
        )
    assert np.array_equal(
        shared.predict(x), y.astype(shared.classes_.dtype)
    )


# ----------------------------------------------------------------------
# Streaming extraction vs the batch pipeline
# ----------------------------------------------------------------------

#: Documented streaming-vs-batch Omega-bar tolerance.  The streaming
#: path denoises amplitudes in overlap-added windows instead of one
#: full-trace SWT pass, which perturbs ``-ln DeltaPsi`` by a small
#: absolute amount.  For strong absorbers (water, pepsi) that is well
#: under 1% of Omega-bar; a weakly-absorbing target like oil has
#: ``-ln DeltaPsi`` near the denoiser's noise floor, so its Omega-bar
#: moves by up to ~0.013 in absolute terms (observed across seeds).
#: The bound is therefore relative-or-absolute, with the absolute
#: floor kept below the tightest inter-material spacing in the catalog
#: (water vs pepsi, 0.019) -- the scale that label stability actually
#: requires, and the label equality below is the exact check.
STREAMING_OMEGA_RTOL = 0.05
STREAMING_OMEGA_ATOL = 0.015


@pytest.mark.filterwarnings(
    "ignore::repro.csi.quality.DegradedTraceWarning"
)
@pytest.mark.parametrize("material_name", ["pure_water", "pepsi", "oil"])
def test_streaming_omega_within_tolerance_of_batch(material_name):
    """Final streaming Omega-bar tracks batch; predictions identical.

    The acceptance contract of the streaming subsystem: same gamma
    branch, Omega-bar within the documented rel/abs tolerance, and the
    classified label exactly equal to the batch ``identify`` output on
    every session of the equivalence sweep.
    """
    materials = [_CATALOG.get(n) for n in ("pure_water", "pepsi", "oil")]
    scene = standard_scene("lab")
    dataset = collect_dataset(
        materials, scene=scene, repetitions=4, num_packets=8, seed=0
    )
    train, _ = split_dataset(dataset)
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)

    collector = DataCollector(scene, rng=13)
    session = collector.collect(
        _CATALOG.get(material_name), SessionConfig(num_packets=48)
    )

    batch = wimi.extract(session)
    stream = wimi.clone_view().streaming_extractor(
        scene=session.scene, material_name=session.material_name
    )
    stream.push_baseline(session.baseline)
    stream.push_target(session.target)
    result = stream.finalize()

    assert result.estimate.gamma == batch.measurements[0].gamma
    assert result.estimate.omega == pytest.approx(
        batch.measurements[0].omega_mean,
        rel=STREAMING_OMEGA_RTOL,
        abs=STREAMING_OMEGA_ATOL,
    )
    assert result.label == wimi.identify(session)


# ----------------------------------------------------------------------
# float32 pipeline vs the float64 pipeline
# ----------------------------------------------------------------------

#: Documented float32-vs-float64 Omega-bar tolerance (DESIGN.md §14).
#: The reduced-precision path rounds intermediates to ~7 significant
#: digits; through the denoiser's extract-and-repeat loop a coefficient
#: can land on the other side of a keep/discard threshold, so the bound
#: is looser than bare rounding but far inside the inter-material
#: spacing that label stability requires (water vs pepsi: 0.019).  The
#: acceptance contract is the same shape as the streaming one: omega
#: within tolerance, labels exactly equal.
FLOAT32_OMEGA_RTOL = 0.02
FLOAT32_OMEGA_ATOL = 0.005


@pytest.mark.filterwarnings(
    "ignore::repro.csi.quality.DegradedTraceWarning"
)
def test_float32_pipeline_matches_float64():
    """Same dataset through both precisions: labels exact, omega close.

    The capture is collected once at the collector's default precision,
    so the only difference between the two runs is
    ``WiMiConfig.compute_precision`` -- the tentpole's guarantee that
    dropping the hot paths to float32 never changes an identification.
    """
    from repro.core.config import WiMiConfig

    materials = [_CATALOG.get(n) for n in ("pure_water", "pepsi", "oil")]
    dataset = collect_dataset(
        materials,
        scene=standard_scene("lab"),
        repetitions=4,
        num_packets=8,
        seed=0,
    )
    train, test = split_dataset(dataset)
    refs = theory_reference_omegas(materials)

    wimi64 = WiMi(refs, WiMiConfig(compute_precision="float64"))
    wimi32 = WiMi(refs, WiMiConfig(compute_precision="float32"))
    wimi64.fit(train)
    wimi32.fit(train)

    labels64 = wimi64.identify_batch(test)
    labels32 = wimi32.identify_batch(test)
    assert labels32 == labels64

    for session in test:
        omega64 = wimi64.extract(session).omega_mean
        omega32 = wimi32.extract(session).omega_mean
        assert omega32 == pytest.approx(
            omega64, rel=FLOAT32_OMEGA_RTOL, abs=FLOAT32_OMEGA_ATOL
        )
