"""Chaos soak harness: report plumbing fast, the full soak when slow.

The real chaos schedule spawns worker processes and takes minutes, so
it runs under ``REPRO_SLOW=1`` (the CI ``soak`` job); the report
contract -- schema, gate accounting, rendering -- is cheap and always
runs.
"""

import json

import pytest

from repro.experiments import soakbench


def _synthetic_results(**gate_overrides) -> dict:
    gates = {
        "zero_lost": True,
        "predictions_identical": True,
        "expired_admission": True,
        "expired_dequeue": True,
        "expired_stage": True,
        "breaker_opened": True,
        "breaker_closed": True,
        "shed": True,
        "hedged": True,
        "redelivered": True,
        "restarted": True,
        "quarantined": True,
        "capture_fault_typed": True,
    }
    gates.update(gate_overrides)
    return {
        "seed": 1,
        "materials": ["pure_water", "pepsi", "oil"],
        "workers": 2,
        "distinct_sessions": 18,
        "phases": {"capture_fault": {"typed_failure": True}},
        "counters": {
            "cluster": {
                "requests.shed": 26, "cluster.hedges": 45,
                "cluster.redeliveries": 4, "cluster.restarts": 4,
                "breaker.opened": 1, "breaker.closed": 1,
                "breaker.diverted": 11, "deadline.expired_admission": 4,
            },
            "worker_merged": {
                "deadline.expired_dequeue": 9, "deadline.expired_stage": 12,
            },
            "store_quarantined": 375.0,
        },
        "gates": gates,
        "gates_passed": all(gates.values()),
    }


class TestReportContract:
    def test_write_report_stamps_schema_and_benchmark(self, tmp_path):
        path = tmp_path / "SOAK.json"
        report = soakbench.write_report(path, _synthetic_results())
        assert report["schema"] == 1
        assert report["benchmark"] == "chaos-soak"
        on_disk = json.loads(path.read_text())
        assert on_disk == report
        assert on_disk["gates_passed"] is True

    def test_render_mentions_every_mechanism(self):
        text = soakbench.render_report(_synthetic_results())
        for needle in (
            "sheds 26", "hedges 45", "redeliveries 4", "restarts 4",
            "opened 1", "closed 1", "quarantined: 375",
            "admission 4", "dequeue 9", "stage 12",
            "all gates passed",
        ):
            assert needle in text

    def test_render_names_the_failed_gates(self):
        text = soakbench.render_report(
            _synthetic_results(breaker_opened=False, hedged=False)
        )
        assert "GATES FAILED" in text
        assert "breaker_opened" in text and "hedged" in text
        assert "all gates passed" not in text


@pytest.mark.slow
class TestChaosSoak:
    def test_smoke_soak_passes_every_gate(self, tmp_path):
        results = soakbench.run_soak_bench(
            seed=1,
            repetitions=soakbench.SMOKE_REPETITIONS,
            store_root=tmp_path / "soak",
        )
        assert results["gates_passed"], results["gates"]
        counters = results["counters"]["cluster"]
        assert counters["breaker.opened"] > 0
        assert counters["cluster.hedges"] > 0
        assert counters["requests.shed"] > 0
        assert results["counters"]["store_quarantined"] > 0
