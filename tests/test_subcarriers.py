"""Tests for the 802.11n subcarrier layout."""

import numpy as np
import pytest

from repro.csi.subcarriers import (
    INTEL5300_NUM_SUBCARRIERS,
    SUBCARRIER_SPACING_HZ,
    intel5300_subcarrier_indices,
    subcarrier_frequencies,
    validate_subcarrier_selection,
)


class TestIndices:
    def test_thirty_reported(self):
        assert intel5300_subcarrier_indices().size == INTEL5300_NUM_SUBCARRIERS

    def test_symmetric_band_edges(self):
        idx = intel5300_subcarrier_indices()
        assert idx[0] == -28
        assert idx[-1] == 28

    def test_no_dc_subcarrier(self):
        assert 0 not in intel5300_subcarrier_indices()

    def test_strictly_increasing(self):
        idx = intel5300_subcarrier_indices()
        assert np.all(np.diff(idx) > 0)


class TestFrequencies:
    def test_centre_and_span(self):
        freqs = subcarrier_frequencies(5.32e9)
        assert freqs.min() == pytest.approx(5.32e9 - 28 * SUBCARRIER_SPACING_HZ)
        assert freqs.max() == pytest.approx(5.32e9 + 28 * SUBCARRIER_SPACING_HZ)

    def test_band_width_is_17_5_mhz(self):
        freqs = subcarrier_frequencies(5.32e9)
        assert freqs.max() - freqs.min() == pytest.approx(56 * 312.5e3)

    def test_custom_indices(self):
        freqs = subcarrier_frequencies(5.0e9, indices=np.array([-1, 1]))
        np.testing.assert_allclose(
            freqs, [5.0e9 - 312.5e3, 5.0e9 + 312.5e3]
        )

    def test_invalid_carrier_rejected(self):
        with pytest.raises(ValueError, match="carrier"):
            subcarrier_frequencies(0.0)

    def test_invalid_spacing_rejected(self):
        with pytest.raises(ValueError, match="spacing"):
            subcarrier_frequencies(5e9, spacing_hz=0.0)


class TestSelectionValidation:
    def test_valid_selection(self):
        assert validate_subcarrier_selection([0, 5, 29]) == [0, 5, 29]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_subcarrier_selection([1, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_subcarrier_selection([30])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_subcarrier_selection([])
