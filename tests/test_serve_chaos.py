"""Chaos tests: the serving layer under injected stage faults.

Complements ``test_serve_service.py``'s generic fault-isolation tests
with the robustness-PR scenarios: fault *counters* in the metrics
snapshot, deterministic :class:`CorruptTraceError` fast-fail, real
fault-injected captures flowing through the production runner, and the
queue draining (never wedging) after a fault burst.
"""

import threading
import time

import pytest

from repro.channel.materials import default_catalog
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.faults import AntennaDropout, SubcarrierErasure, inject_session
from repro.csi.quality import CorruptTraceError, DegradedTraceWarning
from repro.experiments.datasets import (
    collect_dataset,
    split_dataset,
    standard_scene,
)
from repro.serve import DeadlineExceededError, IdentificationService, ServiceConfig
from repro.serve.workers import default_runner


@pytest.fixture(scope="module")
def deployment():
    catalog = default_catalog()
    materials = [catalog.get(n) for n in ("pure_water", "pepsi", "oil")]
    dataset = collect_dataset(
        materials, scene=standard_scene("lab"), repetitions=4,
        num_packets=6, seed=2,
    )
    train, test = split_dataset(dataset)
    wimi = WiMi(theory_reference_omegas(materials))
    wimi.fit(train)
    return wimi, train, test


class TestFaultCounters:
    def test_fault_on_first_attempt_retried_and_counted(self, deployment):
        wimi, _, test = deployment
        failures = {"remaining": 1}
        lock = threading.Lock()

        def flaky(view, sessions):
            with lock:
                if failures["remaining"] > 0:
                    failures["remaining"] -= 1
                    raise TimeoutError("injected stage fault")
            return default_runner(view, sessions)

        config = ServiceConfig(
            num_workers=1, max_batch_size=1, retry_budget=2,
            backoff_base_s=0.001,
        )
        with IdentificationService(wimi, config, runner=flaky) as service:
            handle = service.submit(test[0])
            assert handle.result(timeout=30.0) == wimi.identify(test[0])
            counters = service.snapshot()["counters"]
        # The injected fault is visible by type, and the second attempt
        # (the free isolated re-run after a batch fault) recovered.
        assert counters["faults.total"] == 1
        assert counters["faults.TimeoutError"] == 1
        assert counters["requests.failed"] == 0
        assert handle.attempts == 2

    def test_batch_isolation_counted(self, deployment):
        wimi, _, test = deployment
        poisoned = test[0]

        def runner(view, sessions):
            if any(s is poisoned for s in sessions):
                raise ValueError("poisoned co-rider")
            return default_runner(view, sessions)

        config = ServiceConfig(
            num_workers=1, max_batch_size=8, retry_budget=0,
            backoff_base_s=0.0,
        )
        with IdentificationService(wimi, config, runner=runner) as service:
            handles = service.submit_many([poisoned] + test[1:])
            with pytest.raises(ValueError):
                handles[0].result(timeout=30.0)
            for handle in handles[1:]:
                assert handle.result(timeout=30.0)
            counters = service.snapshot()["counters"]
        assert counters["faults.batch_isolated"] >= 1
        assert counters["faults.ValueError"] >= 1
        assert counters["faults.total"] >= 2  # batch fault + isolated retry

    def test_zero_traffic_snapshot_has_fault_counter(self, deployment):
        wimi, _, _ = deployment
        with IdentificationService(wimi) as service:
            counters = service.snapshot()["counters"]
        assert counters["faults.total"] == 0


class TestCorruptTraceFastFail:
    def test_corrupt_error_is_not_retried(self, deployment):
        wimi, _, test = deployment
        attempts = {"count": 0}
        lock = threading.Lock()

        def rejecting(view, sessions):
            with lock:
                attempts["count"] += 1
            raise CorruptTraceError("structurally broken capture")

        config = ServiceConfig(
            num_workers=1, max_batch_size=1, retry_budget=5,
            backoff_base_s=0.001,
        )
        with IdentificationService(wimi, config, runner=rejecting) as service:
            handle = service.submit(test[0])
            with pytest.raises(CorruptTraceError):
                handle.result(timeout=30.0)
            counters = service.snapshot()["counters"]
        # Deterministic rejection: the budget of 5 retries is not burned.
        # (Batch attempt + one isolated attempt, nothing more.)
        assert attempts["count"] == 2
        assert counters["requests.retries"] == 0
        assert counters["faults.CorruptTraceError"] == 2
        assert counters["requests.failed"] == 1

    def test_real_corrupt_capture_rejected_through_production_runner(
        self, deployment
    ):
        wimi, _, test = deployment
        # Kill every subcarrier and two antennas: below any threshold.
        hopeless = inject_session(
            test[0],
            (
                AntennaDropout(antenna=0, mode="nan"),
                AntennaDropout(antenna=1, mode="nan"),
                SubcarrierErasure(0.9, scope="column"),
            ),
            seed=0,
        )
        config = ServiceConfig(num_workers=1, retry_budget=3)
        with IdentificationService(wimi, config) as service:
            bad = service.submit(hopeless)
            good = service.submit(test[1])
            with pytest.raises(CorruptTraceError, match="quality gate"):
                bad.result(timeout=30.0)
            assert good.result(timeout=30.0) == wimi.identify(test[1])
            counters = service.snapshot()["counters"]
        assert counters["faults.CorruptTraceError"] >= 1
        assert counters["requests.retries"] == 0

    def test_degraded_capture_still_served(self, deployment):
        wimi, _, test = deployment
        limping = inject_session(
            test[0], (AntennaDropout(antenna=0, mode="nan"),), seed=0
        )
        with IdentificationService(wimi) as service:
            with pytest.warns(DegradedTraceWarning):
                handle = service.submit(limping)
                label = handle.result(timeout=30.0)
            counters = service.snapshot()["counters"]
        assert label in ("pure_water", "pepsi", "oil")
        assert counters["requests.completed"] == 1
        assert counters["requests.failed"] == 0


class TestQueueNeverWedges:
    def test_deadline_expiry_during_backoff_drains_queue(self, deployment):
        wimi, _, test = deployment

        def always_down(view, sessions):
            raise TimeoutError("backend down")

        # Long backoff: the doomed request's deadline expires while the
        # worker sleeps between its retries.
        config = ServiceConfig(
            num_workers=1, max_batch_size=1, retry_budget=3,
            backoff_base_s=0.05,
        )
        with IdentificationService(wimi, config, runner=always_down) as service:
            doomed = service.submit(test[0], timeout=0.02)
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30.0)
            counters = service.snapshot()["counters"]
            assert counters["requests.expired"] == 1
            assert service.metrics.gauge("inflight").value == 0
            assert service.metrics.gauge("workers.alive").value == 1

    def test_service_keeps_serving_after_fault_burst(self, deployment):
        wimi, _, test = deployment
        down_until = time.monotonic() + 0.05

        def intermittent(view, sessions):
            if time.monotonic() < down_until:
                raise ConnectionError("burst outage")
            return default_runner(view, sessions)

        config = ServiceConfig(
            num_workers=2, max_batch_size=2, retry_budget=0,
            backoff_base_s=0.0,
        )
        with IdentificationService(wimi, config, runner=intermittent) as service:
            burst = service.submit_many(test * 2)
            outcomes = []
            for handle in burst:
                try:
                    outcomes.append(handle.result(timeout=30.0))
                except ConnectionError:
                    outcomes.append(None)
            # Whatever the burst did, the queue is drained and the
            # service still answers fresh requests correctly.
            assert len(outcomes) == len(test) * 2
            time.sleep(max(0.0, down_until - time.monotonic()))
            follow_up = service.submit_many(test)
            for handle, session in zip(follow_up, test):
                assert handle.result(timeout=30.0) == wimi.identify(session)
            counters = service.snapshot()["counters"]
            assert service.metrics.gauge("inflight").value == 0
        total = (
            counters["requests.completed"]
            + counters["requests.failed"]
            + counters["requests.expired"]
        )
        assert total == counters["requests.submitted"]
