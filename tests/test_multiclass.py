"""Tests for the multiclass SVM wrappers."""

import numpy as np
import pytest

from repro.ml.multiclass import OneVsOneSVC, OneVsRestSVC, SVC


def _three_blobs(n=25, seed=0):
    rng = np.random.default_rng(seed)
    centres = np.array([[0, 0], [6, 0], [0, 6]])
    xs, ys = [], []
    for label, c in zip("abc", centres):
        xs.append(rng.standard_normal((n, 2)) + c)
        ys.extend([label] * n)
    return np.vstack(xs), np.array(ys)


class TestOneVsOne:
    def test_three_classes(self):
        x, y = _three_blobs()
        clf = OneVsOneSVC().fit(x, y)
        assert np.mean(clf.predict(x) == y) >= 0.97

    def test_classes_property(self):
        x, y = _three_blobs()
        clf = OneVsOneSVC().fit(x, y)
        assert set(clf.classes_) == {"a", "b", "c"}

    def test_string_and_preserved_dtype(self):
        x, y = _three_blobs()
        preds = OneVsOneSVC().fit(x, y).predict(x[:3])
        assert all(isinstance(p, str) for p in preds.tolist())

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            OneVsOneSVC().fit(np.zeros((4, 2)), np.array(["a"] * 4))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            OneVsOneSVC().predict(np.zeros((1, 2)))

    def test_svc_alias(self):
        assert SVC is OneVsOneSVC

    def test_linear_kernel_option(self):
        x, y = _three_blobs()
        clf = OneVsOneSVC(kernel="linear").fit(x, y)
        assert np.mean(clf.predict(x) == y) >= 0.95


class TestOneVsRest:
    def test_three_classes(self):
        x, y = _three_blobs()
        clf = OneVsRestSVC().fit(x, y)
        assert np.mean(clf.predict(x) == y) >= 0.95

    def test_agreement_with_ovo_on_easy_data(self):
        x, y = _three_blobs()
        ovo = OneVsOneSVC().fit(x, y).predict(x)
        ovr = OneVsRestSVC().fit(x, y).predict(x)
        assert np.mean(ovo == ovr) >= 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            OneVsRestSVC().predict(np.zeros((1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            OneVsRestSVC().fit(np.zeros((0, 2)), np.array([]))
