"""Integration tests: the full WiMi system."""

import numpy as np
import pytest

from repro.channel.environment import make_environment
from repro.channel.geometry import CylinderTarget, LinkGeometry
from repro.channel.materials import default_catalog
from repro.core.config import WiMiConfig
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.collector import DataCollector
from repro.csi.simulator import SimulationScene

# The simulated int8 CSI quantization legitimately zeroes a
# deep-faded antenna in some deployments, so the quality gate's
# DegradedTraceWarning is expected here; everything else is an error
# (see pyproject filterwarnings).
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.csi.quality.DegradedTraceWarning"
)

CATALOG = default_catalog()
NAMES = ("pure_water", "oil", "soy", "milk")
MATERIALS = [CATALOG.get(n) for n in NAMES]
REFS = theory_reference_omegas(MATERIALS)


@pytest.fixture(scope="module")
def deployment():
    scene = SimulationScene(
        geometry=LinkGeometry(),
        environment=make_environment("lab"),
        target=CylinderTarget(lateral_offset=0.02),
    )
    collector = DataCollector(scene, rng=5)
    dataset = {
        m.name: collector.collect_many(m, 8) for m in MATERIALS
    }
    return collector, dataset


class TestConfigValidation:
    def test_defaults_are_paper_choices(self):
        config = WiMiConfig()
        assert config.num_good_subcarriers == 4
        assert config.classifier == "svm"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            WiMiConfig(num_good_subcarriers=0)
        with pytest.raises(ValueError):
            WiMiConfig(antenna_pair=(1, 1))
        with pytest.raises(ValueError):
            WiMiConfig(classifier="tree")
        with pytest.raises(ValueError):
            WiMiConfig(gamma_strategy="guess")
        with pytest.raises(ValueError):
            WiMiConfig(num_feature_pairs=0)

    def test_with_overrides(self):
        config = WiMiConfig().with_overrides(knn_k=9)
        assert config.knn_k == 9


class TestCalibration:
    def test_calibrate_fixes_choices(self, deployment):
        _, dataset = deployment
        sessions = [s for group in dataset.values() for s in group]
        wimi = WiMi(REFS)
        wimi.calibrate(sessions)
        assert wimi.calibrated_pair is not None
        assert len(wimi.calibrated_subcarriers) == 4
        assert wimi.calibrated_coarse_pair is not None
        assert wimi.calibrated_coarse_pair not in (
            wimi._feature_pairs or []
        )

    def test_configured_pair_respected(self, deployment):
        _, dataset = deployment
        sessions = [s for group in dataset.values() for s in group]
        wimi = WiMi(REFS, WiMiConfig(antenna_pair=(0, 2)))
        wimi.calibrate(sessions)
        assert wimi.calibrated_pair == (0, 2)

    def test_subcarrier_override_respected(self, deployment):
        _, dataset = deployment
        sessions = [s for group in dataset.values() for s in group]
        wimi = WiMi(REFS, WiMiConfig(subcarrier_override=(1, 2, 3)))
        wimi.calibrate(sessions)
        assert wimi.calibrated_subcarriers == [1, 2, 3]

    def test_empty_calibration_rejected(self):
        with pytest.raises(ValueError, match="calibration session"):
            WiMi(REFS).calibrate([])


class TestEndToEnd:
    def test_fit_and_identify(self, deployment):
        collector, dataset = deployment
        train = [s for group in dataset.values() for s in group[:5]]
        test = [s for group in dataset.values() for s in group[5:]]
        wimi = WiMi(REFS)
        wimi.fit(train)
        assert wimi.is_fitted
        correct = sum(
            wimi.identify(s) == s.material_name for s in test
        )
        # Four well-separated materials: near-perfect in-deployment.
        assert correct / len(test) >= 0.8

    def test_identify_before_fit_raises(self, deployment):
        collector, dataset = deployment
        wimi = WiMi(REFS)
        with pytest.raises(RuntimeError, match="not fitted"):
            wimi.identify(dataset["oil"][0])

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError, match="training session"):
            WiMi(REFS).fit([])

    def test_feature_pairs_count(self, deployment):
        _, dataset = deployment
        sessions = [s for group in dataset.values() for s in group]
        wimi = WiMi(REFS, WiMiConfig(num_feature_pairs=2))
        wimi.calibrate(sessions)
        assert len(wimi._feature_pairs) == 2
        features = wimi.extract(sessions[0])
        assert features.num_blocks == 2

    def test_single_pair_mode(self, deployment):
        _, dataset = deployment
        sessions = [s for group in dataset.values() for s in group]
        wimi = WiMi(REFS, WiMiConfig(num_feature_pairs=1))
        wimi.calibrate(sessions)
        features = wimi.extract(sessions[0])
        assert features.num_blocks == 1

    def test_database_populated_by_fit(self, deployment):
        _, dataset = deployment
        train = [s for group in dataset.values() for s in group[:4]]
        wimi = WiMi(REFS)
        wimi.fit(train)
        assert set(wimi.database.labels) == set(NAMES)
        assert len(wimi.database) == len(train)

    def test_knn_classifier_config(self, deployment):
        _, dataset = deployment
        train = [s for group in dataset.values() for s in group[:5]]
        test = [s for group in dataset.values() for s in group[5:]]
        wimi = WiMi(REFS, WiMiConfig(classifier="knn"))
        wimi.fit(train)
        correct = sum(wimi.identify(s) == s.material_name for s in test)
        assert correct / len(test) >= 0.7
