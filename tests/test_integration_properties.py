"""System-level property and robustness tests.

These exercise claims that span multiple modules: the size independence
of the material feature at pipeline level, graceful degradation on
reduced hardware (two antennas), determinism, and serialisation round
trips through the full identification path.
"""

import numpy as np
import pytest

from repro.channel.environment import make_environment
from repro.channel.geometry import AntennaArray, CylinderTarget, LinkGeometry
from repro.channel.materials import default_catalog
from repro.core.config import WiMiConfig
from repro.core.feature import theory_reference_omegas
from repro.core.pipeline import WiMi
from repro.csi.collector import DataCollector
from repro.csi.io import load_session, save_session
from repro.csi.simulator import SimulationScene
from repro.experiments.runner import run_identification

# The simulated int8 CSI quantization legitimately zeroes a
# deep-faded antenna in some deployments, so the quality gate's
# DegradedTraceWarning is expected here; everything else is an error
# (see pyproject filterwarnings).
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.csi.quality.DegradedTraceWarning"
)

CATALOG = default_catalog()


def _scene(**kwargs):
    defaults = dict(
        geometry=LinkGeometry(),
        environment=make_environment("lab"),
        target=CylinderTarget(lateral_offset=0.02),
    )
    defaults.update(kwargs)
    return SimulationScene(**defaults)


class TestSizeIndependence:
    def test_trained_on_one_size_identifies_another(self):
        """The Fig. 19 premise: the feature survives a container change.

        Train on the 14.3 cm beaker, test on the 11 cm one (same
        deployment seed so the room matches); the size-independent
        feature should keep identification above chance by a wide margin.
        """
        materials = [CATALOG.get(n) for n in ("pure_water", "oil", "soy")]
        refs = theory_reference_omegas(materials)

        big = DataCollector(_scene(), rng=3)
        small = DataCollector(
            _scene(target=CylinderTarget(diameter=0.110, lateral_offset=0.02)),
            rng=3,
        )
        train = [s for m in materials for s in big.collect_many(m, 6)]
        test = [s for m in materials for s in small.collect_many(m, 3)]

        wimi = WiMi(refs)
        wimi.fit(train)
        correct = sum(wimi.identify(s) == s.material_name for s in test)
        assert correct / len(test) >= 0.6  # chance = 1/3


class TestReducedHardware:
    def test_two_antenna_receiver_still_works(self):
        """With p = 2 there is one pair and no coarse pair: the pipeline
        must fall back to single-pair dictionary mode and stay usable on
        well-separated materials."""
        materials = [CATALOG.get(n) for n in ("pure_water", "oil", "soy")]
        refs = theory_reference_omegas(materials)
        scene = _scene(
            geometry=LinkGeometry(array=AntennaArray(num_antennas=2))
        )
        collector = DataCollector(scene, rng=1)
        train = [s for m in materials for s in collector.collect_many(m, 6)]
        test = [s for m in materials for s in collector.collect_many(m, 2)]

        wimi = WiMi(refs)
        wimi.fit(train)
        assert wimi.calibrated_coarse_pair is None
        features = wimi.extract(test[0])
        assert features.num_blocks == 1
        correct = sum(wimi.identify(s) == s.material_name for s in test)
        assert correct / len(test) >= 0.5


class TestDeterminism:
    def test_run_identification_reproducible(self):
        materials = [CATALOG.get(n) for n in ("pure_water", "oil")]
        r1 = run_identification(materials, repetitions=4, num_packets=6, seed=9)
        r2 = run_identification(materials, repetitions=4, num_packets=6, seed=9)
        np.testing.assert_array_equal(r1.confusion.matrix, r2.confusion.matrix)

    def test_different_seeds_differ(self):
        scene = _scene()
        c1 = DataCollector(scene, rng=1).collect(CATALOG.get("milk"))
        c2 = DataCollector(scene, rng=2).collect(CATALOG.get("milk"))
        assert not np.allclose(c1.target.matrix(), c2.target.matrix())


class TestSerialisationRoundTrip:
    def test_identification_survives_npz_roundtrip(self, tmp_path):
        """Features computed from a reloaded session match the original."""
        materials = [CATALOG.get(n) for n in ("pure_water", "oil", "soy")]
        refs = theory_reference_omegas(materials)
        collector = DataCollector(_scene(), rng=4)
        train = [s for m in materials for s in collector.collect_many(m, 5)]
        wimi = WiMi(refs)
        wimi.fit(train)

        session = collector.collect(CATALOG.get("soy"))
        direct = wimi.identify(session)

        path = tmp_path / "session.npz"
        save_session(session, path)
        reloaded = load_session(path)
        assert wimi.identify(reloaded) == direct


class TestGammaEnvelopeFallback:
    def test_envelope_strategy_runs_end_to_end(self):
        materials = [CATALOG.get(n) for n in ("pure_water", "oil", "soy")]
        refs = theory_reference_omegas(materials)
        collector = DataCollector(_scene(), rng=6)
        train = [s for m in materials for s in collector.collect_many(m, 5)]
        test = [s for m in materials for s in collector.collect_many(m, 2)]
        config = WiMiConfig(use_coarse_pair=False, gamma_strategy="envelope")
        wimi = WiMi(refs, config)
        wimi.fit(train)
        correct = sum(wimi.identify(s) == s.material_name for s in test)
        assert correct / len(test) >= 0.5
