"""Tests for trace quality assessment and gating."""

import numpy as np
import pytest

from repro.csi.faults import (
    AgcClipping,
    AntennaDropout,
    DuplicatePackets,
    PacketLoss,
    PacketReorder,
    SubcarrierErasure,
    inject,
)
from repro.csi.model import CsiPacket, CsiTrace
from repro.csi.quality import (
    CorruptTraceError,
    DegradedTraceWarning,
    QualityThresholds,
    assess_session,
    assess_trace,
    gate_report,
    gate_session,
    gate_trace,
    validate_policy,
)
from tests.test_csi_faults import make_trace


@pytest.fixture()
def trace():
    return make_trace()


class TestAssessClean:
    def test_clean_trace_is_clean(self, trace):
        report = assess_trace(trace)
        assert report.is_clean
        assert not report.is_corrupt and not report.is_degraded
        assert report.finite_fraction == 1.0
        assert report.loss_rate == 0.0
        assert report.dead_antennas == ()
        assert report.bad_subcarriers == ()
        assert report.live_antennas == (0, 1, 2)
        assert len(report.live_subcarriers) == trace.num_subcarriers

    def test_shapes(self, trace):
        report = assess_trace(trace)
        assert report.antenna_live_fraction.shape == (3,)
        assert report.subcarrier_live_fraction.shape == (30,)
        assert report.num_packets == len(trace)

    def test_assessment_never_raises(self, trace):
        degraded = inject(
            trace,
            (AntennaDropout(antenna=0), SubcarrierErasure(0.9)),
            seed=0,
        )
        report = assess_trace(degraded)  # measurement only, no gate
        assert report.is_corrupt

    def test_empty_trace_is_corrupt(self):
        report = assess_trace(CsiTrace(packets=[]))
        assert report.num_packets == 0
        assert report.is_corrupt

    def test_to_dict_round_trips_to_json(self, trace):
        import json

        payload = assess_trace(trace).to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestAssessFaults:
    def test_packet_loss_measured_from_sequence_gaps(self, trace):
        lossy = inject(trace, (PacketLoss(0.4),), seed=0)
        report = assess_trace(lossy)
        expected_gaps = (
            max(p.sequence for p in lossy)
            - min(p.sequence for p in lossy)
            + 1
            - len(lossy)
        )
        assert report.sequence_gaps == expected_gaps
        assert report.loss_rate > 0
        assert report.is_degraded and not report.is_corrupt

    def test_dead_antenna_detected_nan(self, trace):
        report = assess_trace(
            inject(trace, (AntennaDropout(antenna=1, mode="nan"),), seed=0)
        )
        assert report.dead_antennas == (1,)
        assert report.live_antennas == (0, 2)

    def test_dead_antenna_detected_zero(self, trace):
        # A zeroed chain is finite but must still be disqualified.
        report = assess_trace(
            inject(trace, (AntennaDropout(antenna=2, mode="zero"),), seed=0)
        )
        assert report.dead_antennas == (2,)
        assert report.finite_fraction == 1.0

    def test_dead_antenna_does_not_condemn_subcarriers(self, trace):
        # Per-subcarrier fractions are measured over live antennas only:
        # one dead chain of three must not read as a whole-band failure.
        report = assess_trace(
            inject(trace, (AntennaDropout(antenna=0, mode="nan"),), seed=0)
        )
        assert report.bad_subcarriers == ()
        assert len(report.live_subcarriers) == 30

    def test_bad_subcarriers_detected(self, trace):
        report = assess_trace(
            inject(trace, (SubcarrierErasure(0.2, scope="column"),), seed=0)
        )
        assert len(report.bad_subcarriers) == 6
        assert report.dead_antennas == ()

    def test_duplicates_and_reordering_counted(self, trace):
        report = assess_trace(
            inject(
                trace,
                (DuplicatePackets(0.3), PacketReorder(0.3)),
                seed=0,
            )
        )
        assert report.duplicate_packets > 0
        assert report.reordered_packets > 0

    def test_agc_clipping_detected(self, trace):
        clipped = inject(trace, (AgcClipping(1.0, level=0.2),), seed=0)
        report = assess_trace(clipped)
        assert report.clipped_packets > 0
        assert report.clipping_rate > 0.5
        assert "AGC" in "; ".join(report.hard_failures)

    def test_clean_trace_not_flagged_as_clipped(self, trace):
        assert assess_trace(trace).clipped_packets == 0


class TestThresholds:
    def test_defaults_validated(self):
        with pytest.raises(ValueError, match="min_packets"):
            QualityThresholds(min_packets=0)
        with pytest.raises(ValueError, match="max_loss_rate"):
            QualityThresholds(max_loss_rate=1.5)
        with pytest.raises(ValueError, match="min_live_antennas"):
            QualityThresholds(min_live_antennas=0)

    def test_with_overrides(self):
        strict = QualityThresholds().with_overrides(max_loss_rate=0.1)
        assert strict.max_loss_rate == 0.1
        assert strict.min_packets == QualityThresholds().min_packets

    def test_thresholds_drive_qualification(self, trace):
        lossy = inject(trace, (PacketLoss(0.4),), seed=0)
        lax = assess_trace(lossy, QualityThresholds(max_loss_rate=0.99))
        strict = assess_trace(lossy, QualityThresholds(max_loss_rate=0.01))
        assert not lax.is_corrupt
        assert strict.is_corrupt

    def test_min_live_antennas_hard_gate(self, trace):
        two_dead = inject(
            trace,
            (
                AntennaDropout(antenna=0, mode="nan"),
                AntennaDropout(antenna=1, mode="zero"),
            ),
            seed=0,
        )
        report = assess_trace(two_dead)
        assert report.is_corrupt
        assert any("live antennas" in f for f in report.hard_failures)


class TestGating:
    def test_policy_validation(self):
        assert validate_policy("degrade") == "degrade"
        with pytest.raises(ValueError, match="policy"):
            validate_policy("panic")

    def test_clean_trace_passes_silently(self, trace):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = gate_trace(trace, policy="degrade")
        assert report.is_clean

    def test_degrade_policy_warns(self, trace):
        lossy = inject(trace, (PacketLoss(0.3),), seed=0)
        with pytest.warns(DegradedTraceWarning, match="lost packet"):
            gate_trace(lossy, policy="degrade")

    def test_raise_policy_rejects_degradation(self, trace):
        lossy = inject(trace, (PacketLoss(0.3),), seed=0)
        with pytest.raises(CorruptTraceError, match="policy 'raise'"):
            gate_trace(lossy, policy="raise")

    def test_skip_policy_is_silent(self, trace):
        import warnings

        broken = inject(trace, (SubcarrierErasure(0.9),), seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = gate_trace(broken, policy="skip")
        assert report.is_corrupt  # measured, but not enforced

    def test_hard_failure_raises_under_degrade(self, trace):
        broken = inject(trace, (SubcarrierErasure(0.95),), seed=0)
        with pytest.raises(CorruptTraceError, match="rejected by quality gate"):
            gate_trace(broken, policy="degrade", label="bench capture")

    def test_error_message_carries_label(self, trace):
        broken = inject(trace, (SubcarrierErasure(0.95),), seed=0)
        with pytest.raises(CorruptTraceError, match="bench capture"):
            gate_trace(broken, policy="degrade", label="bench capture")


class TestSessionReports:
    def make_session(self, baseline_faults=(), target_faults=()):
        from dataclasses import dataclass

        @dataclass
        class FakeSession:
            baseline: CsiTrace
            target: CsiTrace

        return FakeSession(
            baseline=inject(make_trace(seed=1), baseline_faults, seed=5),
            target=inject(make_trace(seed=2), target_faults, seed=5),
        )

    def test_union_of_channel_failures(self):
        session = self.make_session(
            baseline_faults=(AntennaDropout(antenna=0),),
            target_faults=(AntennaDropout(antenna=2),),
        )
        report = assess_session(session)
        assert report.dead_antennas == (0, 2)
        assert report.is_degraded and not report.is_corrupt

    def test_issues_name_the_afflicted_trace(self):
        session = self.make_session(
            target_faults=(AntennaDropout(antenna=1),)
        )
        report = assess_session(session)
        assert any(issue.startswith("target:") for issue in report.issues)
        assert not any(
            issue.startswith("baseline:") for issue in report.issues
        )

    def test_gate_session_raises_on_either_trace(self):
        session = self.make_session(
            baseline_faults=(SubcarrierErasure(0.95),)
        )
        with pytest.raises(CorruptTraceError):
            gate_session(session)

    def test_gate_report_accepts_session_reports(self):
        session = self.make_session(
            target_faults=(PacketLoss(0.3),)
        )
        report = assess_session(session)
        with pytest.warns(DegradedTraceWarning):
            gate_report(report, policy="degrade", label="session")
