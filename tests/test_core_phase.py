"""Tests for the Phase Calibration Module."""

import numpy as np
import pytest

from repro.channel.environment import make_environment
from repro.channel.geometry import CylinderTarget, LinkGeometry
from repro.channel.materials import default_catalog
from repro.core.phase import PhaseCalibrator
from repro.csi.collector import DataCollector, SessionConfig
from repro.csi.simulator import SimulationScene


@pytest.fixture(scope="module")
def session():
    scene = SimulationScene(
        geometry=LinkGeometry(),
        environment=make_environment("lab"),
        target=CylinderTarget(lateral_offset=0.02),
    )
    collector = DataCollector(scene, rng=0)
    return collector.collect(
        default_catalog().get("milk"), SessionConfig(num_packets=40)
    )


class TestRawPhase:
    def test_raw_phase_is_useless(self, session):
        cal = PhaseCalibrator()
        spread = cal.angular_fluctuation_deg(session.baseline, antenna=0)
        assert spread > 60.0  # uniformly scattered by CFO

    def test_shape(self, session):
        cal = PhaseCalibrator()
        assert cal.raw_phases(session.baseline).shape == (40, 30)

    def test_invalid_antenna_rejected(self, session):
        with pytest.raises(ValueError, match="antenna"):
            PhaseCalibrator().raw_phases(session.baseline, antenna=5)


class TestPhaseDifference:
    def test_difference_is_stable(self, session):
        cal = PhaseCalibrator()
        spread = cal.angular_fluctuation_deg(session.baseline, pair=(0, 1))
        raw = cal.angular_fluctuation_deg(session.baseline, antenna=0)
        assert spread < raw / 3.0

    def test_antisymmetric(self, session):
        cal = PhaseCalibrator()
        d01 = cal.phase_difference(session.baseline, (0, 1))
        d10 = cal.phase_difference(session.baseline, (1, 0))
        np.testing.assert_allclose(
            np.angle(np.exp(1j * (d01 + d10))), 0.0, atol=1e-9
        )

    def test_averaged_shape(self, session):
        cal = PhaseCalibrator()
        avg = cal.averaged_phase_difference(session.baseline, (0, 1))
        assert avg.shape == (30,)
        assert np.all(np.abs(avg) <= np.pi + 1e-9)

    def test_same_antenna_rejected(self, session):
        with pytest.raises(ValueError, match="distinct"):
            PhaseCalibrator().phase_difference(session.baseline, (1, 1))

    def test_out_of_range_rejected(self, session):
        with pytest.raises(ValueError, match="out of range"):
            PhaseCalibrator().phase_difference(session.baseline, (0, 9))

    def test_single_subcarrier_fluctuation(self, session):
        cal = PhaseCalibrator()
        value = cal.angular_fluctuation_deg(
            session.baseline, pair=(0, 1), subcarrier=3
        )
        assert 0.0 <= value <= 180.0

    def test_invalid_subcarrier_rejected(self, session):
        with pytest.raises(ValueError, match="subcarrier"):
            PhaseCalibrator().angular_fluctuation_deg(
                session.baseline, pair=(0, 1), subcarrier=99
            )
