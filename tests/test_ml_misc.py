"""Tests for kNN, nearest-centroid, scaler and kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.centroid import NearestCentroidClassifier
from repro.ml.kernels import (
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    make_kernel,
)
from repro.ml.knn import KNeighborsClassifier
from repro.ml.scaler import StandardScaler


def _blobs(n=20, seed=0):
    rng = np.random.default_rng(seed)
    x = np.vstack(
        [rng.standard_normal((n, 2)), rng.standard_normal((n, 2)) + 5]
    )
    y = np.array(["lo"] * n + ["hi"] * n)
    return x, y


class TestKNN:
    def test_classifies_blobs(self):
        x, y = _blobs()
        clf = KNeighborsClassifier(k=3).fit(x, y)
        assert np.mean(clf.predict(x) == y) >= 0.95

    def test_k1_memorises(self):
        x, y = _blobs()
        clf = KNeighborsClassifier(k=1).fit(x, y)
        assert np.mean(clf.predict(x) == y) == 1.0

    def test_k_larger_than_dataset_clamped(self):
        x, y = _blobs(n=3)
        clf = KNeighborsClassifier(k=100).fit(x, y)
        clf.predict(x)  # must not raise

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="k"):
            KNeighborsClassifier(k=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_tie_breaks_to_nearest(self):
        x = np.array([[0.0], [1.0]])
        y = np.array(["a", "b"])
        clf = KNeighborsClassifier(k=2).fit(x, y)
        assert clf.predict(np.array([[0.1]]))[0] == "a"


class TestNearestCentroid:
    def test_centroids_are_class_means(self):
        x, y = _blobs()
        clf = NearestCentroidClassifier().fit(x, y)
        for label, centroid in zip(clf.classes_, clf.centroids_):
            np.testing.assert_allclose(centroid, x[y == label].mean(axis=0))

    def test_classifies_blobs(self):
        x, y = _blobs()
        clf = NearestCentroidClassifier().fit(x, y)
        assert np.mean(clf.predict(x) == y) >= 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            NearestCentroidClassifier().predict(np.zeros((1, 2)))


class TestScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, (200, 4))
        out = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((30, 3))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, atol=1e-12
        )

    def test_constant_feature_survives(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        out = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_feature_count_checked(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.zeros((2, 4)))

    def test_accessors(self):
        scaler = StandardScaler().fit(np.arange(10.0)[:, None])
        assert scaler.mean_[0] == pytest.approx(4.5)
        assert scaler.scale_[0] > 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().transform(np.zeros((1, 1)))


class TestKernels:
    def test_linear_is_dot_product(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        assert LinearKernel()(a, b)[0, 0] == pytest.approx(11.0)

    def test_rbf_diagonal_ones(self):
        x = np.random.default_rng(0).standard_normal((5, 3))
        k = RBFKernel(gamma=0.5)(x, x)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_rbf_decays_with_distance(self):
        kern = RBFKernel(gamma=1.0)
        near = kern(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kern(np.array([[0.0]]), np.array([[3.0]]))[0, 0]
        assert near > far

    def test_rbf_scale_heuristic(self):
        x = np.random.default_rng(1).standard_normal((50, 4))
        gamma = RBFKernel().resolve_gamma(x)
        assert gamma == pytest.approx(1.0 / (4 * np.var(x)), rel=1e-9)

    def test_rbf_invalid_gamma(self):
        with pytest.raises(ValueError, match="gamma"):
            RBFKernel(gamma=0.0)

    def test_polynomial(self):
        k = PolynomialKernel(degree=2, coef0=1.0)
        got = k(np.array([[1.0, 1.0]]), np.array([[1.0, 1.0]]))[0, 0]
        assert got == pytest.approx(9.0)

    def test_factory(self):
        assert isinstance(make_kernel("linear"), LinearKernel)
        assert isinstance(make_kernel("rbf", gamma=1.0), RBFKernel)
        assert isinstance(make_kernel("poly", degree=2), PolynomialKernel)
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel("sigmoid")

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10), min_size=2, max_size=2
        ),
        st.lists(
            st.floats(min_value=-10, max_value=10), min_size=2, max_size=2
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_rbf_bounded_and_symmetric(self, u, v):
        kern = RBFKernel(gamma=0.3)
        a, b = np.array([u]), np.array([v])
        kab = kern(a, b)[0, 0]
        kba = kern(b, a)[0, 0]
        assert 0.0 <= kab <= 1.0
        assert kab == pytest.approx(kba)
