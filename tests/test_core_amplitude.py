"""Tests for the Amplitude Denoising Module."""

import numpy as np
import pytest

from repro.channel.environment import make_environment
from repro.channel.geometry import CylinderTarget, LinkGeometry
from repro.channel.materials import default_catalog
from repro.core.amplitude import AmplitudeProcessor
from repro.csi.collector import DataCollector, SessionConfig
from repro.csi.simulator import SimulationScene


@pytest.fixture(scope="module")
def trace():
    scene = SimulationScene(
        geometry=LinkGeometry(),
        environment=make_environment("lab"),
        target=CylinderTarget(lateral_offset=0.02),
    )
    collector = DataCollector(scene, rng=0)
    return collector.collect(
        default_catalog().get("milk"), SessionConfig(num_packets=30)
    ).baseline


class TestCleanAmplitudes:
    def test_shape(self, trace):
        amp = AmplitudeProcessor()
        assert amp.clean_amplitudes(trace).shape == (30, 30, 3)

    def test_denoising_reduces_variance(self, trace):
        raw = AmplitudeProcessor(denoise=False).clean_amplitudes(trace)
        cleaned = AmplitudeProcessor(denoise=True).clean_amplitudes(trace)
        assert cleaned.var(axis=0).mean() < raw.var(axis=0).mean()

    def test_cached_by_trace_identity(self, trace):
        amp = AmplitudeProcessor()
        first = amp.clean_amplitudes(trace)
        second = amp.clean_amplitudes(trace)
        assert first is second

    def test_positive_output(self, trace):
        cleaned = AmplitudeProcessor().clean_amplitudes(trace)
        assert np.all(cleaned > 0.0)

    def test_short_trace_outliers_only(self, trace):
        amp = AmplitudeProcessor()
        short = trace.subset(3)
        assert amp.clean_amplitudes(short).shape == (3, 30, 3)


class TestRatios:
    def test_ratio_shape(self, trace):
        amp = AmplitudeProcessor()
        assert amp.amplitude_ratio(trace, (0, 1)).shape == (30, 30)

    def test_averaged_ratio_is_log_mean(self, trace):
        amp = AmplitudeProcessor(denoise=False)
        ratio = amp.amplitude_ratio(trace, (0, 1))
        expected = np.exp(np.mean(np.log(ratio), axis=0))
        np.testing.assert_allclose(
            amp.averaged_amplitude_ratio(trace, (0, 1)), expected
        )

    def test_ratio_inverse_pair(self, trace):
        amp = AmplitudeProcessor(denoise=False)
        r01 = amp.averaged_amplitude_ratio(trace, (0, 1))
        r10 = amp.averaged_amplitude_ratio(trace, (1, 0))
        np.testing.assert_allclose(r01 * r10, 1.0, rtol=1e-9)

    def test_same_antenna_rejected(self, trace):
        with pytest.raises(ValueError, match="distinct"):
            AmplitudeProcessor().amplitude_ratio(trace, (2, 2))


class TestVarianceDiagnostics:
    def test_ratio_more_stable_than_antennas(self, trace):
        amp = AmplitudeProcessor(denoise=False)
        ant = amp.amplitude_variance_per_subcarrier(trace, 0).mean()
        ratio = amp.ratio_variance_per_subcarrier(trace, (0, 1)).mean()
        assert ratio < ant

    def test_variance_shapes(self, trace):
        amp = AmplitudeProcessor(denoise=False)
        assert amp.amplitude_variance_per_subcarrier(trace, 1).shape == (30,)
        assert amp.ratio_variance_per_subcarrier(trace, (0, 2)).shape == (30,)

    def test_invalid_antenna_rejected(self, trace):
        with pytest.raises(ValueError, match="antenna"):
            AmplitudeProcessor().amplitude_variance_per_subcarrier(trace, 7)
