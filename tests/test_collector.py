"""Tests for the Data Collection Module."""

import numpy as np
import pytest

from repro.channel.environment import make_environment
from repro.channel.geometry import CylinderTarget, LinkGeometry
from repro.channel.materials import default_catalog
from repro.csi.collector import CaptureSession, DataCollector, SessionConfig
from repro.csi.model import CsiTrace
from repro.csi.simulator import SimulationScene


@pytest.fixture
def scene():
    return SimulationScene(
        geometry=LinkGeometry(),
        environment=make_environment("lab"),
        target=CylinderTarget(lateral_offset=0.02),
    )


@pytest.fixture
def catalog():
    return default_catalog()


class TestSessionConfig:
    def test_default_twenty_packets(self):
        assert SessionConfig().num_packets == 20

    def test_default_baseline_is_air(self):
        assert SessionConfig().baseline_material.name == "air"

    def test_invalid_packets_rejected(self):
        with pytest.raises(ValueError, match="num_packets"):
            SessionConfig(num_packets=0)


class TestCaptureSession:
    def test_truncated(self, scene, catalog):
        collector = DataCollector(scene, rng=0)
        session = collector.collect(catalog.get("milk"))
        short = session.truncated(5)
        assert len(short.baseline) == 5
        assert len(short.target) == 5
        assert short.material_name == "milk"

    def test_mismatched_traces_rejected(self):
        t3 = CsiTrace.from_matrix(np.zeros((2, 30, 3), dtype=complex))
        t2 = CsiTrace.from_matrix(np.zeros((2, 30, 2), dtype=complex))
        with pytest.raises(ValueError, match="antenna count"):
            CaptureSession(t3, t2, "x", SimulationScene())

    def test_empty_traces_rejected(self):
        t = CsiTrace.from_matrix(np.zeros((2, 30, 3), dtype=complex))
        empty = CsiTrace()
        with pytest.raises(ValueError, match="non-empty"):
            CaptureSession(empty, t, "x", SimulationScene())


class TestDataCollector:
    def test_requires_target(self):
        scene = SimulationScene(environment=make_environment("lab"))
        with pytest.raises(ValueError, match="target container"):
            DataCollector(scene)

    def test_collect_shapes(self, scene, catalog):
        collector = DataCollector(scene, rng=0)
        session = collector.collect(
            catalog.get("milk"), SessionConfig(num_packets=7)
        )
        assert len(session.baseline) == 7
        assert len(session.target) == 7
        assert session.num_antennas == 3

    def test_collect_many(self, scene, catalog):
        collector = DataCollector(scene, rng=0)
        sessions = collector.collect_many(catalog.get("oil"), 3)
        assert len(sessions) == 3
        assert all(s.material_name == "oil" for s in sessions)

    def test_deployment_shares_multipath(self, scene, catalog):
        collector = DataCollector(scene, rng=0)
        assert collector.channel is not None
        s1 = collector.collect(catalog.get("milk"))
        s2 = collector.collect(catalog.get("milk"))
        # The reflector positions are the deployment's: fixed.
        assert len(collector.channel.paths) == scene.environment.num_paths
        # But sessions differ (drift + noise).
        assert not np.allclose(
            s1.baseline.matrix(), s2.baseline.matrix()
        )

    def test_offset_jitter_repositions_beaker(self, scene, catalog):
        collector = DataCollector(scene, rng=0, offset_jitter=0.002)
        offsets = {
            collector.collect(catalog.get("milk")).scene.target.lateral_offset
            for _ in range(4)
        }
        assert len(offsets) > 1
        for off in offsets:
            assert abs(off - scene.target.lateral_offset) <= 0.002 + 1e-12

    def test_zero_jitter_keeps_scene(self, scene, catalog):
        collector = DataCollector(scene, rng=0, offset_jitter=0.0)
        session = collector.collect(catalog.get("milk"))
        assert session.scene is scene

    def test_negative_jitter_rejected(self, scene):
        with pytest.raises(ValueError, match="offset_jitter"):
            DataCollector(scene, offset_jitter=-0.001)

    def test_negative_repetitions_rejected(self, scene, catalog):
        collector = DataCollector(scene, rng=0)
        with pytest.raises(ValueError, match="repetitions"):
            collector.collect_many(catalog.get("milk"), -1)

    def test_reproducible(self, scene, catalog):
        s1 = DataCollector(scene, rng=9).collect(catalog.get("milk"))
        s2 = DataCollector(scene, rng=9).collect(catalog.get("milk"))
        np.testing.assert_allclose(s1.target.matrix(), s2.target.matrix())
