"""Tests for the experiment harness (datasets, runner, reporting)."""

import numpy as np
import pytest

from repro.channel.materials import default_catalog
from repro.experiments.datasets import (
    collect_dataset,
    paper_liquids,
    split_dataset,
    standard_scene,
    standard_target,
)
from repro.experiments.reporting import (
    format_cluster_table,
    format_confusion,
    format_environment_series,
    format_scalar_table,
    format_series,
)
from repro.experiments.runner import fit_and_score, run_identification
from repro.ml.validation import confusion_matrix

# The simulated int8 CSI quantization legitimately zeroes a
# deep-faded antenna in some deployments, so the quality gate's
# DegradedTraceWarning is expected here; everything else is an error
# (see pyproject filterwarnings).
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.csi.quality.DegradedTraceWarning"
)


class TestDatasets:
    def test_paper_liquids_count_and_order(self):
        liquids = paper_liquids()
        assert len(liquids) == 10
        assert liquids[0].name == "vinegar"
        assert liquids[-1].name == "sweet_water"

    def test_standard_target_defaults(self):
        t = standard_target()
        assert t.diameter == pytest.approx(0.143)
        assert t.wall_material_name == "plastic"

    def test_standard_scene(self):
        scene = standard_scene("hall", distance_m=3.0)
        assert scene.environment.name == "hall"
        assert scene.geometry.distance == 3.0

    def test_collect_dataset_shape(self):
        catalog = default_catalog()
        materials = [catalog.get("oil"), catalog.get("pure_water")]
        dataset = collect_dataset(
            materials, repetitions=3, num_packets=5, seed=0
        )
        assert set(dataset) == {"oil", "pure_water"}
        assert len(dataset["oil"]) == 3
        assert len(dataset["oil"][0].baseline) == 5

    def test_collect_requires_materials(self):
        with pytest.raises(ValueError, match="material"):
            collect_dataset([], repetitions=2)

    def test_split_fractions(self):
        catalog = default_catalog()
        dataset = collect_dataset(
            [catalog.get("oil"), catalog.get("milk")],
            repetitions=5, num_packets=4, seed=0,
        )
        train, test = split_dataset(dataset, train_fraction=0.6)
        assert len(train) == 6 and len(test) == 4

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError, match="train_fraction"):
            split_dataset({}, train_fraction=1.5)

    def test_split_needs_two_sessions(self):
        catalog = default_catalog()
        dataset = collect_dataset(
            [catalog.get("oil")], repetitions=1, num_packets=4, seed=0
        )
        with pytest.raises(ValueError, match="at least 2"):
            split_dataset(dataset)


class TestRunner:
    def test_run_identification_end_to_end(self):
        catalog = default_catalog()
        materials = [catalog.get(n) for n in ("oil", "pure_water", "soy")]
        result = run_identification(
            materials, repetitions=6, num_packets=8, seed=0
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert result.accuracy >= 0.7  # well-separated trio
        assert set(result.per_class_accuracy()) == {
            "oil", "pure_water", "soy"
        }
        assert result.extras["selected_subcarriers"] is not None

    def test_needs_two_materials(self):
        catalog = default_catalog()
        with pytest.raises(ValueError, match="two materials"):
            run_identification([catalog.get("oil")], repetitions=2)

    def test_fit_and_score_reuses_sessions(self):
        catalog = default_catalog()
        materials = [catalog.get("oil"), catalog.get("soy")]
        dataset = collect_dataset(
            materials, repetitions=6, num_packets=8, seed=1
        )
        train, test = split_dataset(dataset)
        result = fit_and_score(
            train, test, [m.name for m in materials], materials
        )
        assert result.accuracy >= 0.7

    def test_fit_and_score_empty_rejected(self):
        catalog = default_catalog()
        with pytest.raises(ValueError, match="non-empty"):
            fit_and_score([], [], ["a"], [catalog.get("oil")])


class TestReporting:
    def test_scalar_table(self):
        text = format_scalar_table("title", {"a": 1.0, "bb": 2.5}, unit="x")
        assert "title" in text and "bb" in text and "x" in text

    def test_scalar_table_empty_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            format_scalar_table("t", {})

    def test_series(self):
        text = format_series("t", [(1, 0.9), (2, 0.8)], "d", "acc")
        assert "0.900" in text

    def test_confusion(self):
        cm = confusion_matrix(np.array(["a", "b"]), np.array(["a", "b"]))
        text = format_confusion("t", cm)
        assert "overall accuracy: 1.000" in text

    def test_cluster_table(self):
        text = format_cluster_table(
            "t", {"milk": {"mean": 0.19, "std": 0.002, "theory": 0.196}}
        )
        assert "milk" in text

    def test_environment_series(self):
        text = format_environment_series(
            "t", {"lab": [(1.0, 0.9)]}, "distance"
        )
        assert "[lab]" in text and "distance=1" in text


class TestMeanAccuracyOverSeeds:
    def test_averages_deployments(self):
        from repro.experiments.runner import mean_accuracy_over_seeds

        catalog = default_catalog()
        materials = [catalog.get("oil"), catalog.get("soy")]
        mean, accs = mean_accuracy_over_seeds(
            materials, seeds=(0, 1), repetitions=4, num_packets=6
        )
        assert len(accs) == 2
        assert mean == pytest.approx(np.mean(accs))

    def test_empty_seeds_rejected(self):
        from repro.experiments.runner import mean_accuracy_over_seeds

        catalog = default_catalog()
        with pytest.raises(ValueError, match="seed"):
            mean_accuracy_over_seeds(
                [catalog.get("oil"), catalog.get("soy")], seeds=()
            )


class TestRobustnessSweeps:
    def test_packet_loss_sweep_smoke(self):
        from repro.experiments import robustness

        results = robustness.packet_loss_sweep(
            rates=(0.0, 0.3),
            materials=("pure_water", "oil"),
            repetitions=4,
            num_packets=6,
            seed=1,
        )
        assert [r.parameter for r in results] == [0.0, 0.3]
        clean, lossy = results
        assert clean.total == lossy.total > 0
        assert clean.rejected == 0 and clean.degraded == 0
        assert 0.0 <= lossy.accuracy <= 1.0
        # Losing packets must register as degradation, not pass silently.
        assert lossy.degraded > 0

    def test_antenna_dropout_sweep_smoke(self):
        from repro.experiments import robustness

        results = robustness.antenna_dropout_sweep(
            materials=("pure_water", "oil"),
            modes=("nan",),
            repetitions=4,
            num_packets=6,
            seed=1,
        )
        assert results[0].scenario == "none"
        assert len(results) == 4  # anchor + one per antenna
        for point in results[1:]:
            assert point.degraded + point.rejected == point.total

    def test_payloads_are_picklable(self):
        import pickle

        from repro.experiments.robustness import (
            _payload, _scenario_task,
        )
        from repro.csi.faults import PacketLoss

        payload = _payload(
            "packet_loss", "loss=0.2", 0.2, (PacketLoss(0.2),),
            ("pure_water", "oil"), 0, 4, 6, 0.5,
        )
        assert pickle.loads(pickle.dumps(payload)) == payload
        assert pickle.loads(pickle.dumps(_scenario_task)) is _scenario_task

    def test_report_roundtrip(self, tmp_path):
        import json

        from repro.experiments import robustness
        from repro.experiments.robustness import ScenarioResult

        point = ScenarioResult(
            sweep="packet_loss", scenario="loss=0.1", parameter=0.1,
            total=10, correct=9, rejected=1, degraded=5,
        )
        results = {"packet_loss": [point.to_dict()]}
        path = tmp_path / "robustness.json"
        report = robustness.write_report(path, results)
        assert json.loads(path.read_text()) == report
        rendered = robustness.render_report(results)
        assert "loss=0.1" in rendered and "90.0%" in rendered
